//! # mjoin
//!
//! A reproduction of **Shinichi Morishita, "Avoiding Cartesian Products in
//! Programs for Multiple Joins" (PODS 1992)** as a Rust workspace.
//!
//! Computing a multi-way natural join requires ordering the binary joins.
//! Two ubiquitous optimizer heuristics — avoid Cartesian products (CPF) and
//! use linear orders — can each be *arbitrarily* worse than the true
//! optimum on cyclic schemes (the paper's Example 3, available as
//! [`workloads::Example3`]). The paper's fix: don't *evaluate* CPF join
//! expressions, *compile* them into programs of joins, semijoins and
//! projections:
//!
//! * [`core::algorithm1`] turns any join expression tree into a CPF one;
//! * [`core::algorithm2`] derives a program from a CPF tree;
//! * composed ([`core::pipeline`]), a program derived from an optimal tree
//!   costs within the data-independent factor `r(a+5)` of the optimum
//!   (Theorem 2) while computing exactly `⋈D` (Theorem 1).
//!
//! ## Quick start
//!
//! ```
//! use mjoin::prelude::*;
//!
//! // The paper's running example: the cyclic scheme {ABC, CDE, EFG, GHA}.
//! let mut catalog = Catalog::new();
//! let scheme = DbScheme::parse(&mut catalog, &["ABC", "CDE", "EFG", "GHA"]);
//!
//! // A database over it.
//! let db = Database::from_relations(vec![
//!     relation_of_ints(&mut catalog, "ABC", &[&[1, 2, 3]]).unwrap(),
//!     relation_of_ints(&mut catalog, "CDE", &[&[3, 4, 5]]).unwrap(),
//!     relation_of_ints(&mut catalog, "EFG", &[&[5, 6, 7]]).unwrap(),
//!     relation_of_ints(&mut catalog, "GHA", &[&[7, 8, 1]]).unwrap(),
//! ]);
//!
//! // Take the paper's optimal-but-non-CPF expression …
//! let t1 = parse_join_tree(&catalog, &scheme, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
//!
//! // … and run the paper's pipeline: Algorithm 1 → CPF tree → Algorithm 2
//! // → program → execute.
//! let run = run_pipeline(&scheme, &t1, &db, &mut FirstChoice).unwrap();
//! assert_eq!(*run.exec.result, db.join_all());          // Theorem 1
//! assert!(run.bound_holds());                          // Theorem 2
//! ```

pub use mjoin_acyclic as acyclic;
pub use mjoin_analyze as analyze;
pub use mjoin_core as core;
pub use mjoin_cq as cq;
pub use mjoin_expr as expr;
pub use mjoin_hypergraph as hypergraph;
pub use mjoin_optimizer as optimizer;
pub use mjoin_program as program;
pub use mjoin_relation as relation;
pub use mjoin_serve as serve;
pub use mjoin_trace as trace;
pub use mjoin_wcoj as wcoj;
pub use mjoin_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use mjoin_acyclic::{
        full_reducer_program, fully_reduce, globally_consistent, monotone_join_tree,
        pairwise_consistent, semijoin_fixpoint, yannakakis,
    };
    pub use mjoin_analyze::{
        analyze, analyze_with, mem_blowup, memory_report, Diagnostic, MemCertificate, Report,
        Severity,
    };
    pub use mjoin_core::{
        algorithm1, algorithm1_all_outcomes, algorithm1_with_policy, algorithm2, check_theorem1,
        check_theorem2, derive, derive_with_policy, run_pipeline, run_pipeline_parallel,
        run_pipeline_with, ChoicePolicy, Derivation, FirstChoice, PipelineRun, SeededChoice,
    };
    pub use mjoin_cq::{
        contains, equivalent, evaluate_datalog, execute_query, execute_query_with, lint_query,
        lint_rules, minimize, parse_query, parse_rules, ComponentDecision, ConjunctiveQuery,
        ExecOptions, ExecutorKind, MinimizeSummary, Minimized, NamedDatabase, PlanStrategy,
    };
    pub use mjoin_expr::{
        all_trees, cost_of, cpf_trees, evaluate, linear_trees, parse_join_tree, JoinTree,
    };
    pub use mjoin_hypergraph::{gyo, is_acyclic, DbScheme, RelSet};
    pub use mjoin_optimizer::{
        greedy, iterative_improvement, optimize, simulated_annealing, CostOracle, EstimateOracle,
        ExactOracle, IiConfig, SaConfig, SearchSpace,
    };
    pub use mjoin_program::{
        execute, execute_parallel, execute_with, schedule, try_execute_with, validate, CancelToken,
        Cancelled, ExecConfig, IndexCache, Program, ProgramBuilder, Reg, SharedIndexCache,
        SpillPlan, Stmt,
    };
    pub use mjoin_relation::{
        ops, relation_of_ints, AttrId, AttrSet, Catalog, CostLedger, Database, Relation, Schema,
        Value,
    };
    pub use mjoin_workloads::{random_database, DataGenConfig, Example3, PlantedRedundancy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_pipeline_runs() {
        let mut catalog = Catalog::new();
        let scheme = DbScheme::parse(&mut catalog, &["AB", "BC"]);
        let db = Database::from_relations(vec![
            relation_of_ints(&mut catalog, "AB", &[&[1, 2]]).unwrap(),
            relation_of_ints(&mut catalog, "BC", &[&[2, 3]]).unwrap(),
        ]);
        let t = JoinTree::left_deep(&[0, 1]);
        let run = run_pipeline(&scheme, &t, &db, &mut FirstChoice).unwrap();
        assert_eq!(*run.exec.result, db.join_all());
    }
}
