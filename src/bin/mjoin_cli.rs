//! `mjoin_cli` — join a set of TSV relations with the paper's pipeline.
//!
//! ```text
//! mjoin_cli analyze  R1.tsv R2.tsv …            # scheme diagnostics
//! mjoin_cli plan     [--optimizer X] R1.tsv …   # show tree + program
//! mjoin_cli run      [--optimizer X] R1.tsv …   # execute, TSV on stdout
//! mjoin_cli check    [--scheme AB,BC] [--deny warn] [--format json] P.mj
//! mjoin_cli check    [--query] [--deny warn] Q.cq …  # query lints (core, ×, …)
//! mjoin_cli audit    [--deny error] [--format json] P.mj <data.tsv…|data dir>
//! mjoin_cli query [--executor program|wcoj|auto] "Q(x,z) :- r1(x,y), r2(y,z)" R1.tsv …
//! mjoin_cli datalog "t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z)." E.tsv …
//! mjoin_cli serve   [--addr 127.0.0.1:7878] [--max-cost N] [--threads N]
//! mjoin_cli client  [--addr 127.0.0.1:7878]   # requests on stdin, one per line
//! ```
//!
//! `check` lints a program written in the paper's notation (one statement
//! per line, `#` comments allowed) against its database scheme: Cartesian
//! joins, no-op semijoins/projections, dead stores, recomputed values,
//! Claim C's `r(a+5)` bound, and the level schedule's race-freedom. The
//! scheme comes from `--scheme AB,BC,…` or from a `# scheme: AB,BC,…`
//! directive in the file itself. Diagnostics go to stderr (`--format json`
//! for machine consumption); the exit code is nonzero when any finding
//! reaches the `--deny` threshold (default `error`).
//!
//! `audit` goes further: it computes the Theorem-2 cost certificate and the
//! abstract cardinality intervals for the program, *executes* it over TSV
//! data (files, or a directory of `.tsv` files, matched to scheme edges by
//! attribute set), and diffs every statement's measured head count against
//! its sound static bounds. Any statement exceeding a bound is an `error` —
//! that means a kernel, scheduler, or certificate bug, not a data problem.
//! The per-statement table goes to stdout; `check --verify-run P.mj data…`
//! runs the same audit after linting, reporting on stderr.
//!
//! For `query` and `datalog`, each TSV file defines a predicate named by its
//! file stem (`edges.tsv` → `edges`), with columns bound positionally in
//! header order. `datalog` runs the semi-naive fixpoint; with
//! `--explain-analyze` each iteration reports its delta size, rules fired,
//! and new facts.
//!
//! Each TSV file holds one relation: a tab-separated header of attribute
//! names, then one tuple per line. The optimizer picks the input tree `T₁`
//! (`greedy` default; `dp`, `dp-cpf`, `dp-linear` for the exact DP optima);
//! Algorithms 1 and 2 then derive the program that is executed.
//!
//! Costs (the paper's §2.3 tuple counts) go to stderr so stdout stays a
//! clean TSV. `--explain-analyze` additionally prints an EXPLAIN ANALYZE
//! report (per-statement wall time, chosen operator strategies, schedule
//! depth/width) on stderr, and setting `MJOIN_TRACE=<path>` writes the raw
//! span data as Chrome trace format JSON for `chrome://tracing`/Perfetto.

use mjoin::prelude::*;
use mjoin::program::display;
use mjoin::relation::tsv;
use mjoin::trace as mjoin_trace;
use std::process::ExitCode;

struct Args {
    command: String,
    optimizer: String,
    /// `query`: which join executor runs each connected component —
    /// `program` (the paper's §2.2 pipeline, default), `wcoj`
    /// (worst-case-optimal generic join), or `auto` (AGM bound vs the
    /// program's Theorem-2 certificate, per component).
    executor: String,
    explain: bool,
    /// `check`: comma-separated relation schemes, e.g. `AB,BC,CD`.
    scheme: Option<String>,
    /// `check`: severity that makes the exit code nonzero.
    deny: String,
    /// `check`: `text` (default) or `json`.
    format: String,
    /// `check`: also execute the program over supplied data and audit
    /// measured costs against the static bounds.
    verify_run: bool,
    /// `check`: treat every input file as a conjunctive-query/Datalog
    /// source and run the query lints (implied for `.cq`/`.dl` files).
    query_lint: bool,
    /// `query`: compile the query's core (Chandra–Merlin minimization)
    /// before planning. Default on; `--minimize off` opts out.
    minimize: bool,
    /// `serve`/`client`: TCP address to listen on / connect to.
    addr: String,
    /// `serve`/`query`: worker threads per request / per component.
    threads: usize,
    /// `serve`: admission budget — reject requests whose certified
    /// per-statement bound exceeds this.
    max_cost: Option<u64>,
    /// `serve`: bounded-FIFO depth for requests queued on the capacity
    /// gate.
    queue_depth: usize,
    /// `run`/`query`/`serve`: per-statement memory budget in bytes. Joins
    /// whose certified build-side bound exceeds it run the Grace-hash
    /// spill path; `serve` additionally rejects requests whose certified
    /// peak exceeds it. `check --memory` lints against it (`mem-blowup`).
    mem_budget: Option<u64>,
    /// `check`: print the static memory certificate (peak-resident bytes
    /// per statement); with `--mem-budget` also run the `mem-blowup` lint.
    memory: bool,
    files: Vec<String>,
}

/// Either a normal invocation or an explicit request for the usage text
/// (which is *not* an error: `--help` must exit successfully).
enum Parsed {
    Help,
    Run(Box<Args>),
}

fn parse_args() -> Result<Parsed, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    if matches!(command.as_str(), "--help" | "-h" | "help") {
        return Ok(Parsed::Help);
    }
    let mut optimizer = "greedy".to_string();
    let mut executor = "program".to_string();
    let mut explain = false;
    let mut scheme = None;
    let mut deny = "error".to_string();
    let mut format = "text".to_string();
    let mut verify_run = false;
    let mut query_lint = false;
    let mut minimize = true;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut threads = 1usize;
    let mut max_cost = None;
    let mut queue_depth = 16usize;
    let mut mem_budget = None;
    let mut memory = false;
    let mut files = Vec::new();
    while let Some(arg) = argv.next() {
        if arg == "--help" || arg == "-h" {
            return Ok(Parsed::Help);
        } else if arg == "--explain-analyze" {
            explain = true;
        } else if arg == "--verify-run" {
            verify_run = true;
        } else if arg == "--query" {
            query_lint = true;
        } else if arg == "--minimize" {
            let v = argv.next().ok_or("--minimize needs a value (on|off)")?;
            minimize = parse_on_off(&v)?;
        } else if let Some(rest) = arg.strip_prefix("--minimize=") {
            minimize = parse_on_off(rest)?;
        } else if arg == "--optimizer" {
            optimizer = argv.next().ok_or("--optimizer needs a value")?;
        } else if let Some(rest) = arg.strip_prefix("--optimizer=") {
            optimizer = rest.to_string();
        } else if arg == "--executor" {
            executor = argv.next().ok_or("--executor needs a value")?;
        } else if let Some(rest) = arg.strip_prefix("--executor=") {
            executor = rest.to_string();
        } else if arg == "--scheme" {
            scheme = Some(argv.next().ok_or("--scheme needs a value")?);
        } else if let Some(rest) = arg.strip_prefix("--scheme=") {
            scheme = Some(rest.to_string());
        } else if arg == "--deny" {
            deny = argv.next().ok_or("--deny needs a value")?;
        } else if let Some(rest) = arg.strip_prefix("--deny=") {
            deny = rest.to_string();
        } else if arg == "--format" {
            format = argv.next().ok_or("--format needs a value")?;
        } else if let Some(rest) = arg.strip_prefix("--format=") {
            format = rest.to_string();
        } else if arg == "--addr" {
            addr = argv.next().ok_or("--addr needs a value")?;
        } else if let Some(rest) = arg.strip_prefix("--addr=") {
            addr = rest.to_string();
        } else if arg == "--threads" {
            let v = argv.next().ok_or("--threads needs a value")?;
            threads = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
        } else if let Some(rest) = arg.strip_prefix("--threads=") {
            threads = rest
                .parse()
                .map_err(|_| format!("bad --threads `{rest}`"))?;
        } else if arg == "--max-cost" {
            let v = argv.next().ok_or("--max-cost needs a value")?;
            max_cost = Some(v.parse().map_err(|_| format!("bad --max-cost `{v}`"))?);
        } else if let Some(rest) = arg.strip_prefix("--max-cost=") {
            max_cost = Some(
                rest.parse()
                    .map_err(|_| format!("bad --max-cost `{rest}`"))?,
            );
        } else if arg == "--memory" {
            memory = true;
        } else if arg == "--mem-budget" {
            let v = argv.next().ok_or("--mem-budget needs a value (bytes)")?;
            mem_budget = Some(v.parse().map_err(|_| format!("bad --mem-budget `{v}`"))?);
        } else if let Some(rest) = arg.strip_prefix("--mem-budget=") {
            mem_budget = Some(
                rest.parse()
                    .map_err(|_| format!("bad --mem-budget `{rest}`"))?,
            );
        } else if arg == "--queue-depth" {
            let v = argv.next().ok_or("--queue-depth needs a value")?;
            queue_depth = v.parse().map_err(|_| format!("bad --queue-depth `{v}`"))?;
        } else if let Some(rest) = arg.strip_prefix("--queue-depth=") {
            queue_depth = rest
                .parse()
                .map_err(|_| format!("bad --queue-depth `{rest}`"))?;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            files.push(arg);
        }
    }
    // `serve` holds state loaded over the wire and `client` reads stdin;
    // neither takes file arguments.
    if files.is_empty() && !matches!(command.as_str(), "serve" | "client") {
        return Err("no input files".to_string());
    }
    Ok(Parsed::Run(Box::new(Args {
        command,
        optimizer,
        executor,
        explain,
        scheme,
        deny,
        format,
        verify_run,
        query_lint,
        minimize,
        addr,
        threads,
        max_cost,
        queue_depth,
        mem_budget,
        memory,
        files,
    })))
}

fn usage() -> String {
    "usage: mjoin_cli <analyze|plan|run|check|audit|query|datalog|serve|client> [--optimizer greedy|dp|dp-cpf|dp-linear] \
     [--explain-analyze] [\"Q(x) :- …\"] <relation.tsv|program.mj>…\n\
     \n\
     --optimizer        join-tree search: greedy (default) or exact DP over\n\
     \u{20}                  all / CPF / linear trees\n\
     --executor         (query) per-component join executor: program\n\
     \u{20}                  (default), wcoj (worst-case-optimal generic join),\n\
     \u{20}                  or auto (pick by AGM bound vs Theorem-2 certificate)\n\
     --explain-analyze  print per-statement timings, operator strategies and\n\
     \u{20}                  schedule shape on stderr after execution\n\
     --scheme A,B,…     (check/audit) database scheme as comma-separated\n\
     \u{20}                  attribute sets; overrides `# scheme:` in the file\n\
     --deny SEV         (check/audit) exit nonzero at this severity or above:\n\
     \u{20}                  note|warn|error (default error)\n\
     --format FMT       (check/audit) report as text (default) or json\n\
     --verify-run       (check) also execute the program over trailing TSV\n\
     \u{20}                  data and audit measured vs static cost bounds\n\
     --query            (check) lint conjunctive-query/Datalog sources\n\
     \u{20}                  instead of .mj programs (implied for .cq/.dl files)\n\
     --minimize on|off  (query) compile the query's core (Chandra–Merlin\n\
     \u{20}                  minimization) before planning (default on)\n\
     --addr HOST:PORT   (serve/client) listen/connect address, default\n\
     \u{20}                  127.0.0.1:7878; port 0 picks a free port\n\
     --threads N        (serve/query) worker threads per request (default 1)\n\
     --max-cost N       (serve) reject requests whose certified Theorem-2\n\
     \u{20}                  bound exceeds N tuples (default: no limit)\n\
     --queue-depth N    (serve) admission queue length (default 16)\n\
     --memory           (check) print the static memory certificate: peak\n\
     \u{20}                  resident bytes per statement, from the Theorem-2\n\
     \u{20}                  cardinality bounds (trailing TSV data seeds the\n\
     \u{20}                  input sizes; without data, 1024 tuples/relation)\n\
     --mem-budget N     (run/query/serve) per-statement memory budget in\n\
     \u{20}                  bytes: joins whose certified build side exceeds it\n\
     \u{20}                  spill via Grace hashing; serve also rejects\n\
     \u{20}                  requests whose certified peak exceeds it; with\n\
     \u{20}                  `check --memory`, budget for the mem-blowup lint\n\
     --help, -h         this text\n\
     \n\
     environment: MJOIN_TRACE=<path> writes Chrome trace format JSON there"
        .to_string()
}

fn parse_on_off(v: &str) -> Result<bool, String> {
    match v {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(format!("bad boolean `{other}` (on|off)")),
    }
}

/// The one optimizer-name parser, shared by `plan`/`run` (join trees) and
/// `query` (plan strategies) so the two command families cannot drift.
enum Optimizer {
    Greedy,
    Dp(SearchSpace),
}

fn parse_optimizer(name: &str) -> Result<Optimizer, String> {
    match name {
        "greedy" => Ok(Optimizer::Greedy),
        "dp" => Ok(Optimizer::Dp(SearchSpace::All)),
        "dp-cpf" => Ok(Optimizer::Dp(SearchSpace::Cpf)),
        "dp-linear" => Ok(Optimizer::Dp(SearchSpace::Linear)),
        other => Err(format!(
            "unknown optimizer `{other}` (try greedy|dp|dp-cpf|dp-linear)"
        )),
    }
}

/// Stream one TSV file into a relation without materializing the file as a
/// string first.
fn load_tsv(catalog: &mut Catalog, path: &str) -> Result<Relation, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    tsv::relation_from_tsv_reader(catalog, std::io::BufReader::new(file))
        .map_err(|e| format!("`{path}`: {e}"))
}

fn load(files: &[String]) -> Result<(Catalog, DbScheme, Database), String> {
    let mut catalog = Catalog::new();
    let mut relations = Vec::new();
    for path in files {
        relations.push(load_tsv(&mut catalog, path)?);
    }
    let db = Database::from_relations(relations);
    let scheme = DbScheme::from_schemas(&db.schemas());
    Ok((catalog, scheme, db))
}

fn pick_tree(name: &str, scheme: &DbScheme, db: &Database) -> Result<(JoinTree, u64), String> {
    let mut oracle = ExactOracle::new(db);
    let space = match parse_optimizer(name)? {
        Optimizer::Greedy => {
            let (tree, cost) = greedy(scheme, &mut oracle, true);
            return Ok((tree, cost));
        }
        Optimizer::Dp(space) => space,
    };
    let opt = optimize(scheme, &mut oracle, space)
        .ok_or_else(|| format!("optimizer `{name}`: search space is empty for this scheme"))?;
    Ok((opt.tree, opt.cost))
}

fn analyze(catalog: &Catalog, scheme: &DbScheme, db: &Database) {
    println!("relations: {}", scheme.num_relations());
    println!("attributes: {}", scheme.num_attrs());
    println!("scheme: {}", scheme.display(catalog));
    println!("connected: {}", scheme.fully_connected());
    println!("acyclic (GYO): {}", is_acyclic(scheme));
    println!("quasi-optimality factor r(a+5): {}", scheme.quasi_factor());
    println!("input tuples: {}", db.total_tuples());
    println!("pairwise consistent: {}", pairwise_consistent(db));
}

/// Program shape handed to the EXPLAIN ANALYZE renderer: statement texts in
/// statement order plus the level schedule.
struct ExplainInfo {
    stmt_names: Vec<String>,
    level_of: Vec<usize>,
    depth: usize,
    width: usize,
}

impl ExplainInfo {
    fn of(program: &Program, scheme: &DbScheme, catalog: &Catalog) -> Self {
        let rendered = display::render(program, scheme, catalog);
        let sched = schedule(program);
        ExplainInfo {
            stmt_names: rendered.lines().map(str::to_string).collect(),
            depth: sched.depth(),
            width: sched.width(),
            level_of: sched.level_of,
        }
    }
}

fn run(args: &Args, execute_it: bool) -> Result<Option<ExplainInfo>, String> {
    let (catalog, scheme, db) = load(&args.files)?;
    if !scheme.fully_connected() {
        return Err(
            "the input relations' scheme is disconnected; the result would be a Cartesian \
             product across components — join each component separately"
                .to_string(),
        );
    }
    let (t1, t1_cost) = pick_tree(&args.optimizer, &scheme, &db)?;
    eprintln!(
        "T1 ({}, cost {}): {}",
        args.optimizer,
        t1_cost,
        t1.display(&scheme, &catalog)
    );

    let d = derive(&scheme, &t1).map_err(|e| e.to_string())?;
    eprintln!("T2 (CPF): {}", d.cpf_tree.display(&scheme, &catalog));
    eprintln!("program ({} statements):", d.program.len());
    eprint!("{}", display::render(&d.program, &scheme, &catalog));
    let info = ExplainInfo::of(&d.program, &scheme, &catalog);

    if execute_it {
        let run = match args.mem_budget {
            Some(budget) => {
                run_pipeline_with(&scheme, &t1, &db, &mut FirstChoice, |d| {
                    let mut cfg = ExecConfig::with_threads(args.threads);
                    cfg.mem_budget = Some(budget);
                    // Certify the derived program's memory footprint and
                    // route over-budget build sides through the Grace-hash
                    // spill path — decided here, before execution.
                    if let Ok(cx) = mjoin::analyze::AnalysisCx::new(&d.program, &scheme, &catalog) {
                        let sizes: Vec<u64> =
                            db.relations().iter().map(|r| r.len() as u64).collect();
                        let mem = memory_report(&cx, &sizes);
                        eprintln!(
                            "memory: certified peak {} bytes (budget {budget})",
                            mem.peak_bytes
                        );
                        let plan = mem.spill_plan(budget);
                        if plan.any() {
                            eprintln!("memory: spilling statements {:?}", plan.spilled_stmts());
                            cfg.spill = Some(std::sync::Arc::new(plan));
                        }
                    }
                    cfg
                })
            }
            None => run_pipeline(&scheme, &t1, &db, &mut FirstChoice),
        }
        .map_err(|e| e.to_string())?;
        eprintln!("cost(T1(D)) = {}", run.tree_cost);
        eprintln!(
            "cost(P(D))  = {} (peak resident {})",
            run.program_cost(),
            run.exec.peak_resident
        );
        eprintln!(
            "ledger: inputs {} + heads {} = cost {}",
            run.exec.ledger.input_total(),
            run.exec.ledger.generated_total(),
            run.exec.ledger.total()
        );
        eprintln!("result: {} tuples", run.exec.result.len());
        // Stream straight from the result's columns — no whole-file String.
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        tsv::relation_to_tsv_writer(&catalog, &run.exec.result, &mut out)
            .and_then(|()| std::io::Write::flush(&mut out))
            .map_err(|e| format!("writing result: {e}"))?;
    }
    Ok(Some(info))
}

/// Parse a `.mj` program file plus its database scheme (from `--scheme` or
/// the file's `# scheme:` directive), interning into a fresh catalog.
fn parse_program_file(
    path: &str,
    scheme_flag: Option<&String>,
) -> Result<(Catalog, DbScheme, Program), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let scheme_text = match scheme_flag {
        Some(s) => s.clone(),
        None => text
            .lines()
            .filter_map(|l| l.trim().strip_prefix("# scheme:"))
            .map(|s| s.trim().to_string())
            .next()
            .ok_or_else(|| {
                format!("`{path}` has no `# scheme: AB,BC,…` directive; pass --scheme")
            })?,
    };
    let parts: Vec<&str> = scheme_text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if parts.is_empty() {
        return Err(format!("empty scheme `{scheme_text}`"));
    }
    let mut catalog = Catalog::new();
    let scheme = DbScheme::parse(&mut catalog, &parts);
    let program = mjoin::program::parse_program(&catalog, &scheme, &text)
        .map_err(|e| format!("`{path}`: {e}"))?;
    Ok((catalog, scheme, program))
}

/// Expand data arguments: a directory stands for its `.tsv` files (sorted
/// by name); anything else is taken as a file path.
fn expand_data_paths(paths: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for p in paths {
        if std::path::Path::new(p).is_dir() {
            let mut found = Vec::new();
            let entries =
                std::fs::read_dir(p).map_err(|e| format!("cannot read directory `{p}`: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("cannot read directory `{p}`: {e}"))?;
                let path = entry.path();
                if path.extension().is_some_and(|x| x == "tsv") {
                    found.push(path.to_string_lossy().into_owned());
                }
            }
            if found.is_empty() {
                return Err(format!("directory `{p}` contains no .tsv files"));
            }
            found.sort();
            out.extend(found);
        } else {
            out.push(p.clone());
        }
    }
    Ok(out)
}

/// Load TSV files and line them up with the scheme's relations: each file
/// is matched (and consumed) by the first unmatched scheme edge with the
/// same attribute set, so file order doesn't matter but every edge needs
/// exactly one file.
fn load_db_for_scheme(
    catalog: &mut Catalog,
    scheme: &DbScheme,
    data_paths: &[String],
) -> Result<Database, String> {
    let mut loaded: Vec<Option<(String, Relation)>> = data_paths
        .iter()
        .map(|p| Ok(Some((p.clone(), load_tsv(catalog, p)?))))
        .collect::<Result<_, String>>()?;
    let mut relations = Vec::with_capacity(scheme.num_relations());
    for i in 0..scheme.num_relations() {
        let want = scheme.attrs_of(i);
        let slot = loaded.iter_mut().find(|s| {
            s.as_ref().is_some_and(|(_, rel)| {
                AttrSet::from_iter_ids(rel.schema().attrs().iter().copied()) == *want
            })
        });
        match slot {
            Some(s) => relations.push(s.take().expect("matched above").1),
            None => {
                return Err(format!(
                    "no data file matches scheme relation {} ({})",
                    i,
                    Schema::from_set(want).display(catalog)
                ))
            }
        }
    }
    if let Some((path, _)) = loaded.iter().flatten().next() {
        return Err(format!(
            "data file `{path}` matches no relation of the scheme (or a duplicate)"
        ));
    }
    Ok(Database::from_relations(relations))
}

/// Execute `program` over the data files/directories in `data_args` and
/// diff measured per-statement costs against the static certificate and
/// interval bounds. Returns the rendered report and whether it stayed
/// below `deny`.
fn run_audit(
    catalog: &mut Catalog,
    scheme: &DbScheme,
    program: &Program,
    data_args: &[String],
    format: &str,
    deny: Severity,
) -> Result<(String, bool), String> {
    if data_args.is_empty() {
        return Err("audit needs TSV data files (or a directory) after the program".to_string());
    }
    let data_paths = expand_data_paths(data_args)?;
    let db = load_db_for_scheme(catalog, scheme, &data_paths)?;
    let mut oracle = mjoin::optimizer::HistogramOracle::new(scheme, &db);
    let mut estimate = |set: RelSet| oracle.subjoin_size(set);
    let report = mjoin::analyze::audit(
        program,
        scheme,
        catalog,
        &db,
        &ExecConfig::default(),
        Some(&mut estimate),
    )
    .map_err(|e| e.to_string())?;
    let rendered = match format {
        "text" => {
            let cx = mjoin::analyze::AnalysisCx::new(program, scheme, catalog)
                .map_err(|e| e.to_string())?;
            report.render_text(&cx)
        }
        "json" => report.render_json(scheme, catalog),
        other => return Err(format!("unknown --format `{other}` (text|json)")),
    };
    Ok((rendered, report.report.clean_at(deny)))
}

/// `audit`: one `.mj` program plus data files/directories; the report goes
/// to stdout, exit status reflects `--deny`.
fn audit_cmd(args: &Args) -> Result<bool, String> {
    let (progs, data): (Vec<String>, Vec<String>) =
        args.files.iter().cloned().partition(|f| f.ends_with(".mj"));
    let path = match progs.as_slice() {
        [one] => one,
        _ => return Err("audit needs exactly one .mj program file".to_string()),
    };
    let (mut catalog, scheme, program) = parse_program_file(path, args.scheme.as_ref())?;
    let deny = Severity::parse(&args.deny)
        .ok_or_else(|| format!("unknown --deny level `{}` (note|warn|error)", args.deny))?;
    let (rendered, clean) = run_audit(&mut catalog, &scheme, &program, &data, &args.format, deny)?;
    match args.format.as_str() {
        "json" => println!("{rendered}"),
        _ => print!("{rendered}"),
    }
    Ok(clean)
}

/// Lint a program file with `mjoin-analyze`. Returns whether the report
/// stayed below the `--deny` threshold (the process exit status). With
/// `--verify-run`, trailing TSV files/directories are executed against the
/// program and the measured-vs-static audit must pass too.
/// Lint one conjunctive-query/Datalog source file (`#` comment lines
/// allowed) with the query lints: redundant atoms (Chandra–Merlin core),
/// Cartesian components, duplicate and dominated atoms. Returns whether
/// the report stayed below `deny`.
fn check_query_file(path: &str, deny: Severity, format: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let stripped: Vec<&str> = text
        .lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .collect();
    let rules = parse_rules(&stripped.join("\n")).map_err(|e| format!("`{path}`: {e}"))?;
    let report = match rules.as_slice() {
        [one] => lint_query(one),
        many => lint_rules(many),
    };
    match format {
        "text" => eprint!("{path}:\n{}", report.render_text()),
        "json" => eprintln!("{}", report.render_json()),
        other => return Err(format!("unknown --format `{other}` (text|json)")),
    }
    Ok(report.clean_at(deny))
}

fn check(args: &Args) -> Result<bool, String> {
    let deny_parsed = Severity::parse(&args.deny)
        .ok_or_else(|| format!("unknown --deny level `{}` (note|warn|error)", args.deny))?;
    let query_files: Vec<&String> = if args.query_lint {
        args.files.iter().collect()
    } else {
        args.files
            .iter()
            .filter(|f| f.ends_with(".cq") || f.ends_with(".dl"))
            .collect()
    };
    if !query_files.is_empty() {
        // Under --query every file is linted as a query source, so a stray
        // .mj or .tsv argument is still a mix-up worth naming, not a parse
        // error deep inside the query parser.
        let mixed = query_files.len() != args.files.len()
            || query_files
                .iter()
                .any(|f| f.ends_with(".mj") || f.ends_with(".tsv"));
        if mixed {
            return Err(
                "check cannot mix query sources (.cq/.dl) with .mj programs or data".to_string(),
            );
        }
        if args.verify_run {
            return Err("--verify-run applies to .mj programs, not query sources".to_string());
        }
        let mut clean = true;
        for path in query_files {
            clean &= check_query_file(path, deny_parsed, &args.format)?;
        }
        return Ok(clean);
    }
    let (progs, data): (Vec<String>, Vec<String>) =
        args.files.iter().cloned().partition(|f| f.ends_with(".mj"));
    let path = match progs.as_slice() {
        [one] => one,
        _ => return Err("check needs exactly one program file".to_string()),
    };
    if !args.verify_run && !args.memory && !data.is_empty() {
        return Err(
            "check takes only a program file (use --verify-run or --memory to pass data)"
                .to_string(),
        );
    }
    let (mut catalog, scheme, program) = parse_program_file(path, args.scheme.as_ref())?;
    let deny = deny_parsed;
    let report = mjoin::analyze::analyze(&program, &scheme, &catalog);
    match args.format.as_str() {
        "text" => eprint!("{}", report.render_text()),
        "json" => eprintln!("{}", report.render_json()),
        other => return Err(format!("unknown --format `{other}` (text|json)")),
    }
    let mut clean = report.clean_at(deny);
    if args.memory {
        // Seed the certificate's input cardinalities from the data files
        // when given; otherwise a flat default, which still exposes the
        // program's *shape* (which statement peaks, what spills).
        let seeds: Vec<u64> = if data.is_empty() {
            vec![1024; scheme.num_relations()]
        } else {
            let data_paths = expand_data_paths(&data)?;
            let db = load_db_for_scheme(&mut catalog, &scheme, &data_paths)?;
            db.relations().iter().map(|r| r.len() as u64).collect()
        };
        let cx = mjoin::analyze::AnalysisCx::new(&program, &scheme, &catalog)
            .map_err(|e| e.to_string())?;
        let mem = memory_report(&cx, &seeds);
        match args.format.as_str() {
            "json" => eprintln!("{}", mem.render_json()),
            _ => eprint!("{}", mem.render_text()),
        }
        if let Some(budget) = args.mem_budget {
            let blowups = Report {
                diagnostics: mem_blowup(&cx, &seeds, budget),
            };
            match args.format.as_str() {
                "json" => eprintln!("{}", blowups.render_json()),
                _ => eprint!("{}", blowups.render_text()),
            }
            clean = clean && blowups.clean_at(deny);
        }
    }
    if args.verify_run {
        let (rendered, audit_clean) =
            run_audit(&mut catalog, &scheme, &program, &data, &args.format, deny)?;
        match args.format.as_str() {
            "json" => eprintln!("{rendered}"),
            _ => eprint!("{rendered}"),
        }
        clean = clean && audit_clean;
    }
    Ok(clean)
}

/// Load each TSV file as a predicate named by its file stem.
fn load_named(files: &[String]) -> Result<NamedDatabase, String> {
    let mut ndb = NamedDatabase::new();
    for path in files {
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a predicate name from `{path}`"))?;
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        ndb.add_tsv(stem, &text)
            .map_err(|e| format!("`{path}`: {e}"))?;
    }
    Ok(ndb)
}

fn plan_strategy(name: &str) -> Result<PlanStrategy, String> {
    Ok(match parse_optimizer(name)? {
        Optimizer::Greedy => PlanStrategy::Greedy,
        Optimizer::Dp(SearchSpace::All) => PlanStrategy::DpOptimal,
        Optimizer::Dp(SearchSpace::Cpf) => PlanStrategy::DpCpf,
        Optimizer::Dp(SearchSpace::Linear | SearchSpace::LinearCpf) => PlanStrategy::DpLinear,
    })
}

fn query(args: &Args) -> Result<Option<ExplainInfo>, String> {
    let (query_text, files) = args
        .files
        .split_first()
        .ok_or("query needs a query string and at least one TSV file")?;
    let ndb = load_named(files)?;
    let q = parse_query(query_text).map_err(|e| e.to_string())?;
    let strategy = plan_strategy(&args.optimizer)?;
    let opts = ExecOptions {
        executor: ExecutorKind::parse(&args.executor)?,
        threads: args.threads,
        cache: None,
        minimize: args.minimize,
        mem_budget: args.mem_budget,
    };
    let (res, decisions) =
        execute_query_with(&ndb, &q, strategy, &opts).map_err(|e| e.to_string())?;
    eprintln!("{q}");
    if let Some(m) = &res.minimize {
        if m.atoms_after < m.atoms_before {
            eprintln!(
                "minimize: dropped {} of {} atoms ({}); AGM bound {} -> {}",
                m.atoms_before - m.atoms_after,
                m.atoms_before,
                m.dropped.join(", "),
                m.agm_before,
                m.agm_after
            );
        } else {
            eprintln!(
                "minimize: query is its own core ({} atoms, AGM bound {})",
                m.atoms_before, m.agm_before
            );
        }
    }
    for d in &decisions {
        match (d.agm_bound, d.cert_bound) {
            (Some(agm), Some(cert)) => eprintln!(
                "component {}: executor {} (AGM bound {agm} vs certificate bound {cert})",
                d.component,
                d.executor.name()
            ),
            _ => eprintln!("component {}: executor {}", d.component, d.executor.name()),
        }
    }
    eprintln!("{} answers, cost {} tuples", res.len(), res.ledger.total());
    // One locked, buffered writer for the whole dump instead of a flushing
    // `println!` per answer row.
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let emit = |out: &mut std::io::BufWriter<std::io::StdoutLock>| -> std::io::Result<()> {
        writeln!(out, "{}", q.head_vars.join("\t"))?;
        for row in res.rows_in_head_order() {
            let cells: Vec<String> = row.iter().map(std::string::ToString::to_string).collect();
            writeln!(out, "{}", cells.join("\t"))?;
        }
        out.flush()
    };
    emit(&mut out).map_err(|e| format!("writing answers: {e}"))?;
    Ok(None)
}

/// Evaluate a Datalog rule program to its least fixpoint and print each
/// derived predicate's facts.
fn datalog(args: &Args) -> Result<Option<ExplainInfo>, String> {
    let (rules_text, files) = args
        .files
        .split_first()
        .ok_or("datalog needs a rules string and at least one TSV file")?;
    let ndb = load_named(files)?;
    let rules = parse_rules(rules_text).map_err(|e| e.to_string())?;
    let strategy = plan_strategy(&args.optimizer)?;
    let res = evaluate_datalog(&ndb, &rules, strategy).map_err(|e| e.to_string())?;
    eprintln!(
        "{} rules, fixpoint after {} iterations, cost {} tuples",
        rules.len(),
        res.iterations,
        res.total_cost
    );
    let mut preds: Vec<&String> = res.facts.keys().collect();
    preds.sort();
    for p in preds {
        let facts = res.facts_of(p);
        println!("# {p} ({} facts)", facts.len());
        for row in facts {
            let cells: Vec<String> = row.iter().map(std::string::ToString::to_string).collect();
            println!("{}", cells.join("\t"));
        }
    }
    Ok(None)
}

/// Run the resident query server until a client sends `shutdown`. The
/// bound address goes to stdout first (port `0` picks a free one) so
/// scripts can scrape it; everything else stays on stderr.
fn serve_cmd(args: &Args) -> Result<Option<ExplainInfo>, String> {
    let cfg = mjoin::serve::ServeConfig {
        addr: args.addr.clone(),
        threads: args.threads,
        max_cost: args.max_cost,
        queue_depth: args.queue_depth,
        mem_budget: args.mem_budget,
        ..Default::default()
    };
    let server =
        mjoin::serve::Server::bind(cfg).map_err(|e| format!("cannot bind `{}`: {e}", args.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("serve: listening on {addr}");
    use std::io::Write as _;
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    server.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!("serve: drained and stopped");
    Ok(None)
}

/// Send each non-empty, non-comment stdin line to the server as one
/// request; print each response line to stdout. Exits nonzero if any
/// response carried `"ok": false`, so scripts can assert on rejections.
fn client_cmd(args: &Args) -> Result<Option<ExplainInfo>, String> {
    use std::io::BufRead as _;
    let mut client = mjoin::serve::Client::connect(&args.addr)
        .map_err(|e| format!("cannot connect to `{}`: {e}", args.addr))?;
    let mut failures = 0u64;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let resp = client
            .request_line(trimmed)
            .map_err(|e| format!("request failed: {e}"))?;
        println!("{}", resp.render());
        if resp.get("ok").and_then(mjoin::serve::Value::as_bool) == Some(false) {
            failures += 1;
        }
    }
    if failures > 0 {
        return Err(format!("server rejected {failures} request(s)"));
    }
    Ok(None)
}

/// Drain the trace sink once and surface it: the EXPLAIN ANALYZE report on
/// stderr (when requested) and/or a Chrome trace JSON file (when
/// `MJOIN_TRACE` names a path). Stdout is never touched — it stays a TSV.
fn emit_trace_outputs(explain: bool, info: Option<&ExplainInfo>) {
    let trace = mjoin_trace::take();
    if explain {
        eprintln!();
        eprintln!("== EXPLAIN ANALYZE ==");
        if let Some(info) = info {
            eprintln!(
                "schedule: {} statements, depth {} (levels), width {} (max statements/level)",
                info.stmt_names.len(),
                info.depth,
                info.width
            );
            let mut stmt_events: Vec<Option<&mjoin_trace::Event>> =
                vec![None; info.stmt_names.len()];
            for ev in &trace.events {
                if ev.cat == "exec" && ev.name == "stmt" {
                    if let Some(i) = ev.int_arg("index") {
                        if let Some(slot) = stmt_events.get_mut(i as usize) {
                            *slot = Some(ev);
                        }
                    }
                }
            }
            for (i, name) in info.stmt_names.iter().enumerate() {
                match stmt_events[i] {
                    Some(ev) => eprintln!(
                        "  stmt {:>3}  level {:>2}  {:>9.3} ms  {:>9} rows  {}",
                        i,
                        info.level_of[i],
                        ev.dur_us as f64 / 1e3,
                        ev.int_arg("out_rows").unwrap_or(-1),
                        name
                    ),
                    None => eprintln!(
                        "  stmt {:>3}  level {:>2}  (not executed)  {}",
                        i, info.level_of[i], name
                    ),
                }
            }
        }
        eprint!("{}", trace.render_summary());
    }
    if let Ok(path) = std::env::var("MJOIN_TRACE") {
        if !path.trim().is_empty() {
            match std::fs::write(&path, trace.to_chrome_json()) {
                Ok(()) => eprintln!("trace: wrote Chrome trace JSON to {path}"),
                Err(e) => eprintln!("trace: cannot write `{path}`: {e}"),
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Parsed::Help) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Ok(Parsed::Run(a)) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if args.command == "check" || args.command == "audit" {
        // `check`/`audit` have their own exit semantics: failure means the
        // program tripped a finding at the --deny threshold, not that the
        // tool broke.
        let verdict = if args.command == "check" {
            check(&args)
        } else {
            audit_cmd(&args)
        };
        return match verdict {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.explain {
        mjoin_trace::set_enabled(true);
    }
    let tracing = mjoin_trace::enabled();
    let outcome = match args.command.as_str() {
        "analyze" => load(&args.files).map(|(c, s, d)| {
            analyze(&c, &s, &d);
            None
        }),
        "plan" => run(&args, false),
        "run" => run(&args, true),
        "query" => query(&args),
        "datalog" => datalog(&args),
        "serve" => serve_cmd(&args),
        "client" => client_cmd(&args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match outcome {
        Ok(info) => {
            if tracing {
                emit_trace_outputs(args.explain, info.as_ref());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
