//! `mjoin_cli` — join a set of TSV relations with the paper's pipeline.
//!
//! ```text
//! mjoin_cli analyze  R1.tsv R2.tsv …            # scheme diagnostics
//! mjoin_cli plan     [--optimizer X] R1.tsv …   # show tree + program
//! mjoin_cli run      [--optimizer X] R1.tsv …   # execute, TSV on stdout
//! mjoin_cli query "Q(x,z) :- r1(x,y), r2(y,z)" R1.tsv …   # conjunctive query
//! ```
//!
//! For `query`, each TSV file defines a predicate named by its file stem
//! (`edges.tsv` → `edges`), with columns bound positionally in header order.
//!
//! Each TSV file holds one relation: a tab-separated header of attribute
//! names, then one tuple per line. The optimizer picks the input tree `T₁`
//! (`greedy` default; `dp`, `dp-cpf`, `dp-linear` for the exact DP optima);
//! Algorithms 1 and 2 then derive the program that is executed.
//!
//! Costs (the paper's §2.3 tuple counts) go to stderr so stdout stays a
//! clean TSV.

use mjoin::prelude::*;
use mjoin::program::display;
use mjoin::relation::tsv;
use std::process::ExitCode;

struct Args {
    command: String,
    optimizer: String,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut optimizer = "greedy".to_string();
    let mut files = Vec::new();
    while let Some(arg) = argv.next() {
        if arg == "--optimizer" {
            optimizer = argv.next().ok_or("--optimizer needs a value")?;
        } else if let Some(rest) = arg.strip_prefix("--optimizer=") {
            optimizer = rest.to_string();
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(Args {
        command,
        optimizer,
        files,
    })
}

fn usage() -> String {
    "usage: mjoin_cli <analyze|plan|run|query> [--optimizer greedy|dp|dp-cpf|dp-linear] [\"Q(x) :- …\"] <relation.tsv>…"
        .to_string()
}

fn load(files: &[String]) -> Result<(Catalog, DbScheme, Database), String> {
    let mut catalog = Catalog::new();
    let mut relations = Vec::new();
    for path in files {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let rel =
            tsv::relation_from_tsv(&mut catalog, &text).map_err(|e| format!("`{path}`: {e}"))?;
        relations.push(rel);
    }
    let db = Database::from_relations(relations);
    let scheme = DbScheme::from_schemas(&db.schemas());
    Ok((catalog, scheme, db))
}

fn pick_tree(name: &str, scheme: &DbScheme, db: &Database) -> Result<(JoinTree, u64), String> {
    let mut oracle = ExactOracle::new(db);
    let space = match name {
        "greedy" => {
            let (tree, cost) = greedy(scheme, &mut oracle, true);
            return Ok((tree, cost));
        }
        "dp" => SearchSpace::All,
        "dp-cpf" => SearchSpace::Cpf,
        "dp-linear" => SearchSpace::Linear,
        other => {
            return Err(format!(
                "unknown optimizer `{other}` (try greedy|dp|dp-cpf|dp-linear)"
            ))
        }
    };
    let opt = optimize(scheme, &mut oracle, space)
        .ok_or_else(|| format!("optimizer `{name}`: search space is empty for this scheme"))?;
    Ok((opt.tree, opt.cost))
}

fn analyze(catalog: &Catalog, scheme: &DbScheme, db: &Database) {
    println!("relations: {}", scheme.num_relations());
    println!("attributes: {}", scheme.num_attrs());
    println!("scheme: {}", scheme.display(catalog));
    println!("connected: {}", scheme.fully_connected());
    println!("acyclic (GYO): {}", is_acyclic(scheme));
    println!("quasi-optimality factor r(a+5): {}", scheme.quasi_factor());
    println!("input tuples: {}", db.total_tuples());
    println!("pairwise consistent: {}", pairwise_consistent(db));
}

fn run(args: &Args, execute_it: bool) -> Result<(), String> {
    let (catalog, scheme, db) = load(&args.files)?;
    if !scheme.fully_connected() {
        return Err(
            "the input relations' scheme is disconnected; the result would be a Cartesian \
             product across components — join each component separately"
                .to_string(),
        );
    }
    let (t1, t1_cost) = pick_tree(&args.optimizer, &scheme, &db)?;
    eprintln!(
        "T1 ({}, cost {}): {}",
        args.optimizer,
        t1_cost,
        t1.display(&scheme, &catalog)
    );

    let d = derive(&scheme, &t1).map_err(|e| e.to_string())?;
    eprintln!("T2 (CPF): {}", d.cpf_tree.display(&scheme, &catalog));
    eprintln!("program ({} statements):", d.program.len());
    eprint!("{}", display::render(&d.program, &scheme, &catalog));

    if execute_it {
        let run = run_pipeline(&scheme, &t1, &db, &mut FirstChoice).map_err(|e| e.to_string())?;
        eprintln!("cost(T1(D)) = {}", run.tree_cost);
        eprintln!(
            "cost(P(D))  = {} (peak resident {})",
            run.program_cost(),
            run.exec.peak_resident
        );
        eprintln!("result: {} tuples", run.exec.result.len());
        print!("{}", tsv::relation_to_tsv(&catalog, &run.exec.result));
    }
    Ok(())
}

fn query(args: &Args) -> Result<(), String> {
    let (query_text, files) = args
        .files
        .split_first()
        .ok_or("query needs a query string and at least one TSV file")?;
    let mut ndb = NamedDatabase::new();
    for path in files {
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a predicate name from `{path}`"))?;
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        ndb.add_tsv(stem, &text)
            .map_err(|e| format!("`{path}`: {e}"))?;
    }
    let q = parse_query(query_text).map_err(|e| e.to_string())?;
    let strategy = match args.optimizer.as_str() {
        "greedy" => PlanStrategy::Greedy,
        "dp" => PlanStrategy::DpOptimal,
        "dp-cpf" => PlanStrategy::DpCpf,
        other => {
            return Err(format!(
                "unknown optimizer `{other}` for query (try greedy|dp|dp-cpf)"
            ))
        }
    };
    let res = execute_query(&ndb, &q, strategy).map_err(|e| e.to_string())?;
    eprintln!("{q}");
    eprintln!("{} answers, cost {} tuples", res.len(), res.ledger.total());
    println!("{}", q.head_vars.join("\t"));
    for row in res.rows_in_head_order() {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let outcome = match args.command.as_str() {
        "analyze" => load(&args.files).map(|(c, s, d)| analyze(&c, &s, &d)),
        "plan" => run(&args, false),
        "run" => run(&args, true),
        "query" => query(&args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
