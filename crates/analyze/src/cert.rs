//! The symbolic cost certificate: a per-statement bound on every head's
//! cardinality in terms of intermediates `⋈D[𝒰]` of the input database —
//! the statement-level content of the paper's Theorem 2.
//!
//! Theorem 2's proof bounds every statement of an Algorithm-2 program by
//! the size of some intermediate `⋈D[𝒰]` (𝒰 a set of base relations),
//! which Claim C then multiplies out to `r(a+5)·cost(T1(D))`. This module
//! recovers those per-statement bounds *statically*, for any valid
//! program — generated or hand-written — by abstract interpretation over
//! the register file.
//!
//! ## The abstract domain
//!
//! Each register is tracked as a state `(𝒰, T, sub, factors)` where `𝒰` is
//! a set of base relations, `T` the register's current scheme, and the
//! invariant is:
//!
//! * if `sub` holds: `R(reg) ⊆ π_T(⋈D[𝒰])`, hence `|R(reg)| ≤ |⋈D[𝒰]|`
//!   (a *tight* bound by a single intermediate);
//! * always: `|R(reg)| ≤ Π_{S ∈ factors} |⋈D[S]|` (the product fallback);
//!   for a `sub` state `factors = [𝒰]`.
//!
//! Transfer functions:
//!
//! * **base** `i`: `sub` with `𝒰 = {i}` — the input relation is trivially
//!   a subset of itself.
//! * **semijoin** `t ⋉ f`: the head is a subset of `t`, so `t`'s state
//!   carries over unchanged (whatever bound held, still holds).
//! * **project** `π_A(s)`: a projection of a projection is a projection,
//!   and `|π(X)| ≤ |X|`, so `s`'s state carries over with scheme `A`.
//! * **join** `x ⋈ y`, both `sub` with `(𝒰x, Tx)`, `(𝒰y, Ty)`: the head is
//!   `sub` with `𝒰x ∪ 𝒰y` if either orientation of the *witness-patching
//!   conditions* holds (see below); otherwise the head falls back to the
//!   product of the operands' factor lists (`|x ⋈ y| ≤ |x|·|y|`).
//!
//! ## Why the join rule is sound
//!
//! Take a head tuple `t` of `x ⋈ y`. By the operand invariants there are
//! witnesses `mx ∈ ⋈D[𝒰x]` with `mx|Tx = t|Tx` and `my ∈ ⋈D[𝒰y]` with
//! `my|Ty = t|Ty`. Build the patched assignment `m' = mx` on `attrs(𝒰x)`,
//! `my` elsewhere on `attrs(𝒰y)`. `m'` lies in `⋈D[𝒰x ∪ 𝒰y]` and restricts
//! to `t` provided
//!
//! 1. `Ty ∩ attrs(𝒰x) ⊆ Tx` — wherever `t`'s `y`-part reads through the
//!    `mx` patch, `mx` is pinned to `t` too;
//! 2. `attrs(𝒰y ∖ 𝒰x) ∩ attrs(𝒰x) ⊆ Tx ∩ Ty` — every relation of `𝒰y`
//!    outside `𝒰x` sees `mx` and `my` only where they provably agree
//!    (both equal `t` on `Tx ∩ Ty`).
//!
//! Either orientation (`x` patched over `y`, or `y` over `x`) suffices.
//! When both operands still carry their full scheme (`T = attrs(𝒰)`) the
//! conditions hold trivially — that is the classical "join of subjoins is
//! a subjoin" case — but the general form also certifies the re-join of a
//! projected F-register into V (Algorithm 2 Steps 10–14), which is what
//! makes the certificate tight on the paper's Example 6. Projections that
//! genuinely lose the reconciliation attributes (e.g. `π_A R ⋈ π_A S`
//! over `R(AB), S(AB)`) correctly fail both orientations and get the
//! product bound — the single-intermediate bound would be unsound there.

use crate::cx::AnalysisCx;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_program::dataflow::{num_regs, reg_index};
use mjoin_program::{Reg, Stmt};
use mjoin_relation::fxhash::FxHashMap;
use mjoin_relation::{AttrSet, Catalog, Database};

/// Abstract state of one register during the certificate sweep.
#[derive(Debug, Clone)]
struct RegState {
    /// The base relations this value derives from.
    set: RelSet,
    /// The register's scheme at this point.
    scheme: AttrSet,
    /// Whether `R(reg) ⊆ π_scheme(⋈D[set])` provably holds.
    sub: bool,
    /// Sound product bound: `|R(reg)| ≤ Π |⋈D[S]|` over these sets.
    /// Equals `[set]` when `sub`.
    factors: Vec<RelSet>,
}

/// The symbolic bound certified for one statement's head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtBound {
    /// Statement index.
    pub stmt: usize,
    /// `"join"`, `"semijoin"` or `"project"`.
    pub kind: &'static str,
    /// The head is bounded by `Π_{S ∈ factors} |⋈D[S]|`.
    pub factors: Vec<RelSet>,
    /// Whether the bound is a single intermediate `|⋈D[𝒰]|` (the
    /// Theorem-2 shape) rather than a product.
    pub tight: bool,
    /// The base relations the head derives from (`∪` of the factors).
    pub head_set: RelSet,
    /// The tree node Algorithm 2 was processing when it emitted this
    /// statement, when provenance was attached ([`Certificate::attribute`]).
    pub node: Option<RelSet>,
}

/// The whole-program certificate: one [`StmtBound`] per statement, plus
/// the scheme's Theorem-2 constant factor.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Per-statement bounds, in statement order.
    pub stmts: Vec<StmtBound>,
    /// The scheme's `r(a+5)` — Theorem 2's data-independent constant.
    pub quasi_factor: u64,
}

/// Whether joining two `sub` operands keeps the head inside
/// `π(⋈D[𝒰x ∪ 𝒰y])`, checking one patch orientation (`x`'s witness kept
/// whole). See the module docs for the proof.
fn patch_ok(
    scheme: &DbScheme,
    x_set: RelSet,
    x_scheme: &AttrSet,
    y_set: RelSet,
    y_scheme: &AttrSet,
) -> bool {
    let x_attrs = scheme.attrs_of_set(x_set);
    // 1. Ty ∩ attrs(𝒰x) ⊆ Tx.
    if !y_scheme.intersect(&x_attrs).is_subset(x_scheme) {
        return false;
    }
    // 2. attrs(𝒰y ∖ 𝒰x) ∩ attrs(𝒰x) ⊆ Tx ∩ Ty.
    let outside = scheme.attrs_of_set(y_set.difference(x_set));
    outside
        .intersect(&x_attrs)
        .is_subset(&x_scheme.intersect(y_scheme))
}

fn join_transfer(scheme: &DbScheme, l: &RegState, r: &RegState) -> RegState {
    let set = l.set.union(r.set);
    let head_scheme = l.scheme.union(&r.scheme);
    let certified = l.sub
        && r.sub
        && (patch_ok(scheme, l.set, &l.scheme, r.set, &r.scheme)
            || patch_ok(scheme, r.set, &r.scheme, l.set, &l.scheme));
    if certified {
        RegState {
            set,
            scheme: head_scheme,
            sub: true,
            factors: vec![set],
        }
    } else {
        let mut factors = l.factors.clone();
        factors.extend(r.factors.iter().copied());
        RegState {
            set,
            scheme: head_scheme,
            sub: false,
            factors,
        }
    }
}

impl Certificate {
    /// Compute the certificate for an analyzed program.
    pub fn compute(cx: &AnalysisCx<'_>) -> Certificate {
        let program = cx.program;
        let scheme = cx.scheme;
        let mut states: Vec<Option<RegState>> = vec![None; num_regs(program)];
        for (i, state) in states.iter_mut().enumerate().take(scheme.num_relations()) {
            *state = Some(RegState {
                set: RelSet::singleton(i),
                scheme: scheme.attrs_of(i).clone(),
                sub: true,
                factors: vec![RelSet::singleton(i)],
            });
        }
        let resolve = |states: &[Option<RegState>], reg: Reg| -> RegState {
            let mut cur = reg;
            loop {
                match &states[reg_index(program, cur)] {
                    Some(st) => return st.clone(),
                    None => match cur {
                        Reg::Temp(t) => {
                            cur = program.temp_init[t].expect("validated alias");
                        }
                        Reg::Base(_) => unreachable!("bases are seeded"),
                    },
                }
            }
        };

        let mut stmts = Vec::with_capacity(program.stmts.len());
        for (i, stmt) in program.stmts.iter().enumerate() {
            let (head, kind, state) = match stmt {
                Stmt::Project { dst, src, attrs } => {
                    let mut st = resolve(&states, *src);
                    st.scheme = attrs.clone();
                    (*dst, "project", st)
                }
                Stmt::Semijoin { target, filter: _ } => {
                    (*target, "semijoin", resolve(&states, *target))
                }
                Stmt::Join { dst, left, right } => {
                    let l = resolve(&states, *left);
                    let r = resolve(&states, *right);
                    (*dst, "join", join_transfer(scheme, &l, &r))
                }
            };
            stmts.push(StmtBound {
                stmt: i,
                kind,
                factors: state.factors.clone(),
                tight: state.sub,
                head_set: state.set,
                node: None,
            });
            states[reg_index(program, head)] = Some(state);
        }
        Certificate {
            stmts,
            quasi_factor: scheme.quasi_factor(),
        }
    }

    /// Attach per-statement tree-node attribution (e.g. Algorithm 2's
    /// provenance: the S-node being processed when each statement was
    /// emitted). `nodes` must be in statement order and at least as long
    /// as the program.
    pub fn attribute(&mut self, nodes: &[RelSet]) {
        for (bound, &node) in self.stmts.iter_mut().zip(nodes) {
            bound.node = Some(node);
        }
    }

    /// How many statements carry a tight single-intermediate bound.
    pub fn tight_count(&self) -> usize {
        self.stmts.iter().filter(|b| b.tight).count()
    }

    /// Evaluate every statement's bound on a concrete database:
    /// `Π |⋈D[S]|` over the statement's factors, with each distinct
    /// `⋈D[S]` computed once. Saturates at `u64::MAX`. Executes real
    /// sub-joins — exact but expensive; pre-execution admission uses
    /// [`Certificate::evaluate_with`] with a cheap estimator instead.
    pub fn evaluate(&self, db: &Database) -> Vec<u64> {
        let mut cache: FxHashMap<u64, u64> = FxHashMap::default();
        self.evaluate_with(|f| join_card(db, f, &mut cache))
    }

    /// Evaluate every statement's bound with a caller-supplied estimator:
    /// `card(S)` must return `|⋈D[S]|` or a sound upper bound on it (any
    /// overestimate keeps the certified bound sound, it only loosens it).
    /// Products saturate at `u64::MAX`.
    pub fn evaluate_with(&self, mut card: impl FnMut(RelSet) -> u64) -> Vec<u64> {
        self.stmts
            .iter()
            .map(|b| {
                let mut acc: u128 = 1;
                for &f in &b.factors {
                    acc = acc.saturating_mul(u128::from(card(f)));
                }
                u64::try_from(acc).unwrap_or(u64::MAX)
            })
            .collect()
    }

    /// Render one statement's symbolic bound, e.g. `|⋈D[{ABC,CDE}]|` or
    /// `|⋈D[{AB}]|·|⋈D[{CD}]|`.
    pub fn bound_name(&self, i: usize, scheme: &DbScheme, catalog: &Catalog) -> String {
        let parts: Vec<String> = self.stmts[i]
            .factors
            .iter()
            .map(|&f| format!("|⋈D[{}]|", set_name(f, scheme, catalog)))
            .collect();
        parts.join("·")
    }

    /// Plain-text rendering: one line per statement plus a summary.
    pub fn render_text(&self, cx: &AnalysisCx<'_>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "certificate: {} statements, {} tight, {} product-bounded; r(a+5) = {}\n",
            self.stmts.len(),
            self.tight_count(),
            self.stmts.len() - self.tight_count(),
            self.quasi_factor
        ));
        for (i, b) in self.stmts.iter().enumerate() {
            let node = match b.node {
                Some(n) => format!("  [node {}]", set_name(n, cx.scheme, cx.catalog)),
                None => String::new(),
            };
            out.push_str(&format!(
                "  stmt {:>3}  |head| ≤ {}{}{}  {}\n",
                i,
                self.bound_name(i, cx.scheme, cx.catalog),
                if b.tight { "" } else { "  (product)" },
                node,
                cx.excerpt(i).unwrap_or_default()
            ));
        }
        out
    }

    /// JSON rendering (hand-rolled like [`crate::Report::render_json`]; the
    /// workspace is offline, no serde).
    pub fn render_json(&self, scheme: &DbScheme, catalog: &Catalog) -> String {
        let mut out = String::from("{\"stmts\":[");
        for (i, b) in self.stmts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let factors: Vec<String> = b
                .factors
                .iter()
                .map(|&f| format!("\"{}\"", set_name(f, scheme, catalog)))
                .collect();
            out.push_str(&format!(
                "{{\"stmt\":{},\"kind\":\"{}\",\"tight\":{},\"factors\":[{}],\"node\":{}}}",
                b.stmt,
                b.kind,
                b.tight,
                factors.join(","),
                match b.node {
                    Some(n) => format!("\"{}\"", set_name(n, scheme, catalog)),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str(&format!(
            "],\"tight\":{},\"quasi_factor\":{}}}",
            self.tight_count(),
            self.quasi_factor
        ));
        out
    }
}

/// `|⋈D[set]|`, memoized per relation set. Relations are folded in a
/// connectivity-first order so intermediate blowup stays no worse than the
/// final result times the worst single fanout.
fn join_card(db: &Database, set: RelSet, cache: &mut FxHashMap<u64, u64>) -> u64 {
    if let Some(&n) = cache.get(&set.0) {
        return n;
    }
    let schema_set =
        |i: usize| AttrSet::from_iter_ids(db.relation(i).schema().attrs().iter().copied());
    let members = set.to_vec();
    let mut order: Vec<usize> = Vec::with_capacity(members.len());
    let mut attrs = AttrSet::new();
    let mut remaining = members;
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|&i| schema_set(i).intersects(&attrs))
            .unwrap_or(0);
        let i = remaining.swap_remove(pick);
        attrs.union_with(&schema_set(i));
        order.push(i);
    }
    let n = db.join_of(&order).len() as u64;
    cache.insert(set.0, n);
    n
}

/// Render a relation set as the attr-sets of its members: `{ABC,CDE}`.
pub(crate) fn set_name(set: RelSet, scheme: &DbScheme, catalog: &Catalog) -> String {
    let names: Vec<String> = set
        .iter()
        .map(|i| {
            mjoin_relation::Schema::from_set(scheme.attrs_of(i))
                .display(catalog)
                .to_string()
        })
        .collect();
    format!("{{{}}}", names.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_program::ProgramBuilder;
    use mjoin_relation::relation_of_ints;

    fn cx_scheme(schemes: &[&str]) -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, schemes);
        (c, s)
    }

    #[test]
    fn chain_join_is_tight_throughout() {
        let (c, s) = cx_scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let cert = Certificate::compute(&cx);
        assert_eq!(cert.tight_count(), 2);
        assert_eq!(cert.stmts[0].factors, vec![RelSet::from_indices([0, 1])]);
        assert_eq!(cert.stmts[1].factors, vec![RelSet::from_indices([0, 1, 2])]);
    }

    #[test]
    fn lossy_projection_join_falls_back_to_product() {
        // π_A R ⋈ π_A S over R(AB), S(AB): the single-intermediate bound
        // would be unsound (witnesses can disagree on the dropped B), so
        // the certificate must demote to the product bound.
        let (mut c, s) = cx_scheme(&["AB", "AB"]);
        let a = AttrSet::singleton(c.intern("A"));
        let mut b = ProgramBuilder::new(&s);
        let x = b.new_temp("X");
        let y = b.new_temp("Y");
        let z = b.new_temp("Z");
        b.project(x, Reg::Base(0), a.clone());
        b.project(y, Reg::Base(1), a);
        b.join(z, x, y);
        let p = b.finish(z);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let cert = Certificate::compute(&cx);
        assert!(cert.stmts[0].tight && cert.stmts[1].tight);
        assert!(!cert.stmts[2].tight);
        assert_eq!(cert.stmts[2].factors.len(), 2);
    }

    #[test]
    fn evaluated_bounds_are_sound_on_data() {
        let (mut c, s) = cx_scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.join(v, v, Reg::Base(1));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let cert = Certificate::compute(&cx);

        let ab = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4], &[5, 2]]).unwrap();
        let bc = relation_of_ints(&mut c, "BC", &[&[2, 7], &[2, 8]]).unwrap();
        let db = Database::from_relations(vec![ab, bc]);
        let bounds = cert.evaluate(&db);
        let out = mjoin_program::execute(&p, &db);
        for (i, &measured) in out.head_sizes.iter().enumerate() {
            assert!(
                measured as u64 <= bounds[i],
                "stmt {i}: measured {measured} > bound {}",
                bounds[i]
            );
        }
        // The semijoin is bounded by |AB| = 3, the join by |AB ⋈ BC| = 4.
        assert_eq!(bounds, vec![3, 4]);
    }

    #[test]
    fn attribution_and_renderers() {
        let (c, s) = cx_scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let mut cert = Certificate::compute(&cx);
        cert.attribute(&[RelSet::from_indices([0, 1])]);
        assert_eq!(cert.stmts[0].node, Some(RelSet::from_indices([0, 1])));
        let text = cert.render_text(&cx);
        assert!(text.contains("|⋈D[{AB,BC}]|"), "{text}");
        assert!(text.contains("[node {AB,BC}]"), "{text}");
        let json = cert.render_json(&s, &c);
        assert!(json.contains("\"tight\":true"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
