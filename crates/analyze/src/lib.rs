//! `mjoin-analyze`: a dataflow-based static analyzer and lint framework
//! for join/semijoin/projection programs.
//!
//! The paper's pipeline (Algorithm 1 → CPF tree → Algorithm 2 → program)
//! guarantees strong invariants the executor never checks: no Cartesian
//! joins, no no-op semijoins or projections, no dead stores, no repeated
//! computation, statement counts under Claim C's `r(a+5)` bound, and a
//! race-free level schedule. This crate checks those invariants after the
//! fact, over any [`Program`] — generated or hand-written.
//!
//! Analysis runs in two phases: [`AnalysisCx::new`] validates the program
//! and computes every shared dataflow fact once (forward scheme inference,
//! value numbering, def-use chains, backward liveness, the level
//! schedule); then each [`Pass`] reads the context and appends
//! [`Diagnostic`]s to a [`Report`]. `mjoin_cli check` is a thin wrapper
//! around [`analyze`].
//!
//! ```
//! use mjoin_analyze::analyze;
//! use mjoin_hypergraph::DbScheme;
//! use mjoin_program::{ProgramBuilder, Reg};
//! use mjoin_relation::Catalog;
//!
//! let mut catalog = Catalog::new();
//! let scheme = DbScheme::parse(&mut catalog, &["AB", "CD"]);
//! let mut b = ProgramBuilder::new(&scheme);
//! let v = b.new_temp("V");
//! b.join(v, Reg::Base(0), Reg::Base(1)); // AB ⋈ CD: a Cartesian product
//! let program = b.finish(v);
//!
//! let report = analyze(&program, &scheme, &catalog);
//! assert!(!report.is_clean());
//! assert_eq!(report.by_lint("cartesian-join").len(), 1);
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod admission;
pub mod audit;
pub mod cert;
pub mod cx;
pub mod diagnostic;
pub mod memory;
pub mod passes;

pub use absint::{cost_blowup, interval_analysis, CardInterval};
pub use admission::{admission_report, AdmissionBound, AdmissionReport};
pub use audit::{audit, audit_with_certificate, AuditReport, StmtAudit};
pub use cert::{Certificate, StmtBound};
pub use cx::{AnalysisCx, ExprKey, StmtFacts, Vn};
pub use diagnostic::{Diagnostic, Report, Severity};
pub use memory::{mem_blowup, memory_report, memory_report_with, MemCertificate, MemStmt};
pub use passes::{default_passes, Pass};

use mjoin_hypergraph::DbScheme;
use mjoin_program::Program;
use mjoin_relation::Catalog;

/// Analyze `program` with the default pass battery.
///
/// A program that fails static validation yields a single `validate`
/// error — lint passes only run over valid programs.
pub fn analyze(program: &Program, scheme: &DbScheme, catalog: &Catalog) -> Report {
    analyze_with(&default_passes(), program, scheme, catalog)
}

/// Analyze `program` with a caller-chosen set of passes.
pub fn analyze_with(
    passes: &[Box<dyn Pass>],
    program: &Program,
    scheme: &DbScheme,
    catalog: &Catalog,
) -> Report {
    let cx = match AnalysisCx::new(program, scheme, catalog) {
        Ok(cx) => cx,
        Err(e) => {
            return Report {
                diagnostics: vec![Diagnostic {
                    severity: Severity::Error,
                    lint: "validate",
                    stmt: None,
                    message: format!("program is not valid: {e}"),
                    excerpt: None,
                }],
            }
        }
    };
    let mut diagnostics = Vec::new();
    for pass in passes {
        pass.run(&cx, &mut diagnostics);
    }
    Report { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_program::{eliminate_dead_code, ProgramBuilder, Reg};

    fn scheme(schemes: &[&str]) -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, schemes);
        (c, s)
    }

    /// The paper's running full-reducer shape on a chain: semijoin up,
    /// then join down. Clean by construction.
    fn clean_chain_program() -> (Catalog, DbScheme, Program) {
        let (c, s) = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(1), Reg::Base(2));
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        (c, s, p)
    }

    #[test]
    fn clean_program_produces_empty_report() {
        let (c, s, p) = clean_chain_program();
        let report = analyze(&p, &s, &c);
        assert!(
            report.diagnostics.is_empty(),
            "expected no findings, got:\n{}",
            report.render_text()
        );
    }

    #[test]
    fn cartesian_join_is_flagged() {
        let (c, s) = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        b.join(v, Reg::Base(0), Reg::Base(2)); // AB ⋈ CD shares nothing
        b.join(v, v, Reg::Base(1));
        let p = b.finish(v);
        let report = analyze(&p, &s, &c);
        let hits = report.by_lint("cartesian-join");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].stmt, Some(0));
        assert_eq!(hits[0].severity, Severity::Warn);
        assert!(hits[0].excerpt.as_deref().unwrap().contains("⋈"));
        assert!(!report.is_clean());
    }

    #[test]
    fn degenerate_disjoint_semijoin_is_flagged() {
        let (c, s) = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(2)); // AB ⋉ CD: no shared attrs
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let report = analyze(&p, &s, &c);
        assert_eq!(report.by_lint("cartesian-join").len(), 1);
    }

    #[test]
    fn noop_semijoins_are_flagged() {
        let (c, s) = scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        b.semijoin(Reg::Base(0), Reg::Base(0)); // self
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(0), Reg::Base(1)); // idempotent repeat
        b.join(v, Reg::Base(0), Reg::Base(1));
        b.semijoin(v, Reg::Base(1)); // target is a join over the filter
        let p = b.finish(v);
        let report = analyze(&p, &s, &c);
        let hits = report.by_lint("noop-semijoin");
        let at: Vec<Option<usize>> = hits.iter().map(|d| d.stmt).collect();
        assert_eq!(at, vec![Some(0), Some(2), Some(4)]);
    }

    #[test]
    fn rewritten_filter_is_not_a_noop() {
        let (c, s) = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(1), Reg::Base(2)); // Base(1) changes value...
        b.semijoin(Reg::Base(0), Reg::Base(1)); // ...so this CAN filter
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let report = analyze(&p, &s, &c);
        assert!(report.by_lint("noop-semijoin").is_empty());
    }

    #[test]
    fn noop_project_is_flagged_but_narrowing_is_not() {
        let (c, s) = scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        let w = b.new_temp("W");
        let x = b.new_temp("X");
        b.join(v, Reg::Base(0), Reg::Base(1));
        let ab = s.attrs_of(0).clone();
        b.project(w, v, ab.clone()); // ABC → AB: real work
        b.project(w, w, ab.clone()); // AB → AB onto itself: identity
        b.project(x, w, ab); // AB → AB into a new register: a pure copy
        let p = b.finish(x);
        let report = analyze(&p, &s, &c);
        let hits = report.by_lint("noop-project");
        assert_eq!(hits.len(), 2);
        assert_eq!((hits[0].stmt, hits[0].severity), (Some(2), Severity::Note));
        assert_eq!((hits[1].stmt, hits[1].severity), (Some(3), Severity::Note));
        // Identity projections are notes (Algorithm 2 can emit them), so
        // they alone never fail the default gate.
        assert!(report.is_clean());
    }

    #[test]
    fn dead_store_matches_eliminate_dead_code() {
        let (c, s) = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        let w = b.new_temp("W");
        b.join(v, Reg::Base(0), Reg::Base(1));
        b.join(w, Reg::Base(1), Reg::Base(2)); // never read: dead
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let report = analyze(&p, &s, &c);
        let flagged: Vec<usize> = report
            .by_lint("dead-store")
            .iter()
            .map(|d| d.stmt.unwrap())
            .collect();
        assert_eq!(flagged, vec![1]);
        // The lint must agree exactly with the optimizer's drop set.
        let optimized = eliminate_dead_code(&p);
        assert_eq!(optimized.stmts.len(), p.stmts.len() - flagged.len());
    }

    #[test]
    fn redundant_recompute_is_flagged_across_commuted_operands() {
        let (c, s) = scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        let w = b.new_temp("W");
        b.join(v, Reg::Base(0), Reg::Base(1));
        b.join(w, Reg::Base(1), Reg::Base(0)); // ⋈ commutes: same value
        b.semijoin(v, w);
        let p = b.finish(v);
        let report = analyze(&p, &s, &c);
        let hits = report.by_lint("redundant-recompute");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].stmt, Some(1));
        // v and w hold the same value, so the semijoin is also a noop.
        assert_eq!(report.by_lint("noop-semijoin").len(), 1);
    }

    #[test]
    fn claim_c_bound_notes_partial_result_and_warns_on_length() {
        let (c, s) = scheme(&["AB", "BC"]);
        // r(a+5) = 2 * (3 + 5) = 16: build a valid 16-statement program.
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        b.join(v, Reg::Base(0), Reg::Base(1));
        for _ in 0..15 {
            b.semijoin(v, Reg::Base(0));
        }
        let p = b.finish(v);
        assert_eq!(p.stmts.len(), 16);
        let report = analyze(&p, &s, &c);
        assert_eq!(report.by_lint("claim-c-bound").len(), 1);
        assert_eq!(report.by_lint("claim-c-bound")[0].severity, Severity::Warn);

        // A short program whose result misses attributes only gets a note.
        let mut b = ProgramBuilder::new(&s);
        let w = b.new_temp_alias("W", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(w);
        let report = analyze(&p, &s, &c);
        let hits = report.by_lint("claim-c-bound");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Note);
        assert!(report.is_clean(), "a note alone keeps the program clean");
    }

    #[test]
    fn invalid_program_reports_a_single_validate_error() {
        let (c, s) = scheme(&["AB", "BC"]);
        let p = Program {
            num_bases: 2,
            temp_names: vec!["V".into()],
            temp_init: vec![None],
            stmts: vec![],
            result: Reg::Temp(0),
        };
        let report = analyze(&p, &s, &c);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].lint, "validate");
        assert_eq!(report.worst(), Some(Severity::Error));
    }

    #[test]
    fn custom_pass_selection_runs_only_those_passes() {
        let (c, s) = scheme(&["AB", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        b.join(v, Reg::Base(0), Reg::Base(1));
        let p = b.finish(v);
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(passes::DeadStore)];
        let report = analyze_with(&passes, &p, &s, &c);
        assert!(report.by_lint("cartesian-join").is_empty());
    }
}
