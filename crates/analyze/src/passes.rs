//! The lint passes.
//!
//! Every pass reads the shared [`AnalysisCx`] and appends
//! [`Diagnostic`]s; passes never mutate the program and never re-derive a
//! dataflow fact the context already holds. The default battery
//! ([`default_passes`]) checks exactly the invariants the paper's pipeline
//! guarantees, so any warning on an Algorithm-2 or optimizer output is a
//! bug in the pipeline, not in the program's author.

use crate::cx::{AnalysisCx, ExprKey};
use crate::diagnostic::{Diagnostic, Severity};
use mjoin_program::schedule::audit_schedule;
use mjoin_program::Stmt;

/// One lint pass over an analyzed program.
pub trait Pass {
    /// The pass's stable kebab-case name; every diagnostic it emits uses
    /// this as its lint name.
    fn name(&self) -> &'static str;
    /// Run the pass, appending findings to `out`.
    fn run(&self, cx: &AnalysisCx<'_>, out: &mut Vec<Diagnostic>);
}

/// The full default battery, in reporting order.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(CartesianJoin),
        Box::new(NoopSemijoin),
        Box::new(NoopProject),
        Box::new(DeadStore),
        Box::new(RedundantRecompute),
        Box::new(ClaimCBound),
        Box::new(ScheduleAudit),
    ]
}

fn diag(
    cx: &AnalysisCx<'_>,
    severity: Severity,
    lint: &'static str,
    stmt: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        severity,
        lint,
        stmt: Some(stmt),
        message,
        excerpt: cx.excerpt(stmt),
    }
}

/// Flags joins whose operands share no attribute — exactly the Cartesian
/// products the whole paper exists to avoid — and semijoins whose operands
/// share no attribute, which degenerate to "keep everything or nothing".
pub struct CartesianJoin;

impl Pass for CartesianJoin {
    fn name(&self) -> &'static str {
        "cartesian-join"
    }

    fn run(&self, cx: &AnalysisCx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, stmt) in cx.program.stmts.iter().enumerate() {
            let f = &cx.stmts[i];
            if f.operand_schemes.len() != 2 {
                continue;
            }
            if f.operand_schemes[0].is_disjoint(&f.operand_schemes[1]) {
                let (l, r) = (
                    cx.attrs_name(&f.operand_schemes[0]),
                    cx.attrs_name(&f.operand_schemes[1]),
                );
                let message = if stmt.is_join() {
                    format!("Cartesian product: join operands R({l}) and R({r}) share no attribute")
                } else {
                    format!(
                        "degenerate semijoin: R({l}) and R({r}) share no attribute, so it keeps \
                         every tuple or none"
                    )
                };
                out.push(diag(cx, Severity::Warn, self.name(), i, message));
            }
        }
    }
}

/// Flags semijoins that provably cannot remove a tuple:
///
/// * `V ⋉ V` — the filter *is* the target;
/// * `V ⋉ W` where `V` currently holds `X ⋈ W` (or `W ⋈ X`) — every tuple
///   of a join already matches both operands;
/// * `V ⋉ W` where `V` currently holds `X ⋉ W` — semijoin by the same
///   filter value is idempotent.
pub struct NoopSemijoin;

impl Pass for NoopSemijoin {
    fn name(&self) -> &'static str {
        "noop-semijoin"
    }

    fn run(&self, cx: &AnalysisCx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, stmt) in cx.program.stmts.iter().enumerate() {
            if !stmt.is_semijoin() {
                continue;
            }
            let f = &cx.stmts[i];
            let (vt, vf) = (f.operand_vns[0], f.operand_vns[1]);
            let reason = if vt == vf {
                Some("the filter holds the same value as the target")
            } else {
                match cx.def_of.get(&vt) {
                    Some(ExprKey::Join(a, b)) if *a == vf || *b == vf => {
                        Some("the target is a join whose operands include the filter's value")
                    }
                    Some(ExprKey::Semijoin(_, prev_f)) if *prev_f == vf => {
                        Some("the target was already semijoined by the same filter value")
                    }
                    _ => None,
                }
            };
            if let Some(why) = reason {
                out.push(diag(
                    cx,
                    Severity::Warn,
                    self.name(),
                    i,
                    format!("semijoin cannot remove any tuple: {why}"),
                ));
            }
        }
    }
}

/// Flags identity projections: `V := π_X(W)` where `X` is exactly `W`'s
/// scheme at that point, so the statement copies its operand unchanged.
///
/// This is a note, not a warning: Algorithm 2's Steps 10/12 faithfully
/// emit an identity projection whenever the attributes a subtree must
/// deliver happen to equal the variable's whole scheme (the analyzer's
/// own corpus tests demonstrate it on 4-relation chains), so warning here
/// would indict correct pipeline output. The `NoProjections` ablation
/// turns *every* projection into this shape, which the note count makes
/// visible.
pub struct NoopProject;

impl Pass for NoopProject {
    fn name(&self) -> &'static str {
        "noop-project"
    }

    fn run(&self, cx: &AnalysisCx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, stmt) in cx.program.stmts.iter().enumerate() {
            let Stmt::Project { attrs, .. } = stmt else {
                continue;
            };
            let f = &cx.stmts[i];
            if *attrs == f.operand_schemes[0] {
                out.push(diag(
                    cx,
                    Severity::Note,
                    self.name(),
                    i,
                    format!(
                        "identity projection: the operand already has scheme {}",
                        cx.attrs_name(attrs)
                    ),
                ));
            }
        }
    }
}

/// Flags statements whose result is never observed — the report-only twin
/// of `eliminate_dead_code`, driven by the *same* liveness analysis, so
/// the lint and the optimizer agree by construction.
pub struct DeadStore;

impl Pass for DeadStore {
    fn name(&self) -> &'static str {
        "dead-store"
    }

    fn run(&self, cx: &AnalysisCx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, live) in cx.liveness.live_stmts.iter().enumerate() {
            if !live {
                out.push(diag(
                    cx,
                    Severity::Warn,
                    self.name(),
                    i,
                    "dead store: the value written here is never read and does not reach the \
                     result"
                        .into(),
                ));
            }
        }
    }
}

/// Flags statements that recompute a value an earlier statement already
/// produced (available expressions over value numbers, join commutativity
/// normalized away).
pub struct RedundantRecompute;

impl Pass for RedundantRecompute {
    fn name(&self) -> &'static str {
        "redundant-recompute"
    }

    fn run(&self, cx: &AnalysisCx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, f) in cx.stmts.iter().enumerate() {
            if let Some(j) = f.redundant_with {
                out.push(diag(
                    cx,
                    Severity::Warn,
                    self.name(),
                    i,
                    format!("recomputes the value statement {j} already produced"),
                ));
            }
        }
    }
}

/// Checks the program against the paper's Claim C: a program derived from
/// a CPF join expression has fewer than `r(a+5)` statements, and its
/// result covers every attribute of the database scheme. The length bound
/// is a warning (a generated program must satisfy it); a narrower result
/// scheme is only a note, since hand-written programs legitimately compute
/// partial joins.
pub struct ClaimCBound;

impl Pass for ClaimCBound {
    fn name(&self) -> &'static str {
        "claim-c-bound"
    }

    fn run(&self, cx: &AnalysisCx<'_>, out: &mut Vec<Diagnostic>) {
        let bound = cx.scheme.quasi_factor();
        let len = cx.program.stmts.len() as u64;
        if len >= bound {
            out.push(Diagnostic {
                severity: Severity::Warn,
                lint: self.name(),
                stmt: None,
                message: format!(
                    "program has {len} statements, at or above the Claim C bound r(a+5) = {bound}"
                ),
                excerpt: None,
            });
        }
        let all = cx.scheme.all_attrs();
        if cx.info.result_scheme != all {
            out.push(Diagnostic {
                severity: Severity::Note,
                lint: self.name(),
                stmt: None,
                message: format!(
                    "result scheme {} does not cover the full database scheme {}",
                    cx.attrs_name(&cx.info.result_scheme),
                    cx.attrs_name(&all)
                ),
                excerpt: None,
            });
        }
    }
}

/// Runs the independent double-entry schedule auditor over the level
/// schedule the executor would use; any finding means parallel execution
/// could race, which is an error.
pub struct ScheduleAudit;

impl Pass for ScheduleAudit {
    fn name(&self) -> &'static str {
        "schedule-audit"
    }

    fn run(&self, cx: &AnalysisCx<'_>, out: &mut Vec<Diagnostic>) {
        if let Err(e) = audit_schedule(cx.program, &cx.schedule) {
            out.push(Diagnostic {
                severity: Severity::Error,
                lint: self.name(),
                stmt: None,
                message: format!("level schedule fails its audit: {e}"),
                excerpt: None,
            });
        }
    }
}
