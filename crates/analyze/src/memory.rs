//! Static peak-memory certificates: the byte-level companion of the
//! Theorem-2 cost certificate.
//!
//! [`memory_report`] abstract-interprets a §2.2 program *without touching a
//! tuple*: it replays the register file over the certified per-statement
//! cardinality bounds (the elementwise minimum of the [`Certificate`]
//! product bounds and the [`interval_analysis`] highs — the same admitted
//! bound the cost gate uses) and converts tuples to bytes under the
//! columnar layout's model. The result is a [`MemCertificate`]: for every
//! statement the bytes resident before it, the bytes its head and its hash
//! build side can add while it runs, and the statement-local peak — plus
//! the program-wide peak and the statement carrying it.
//!
//! ## The byte model
//!
//! * A register holding `n` tuples of arity `a` costs `n · a · 8` bytes:
//!   packed ints are 8 bytes per cell, dict-interned strings are 4-byte
//!   codes plus a shared value pool whose amortized share the flat 8 covers.
//! * A keyed join additionally builds a hash table over its smaller
//!   operand: `RawTable::with_capacity(n)` allocates
//!   `(max(n,1)·2).next_power_of_two()` 4-byte buckets plus 16 bytes per
//!   entry, and the build rows themselves are counted at the operands'
//!   larger arity (which side is smaller is not known statically).
//! * Cartesian joins and semijoins build no table in this model; their
//!   footprint is operands + head, both already counted.
//!
//! ## What the certificate guarantees
//!
//! The *tuple* replay ([`MemCertificate::peak_tuples`]) mirrors the
//! executor's `peak_resident` accounting statement for statement, over
//! bounds that are sound per-statement — so it is monotone in the input
//! cardinalities and never below the measured high-water mark (the
//! property suite in `tests/spill_differential.rs` holds both). The byte
//! figures inherit per-statement soundness of the tuple bounds but are a
//! *model* of the allocator, not a measurement; they are what the spill
//! gate and the `mem-blowup` lint act on.
//!
//! ## Acting on it
//!
//! [`MemCertificate::spill_plan`] turns the certificate into a
//! [`SpillPlan`]: every keyed-join statement whose certified build-side
//! bytes exceed the budget is scheduled for a Grace-hash spill with enough
//! partitions that one partition's build side fits. The executor consumes
//! the plan statically — under-budget statements never pay a runtime
//! check. [`mem_blowup`] is the lint face of the same comparison, and
//! servers admission-gate on [`MemCertificate::peak_bytes`] next to the
//! cost bound.

use crate::absint::interval_analysis;
use crate::cert::Certificate;
use crate::cx::AnalysisCx;
use crate::diagnostic::{Diagnostic, Severity};
use mjoin_program::dataflow::{num_regs, reg_index};
use mjoin_program::{Reg, SpillPlan, Stmt};
use mjoin_relation::AttrSet;

/// Bytes per relation cell under the columnar model (see the module docs).
pub const CELL_BYTES: u64 = 8;

/// Cap on Grace-hash partitions per statement: beyond this, partition
/// files get too small to amortize their I/O.
pub const MAX_SPILL_PARTITIONS: u64 = 256;

/// Bytes of a register holding at most `tuples` tuples of arity `arity`.
fn rel_bytes(tuples: u64, arity: u64) -> u64 {
    tuples.saturating_mul(arity).saturating_mul(CELL_BYTES)
}

/// Heap bytes of a build-side hash table over `n` rows, mirroring the
/// executor's `RawTable::with_capacity` (bucket array of 4-byte slots at
/// twice the row count rounded up to a power of two, 16-byte entries).
fn hashtable_bytes(n: u64) -> u64 {
    let buckets = n
        .max(1)
        .saturating_mul(2)
        .checked_next_power_of_two()
        .unwrap_or(u64::MAX);
    buckets
        .saturating_mul(4)
        .saturating_add(n.saturating_mul(16))
}

fn arity_of(attrs: &AttrSet) -> u64 {
    mjoin_relation::Schema::from_set(attrs).arity() as u64
}

/// The memory footprint certified for one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemStmt {
    /// Statement index.
    pub stmt: usize,
    /// `"join"`, `"semijoin"` or `"project"`.
    pub kind: &'static str,
    /// Certified bound on the head's cardinality (the admitted bound:
    /// `min(certificate product, interval hi)`).
    pub out_tuples: u64,
    /// The head's bytes under the model: `out_tuples · arity · 8`.
    pub out_bytes: u64,
    /// For keyed joins: bound on the hash build side's row count
    /// (`min` of the operand bounds — the executor builds the smaller
    /// side). `None` for other statement kinds and Cartesian joins.
    pub build_tuples: Option<u64>,
    /// For keyed joins: transient build-side bytes (hash table heap plus
    /// the build rows at the operands' larger arity). This is the figure
    /// the spill gate compares against the budget.
    pub build_bytes: Option<u64>,
    /// Bytes resident across all registers *before* this statement runs.
    pub resident_bytes: u64,
    /// Peak bytes while this statement runs: `resident_bytes` + the head
    /// being materialized + the build side (old head value still live —
    /// destructive assignment happens after evaluation).
    pub peak_bytes: u64,
    /// The certificate's symbolic cardinality bound for the head, e.g.
    /// `|⋈D[{AB,BC}]|`.
    pub symbolic: String,
    /// Whether that bound is a single intermediate (Theorem-2 shape).
    pub tight: bool,
    /// Tree-node provenance, when the certificate carries attribution
    /// (Algorithm 2's S-node), rendered like `{AB,BC}`.
    pub node: Option<String>,
    /// The statement in paper notation.
    pub excerpt: Option<String>,
}

/// The whole-program memory certificate. See the module docs.
#[derive(Debug, Clone)]
pub struct MemCertificate {
    /// Per-statement footprints, in statement order.
    pub stmts: Vec<MemStmt>,
    /// Bytes of the inputs alone (the floor no plan can undercut).
    pub input_bytes: u64,
    /// The program-wide peak in bytes: the largest per-statement peak, or
    /// `input_bytes` for an empty program.
    pub peak_bytes: u64,
    /// The statement carrying [`MemCertificate::peak_bytes`].
    pub peak_stmt: Option<usize>,
    /// Peak resident *tuples* over the replay: the static counterpart of
    /// the executor's `peak_resident`, guaranteed `>=` the measured value.
    pub peak_tuples: u64,
}

impl MemCertificate {
    /// The first statement whose peak exceeds `budget`, if any — the
    /// statement a rejection or a `mem-blowup` diagnostic names.
    #[must_use]
    pub fn violation(&self, budget: u64) -> Option<&MemStmt> {
        self.stmts.iter().find(|s| s.peak_bytes > budget)
    }

    /// Derive the spill schedule for `budget` bytes: every keyed-join
    /// statement whose certified build-side bytes exceed the budget spills
    /// into the smallest power-of-two partition count that brings one
    /// partition's build side under it (capped at
    /// [`MAX_SPILL_PARTITIONS`]). Everything else — including Cartesian
    /// joins, which have no key to partition by — keeps the in-memory
    /// path.
    #[must_use]
    pub fn spill_plan(&self, budget: u64) -> SpillPlan {
        let budget = budget.max(1);
        let parts = self
            .stmts
            .iter()
            .map(|s| match s.build_bytes {
                Some(b) if b > budget => {
                    let want = b.div_ceil(budget);
                    let p = want
                        .checked_next_power_of_two()
                        .unwrap_or(MAX_SPILL_PARTITIONS)
                        .min(MAX_SPILL_PARTITIONS);
                    Some(usize::try_from(p).expect("partition cap fits usize"))
                }
                _ => None,
            })
            .collect();
        SpillPlan::new(parts)
    }

    /// Plain-text rendering: one line per statement plus the summary.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "memory: peak ≤ {} bytes{} (≤ {} resident tuples); inputs {} bytes\n",
            self.peak_bytes,
            match self.peak_stmt {
                Some(i) => format!(" at stmt {i}"),
                None => String::new(),
            },
            self.peak_tuples,
            self.input_bytes
        ));
        for s in &self.stmts {
            let build = match s.build_bytes {
                Some(b) => format!("build {b}"),
                None => "no build".to_string(),
            };
            let node = match &s.node {
                Some(n) => format!("  [node {n}]"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  stmt {:>3}  {:<8} peak {:>12}  resident {:>12}  out {:>12}  {}  |head| ≤ {}{}{}  {}\n",
                s.stmt,
                s.kind,
                s.peak_bytes,
                s.resident_bytes,
                s.out_bytes,
                build,
                s.symbolic,
                if s.tight { "" } else { "  (product)" },
                node,
                s.excerpt.clone().unwrap_or_default()
            ));
        }
        out
    }

    /// JSON rendering (hand-rolled like the other reports; the workspace
    /// is offline, no serde).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"stmts\":[");
        for (i, s) in self.stmts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: Option<u64>| v.map_or("null".to_string(), |b| b.to_string());
            out.push_str(&format!(
                "{{\"stmt\":{},\"kind\":\"{}\",\"out_tuples\":{},\"out_bytes\":{},\
                 \"build_tuples\":{},\"build_bytes\":{},\"resident_bytes\":{},\
                 \"peak_bytes\":{},\"tight\":{},\"symbolic\":{},\"node\":{}}}",
                s.stmt,
                s.kind,
                s.out_tuples,
                s.out_bytes,
                opt(s.build_tuples),
                opt(s.build_bytes),
                s.resident_bytes,
                s.peak_bytes,
                s.tight,
                json_str(&s.symbolic),
                match &s.node {
                    Some(n) => json_str(n),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str(&format!(
            "],\"input_bytes\":{},\"peak_bytes\":{},\"peak_stmt\":{},\"peak_tuples\":{}}}",
            self.input_bytes,
            self.peak_bytes,
            self.peak_stmt.map_or("null".to_string(), |i| i.to_string()),
            self.peak_tuples
        ));
        out
    }
}

/// Minimal JSON string escape for the symbolic bounds (they contain `⋈`
/// and braces, never control characters — but escape defensively anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Compute the memory certificate for an analyzed program given the input
/// cardinalities `seeds[i] = |D_i|`, deriving a fresh (unattributed)
/// Theorem-2 certificate. Use [`memory_report_with`] to thread a
/// certificate that already carries tree-node provenance.
#[must_use]
pub fn memory_report(cx: &AnalysisCx<'_>, seeds: &[u64]) -> MemCertificate {
    memory_report_with(cx, seeds, &Certificate::compute(cx))
}

/// [`memory_report`] over a caller-supplied [`Certificate`] (typically one
/// attributed with Algorithm 2's tree-node provenance, so every
/// [`MemStmt::node`] names the CPF-tree node the statement came from).
#[must_use]
pub fn memory_report_with(
    cx: &AnalysisCx<'_>,
    seeds: &[u64],
    cert: &Certificate,
) -> MemCertificate {
    let program = cx.program;
    // The admitted cardinality bound per statement: certificate product
    // (each |⋈D[S]| over-approximated by Π|D_i|) refined by the interval
    // highs — identical to the cost-admission bound.
    let cert_bounds = cert.evaluate_with(|set| {
        let mut acc: u128 = 1;
        for i in set.iter() {
            acc = acc.saturating_mul(u128::from(seeds[i]));
        }
        u64::try_from(acc).unwrap_or(u64::MAX)
    });
    let intervals = interval_analysis(cx, seeds);
    debug_assert_eq!(cert_bounds.len(), intervals.len());
    let bounds: Vec<u64> = cert_bounds
        .iter()
        .zip(&intervals)
        .map(|(&cb, iv)| cb.min(iv.hi))
        .collect();

    // Per-register replay over the bounds, mirroring the executor's
    // resident accounting: bases seeded at their exact sizes, temps empty,
    // each statement replacing its head slot. Tracked twice — tuples (the
    // proptest-guaranteed mirror of `peak_resident`) and `(tuples, arity)`
    // for bytes.
    let n_regs = num_regs(program);
    let n_bases = cx.scheme.num_relations();
    let mut slots: Vec<Option<(u64, u64)>> = vec![None; n_regs];
    for (i, &n) in seeds.iter().enumerate().take(n_bases) {
        slots[i] = Some((n, arity_of(cx.scheme.attrs_of(i))));
    }
    let resolve = |slots: &[Option<(u64, u64)>], reg: Reg| -> (u64, u64) {
        let mut cur = reg;
        loop {
            match slots[reg_index(program, cur)] {
                Some(v) => return v,
                None => match cur {
                    Reg::Temp(t) => cur = program.temp_init[t].expect("validated alias"),
                    Reg::Base(_) => unreachable!("bases are seeded"),
                },
            }
        }
    };
    let slot_bytes = |slots: &[Option<(u64, u64)>]| -> u64 {
        slots
            .iter()
            .flatten()
            .fold(0u64, |acc, &(n, a)| acc.saturating_add(rel_bytes(n, a)))
    };
    let slot_tuples = |slots: &[Option<(u64, u64)>]| -> u64 {
        slots
            .iter()
            .flatten()
            .fold(0u64, |acc, &(n, _)| acc.saturating_add(n))
    };

    let input_bytes = slot_bytes(&slots);
    let mut peak_tuples = slot_tuples(&slots);
    let mut stmts = Vec::with_capacity(program.stmts.len());
    for (i, stmt) in program.stmts.iter().enumerate() {
        let facts = &cx.stmts[i];
        let head_arity = arity_of(&facts.head_scheme);
        let out_tuples = bounds[i];
        let out_bytes = rel_bytes(out_tuples, head_arity);
        let resident_bytes = slot_bytes(&slots);

        let (head, build) = match stmt {
            Stmt::Project { dst, .. } => (*dst, None),
            Stmt::Semijoin { target, .. } => (*target, None),
            Stmt::Join { dst, left, right } => {
                let keyed = !facts.operand_schemes[0].is_disjoint(&facts.operand_schemes[1]);
                if keyed {
                    let (lt, la) = resolve(&slots, *left);
                    let (rt, ra) = resolve(&slots, *right);
                    let build_tuples = lt.min(rt);
                    let build_bytes = hashtable_bytes(build_tuples)
                        .saturating_add(rel_bytes(build_tuples, la.max(ra)));
                    (*dst, Some((build_tuples, build_bytes)))
                } else {
                    (*dst, None)
                }
            }
        };
        let peak_bytes = resident_bytes
            .saturating_add(out_bytes)
            .saturating_add(build.map_or(0, |(_, b)| b));

        stmts.push(MemStmt {
            stmt: i,
            kind: cert.stmts[i].kind,
            out_tuples,
            out_bytes,
            build_tuples: build.map(|(t, _)| t),
            build_bytes: build.map(|(_, b)| b),
            resident_bytes,
            peak_bytes,
            symbolic: cert.bound_name(i, cx.scheme, cx.catalog),
            tight: cert.stmts[i].tight,
            node: cert.stmts[i]
                .node
                .map(|n| crate::cert::set_name(n, cx.scheme, cx.catalog)),
            excerpt: cx.excerpt(i),
        });

        slots[reg_index(program, head)] = Some((out_tuples, head_arity));
        peak_tuples = peak_tuples.max(slot_tuples(&slots));
    }

    let peak_stmt = stmts
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.peak_bytes)
        .map(|(i, _)| i);
    let peak_bytes = peak_stmt.map_or(input_bytes, |i| stmts[i].peak_bytes);
    MemCertificate {
        stmts,
        input_bytes,
        peak_bytes,
        peak_stmt,
        peak_tuples,
    }
}

/// The `mem-blowup` lint: statements whose certified memory peak exceeds
/// `budget` bytes. Like `cost-blowup` this is a standalone, seed-driven
/// pass (it needs input cardinalities and a budget, so it does not run in
/// the default pass list); `mjoin_cli check --memory` wires it up.
#[must_use]
pub fn mem_blowup(cx: &AnalysisCx<'_>, seeds: &[u64], budget: u64) -> Vec<Diagnostic> {
    memory_report(cx, seeds)
        .stmts
        .iter()
        .filter(|s| s.peak_bytes > budget)
        .map(|s| Diagnostic {
            severity: Severity::Warn,
            lint: "mem-blowup",
            stmt: Some(s.stmt),
            message: format!(
                "certified memory peak {} bytes exceeds the {budget}-byte budget \
                 (resident {} + head {} + build {}; |head| ≤ {})",
                s.peak_bytes,
                s.resident_bytes,
                s.out_bytes,
                s.build_bytes.unwrap_or(0),
                s.symbolic
            ),
            excerpt: s.excerpt.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_hypergraph::DbScheme;
    use mjoin_program::{execute, ProgramBuilder};
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn cx_parts(schemes: &[&str]) -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let scheme = DbScheme::parse(&mut c, schemes);
        (c, scheme)
    }

    fn chain_program(scheme: &DbScheme) -> mjoin_program::Program {
        let mut b = ProgramBuilder::new(scheme);
        let v = b.new_temp_alias("V", mjoin_program::Reg::Base(0));
        b.join(v, v, mjoin_program::Reg::Base(1));
        b.join(v, v, mjoin_program::Reg::Base(2));
        b.finish(v)
    }

    #[test]
    fn certificate_covers_the_measured_high_water_mark() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[2, 3], &[9, 8]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 3], &[3, 4], &[3, 5]]).unwrap();
        let t = relation_of_ints(&mut c, "CD", &[&[4, 1], &[5, 1]]).unwrap();
        let scheme = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        let db = Database::from_relations(vec![r, s, t]);
        let p = chain_program(&scheme);
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let seeds: Vec<u64> = db.relations().iter().map(|r| r.len() as u64).collect();
        let cert = memory_report(&cx, &seeds);

        let out = execute(&p, &db);
        assert!(
            cert.peak_tuples >= out.peak_resident,
            "certified peak {} below measured {}",
            cert.peak_tuples,
            out.peak_resident
        );
        // Per-statement head bounds are sound too.
        for (s, &measured) in cert.stmts.iter().zip(&out.head_sizes) {
            assert!(s.out_tuples >= measured as u64);
        }
        assert_eq!(cert.stmts.len(), 2);
        assert!(cert.peak_bytes >= cert.input_bytes);
        assert!(cert.peak_stmt.is_some());
    }

    #[test]
    fn peak_is_monotone_in_relation_sizes() {
        let (c, scheme) = cx_parts(&["AB", "BC", "CD"]);
        let p = chain_program(&scheme);
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let small = memory_report(&cx, &[10, 10, 10]);
        let big = memory_report(&cx, &[10, 50, 10]);
        assert!(big.peak_bytes >= small.peak_bytes);
        assert!(big.peak_tuples >= small.peak_tuples);
    }

    #[test]
    fn spill_plan_targets_only_over_budget_keyed_joins() {
        let (c, scheme) = cx_parts(&["AB", "BC", "CD"]);
        let p = chain_program(&scheme);
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let cert = memory_report(&cx, &[1000, 1000, 1000]);

        // A huge budget spills nothing.
        let plan = cert.spill_plan(u64::MAX);
        assert!(!plan.any());

        // A tiny budget spills every keyed join, with power-of-two counts.
        let plan = cert.spill_plan(64);
        assert!(plan.any());
        for (i, s) in cert.stmts.iter().enumerate() {
            match s.build_bytes {
                Some(b) if b > 64 => {
                    let parts = plan.partitions(i).expect("over-budget join must spill");
                    assert!(parts.is_power_of_two());
                    assert!(parts as u64 <= MAX_SPILL_PARTITIONS);
                }
                _ => assert_eq!(plan.partitions(i), None),
            }
        }
    }

    #[test]
    fn cartesian_join_never_spills_but_trips_mem_blowup() {
        let (c, scheme) = cx_parts(&["AB", "CD"]);
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp("V");
        b.join(v, mjoin_program::Reg::Base(0), mjoin_program::Reg::Base(1));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let cert = memory_report(&cx, &[1000, 1000]);
        assert_eq!(cert.stmts[0].build_bytes, None, "no key, no build table");
        assert!(!cert.spill_plan(1).any(), "nothing to partition by");

        let diags = mem_blowup(&cx, &[1000, 1000], 1024);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "mem-blowup");
        assert_eq!(diags[0].severity, Severity::Warn);
        assert_eq!(diags[0].stmt, Some(0));
        assert!(mem_blowup(&cx, &[1000, 1000], u64::MAX).is_empty());
    }

    #[test]
    fn violation_names_the_first_offender_and_renders() {
        let (c, scheme) = cx_parts(&["AB", "BC", "CD"]);
        let p = chain_program(&scheme);
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let cert = memory_report(&cx, &[100, 100, 100]);
        assert!(cert.violation(u64::MAX).is_none());
        let v = cert.violation(0).expect("everything exceeds 0");
        assert_eq!(v.stmt, 0);

        let text = cert.render_text();
        assert!(text.contains("memory: peak ≤"), "{text}");
        assert!(text.contains("|⋈D[{AB,BC}]|"), "{text}");
        let json = cert.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"peak_bytes\""), "{json}");
        assert!(json.contains("\"build_bytes\""), "{json}");
    }

    #[test]
    fn provenance_flows_through_attributed_certificates() {
        use mjoin_hypergraph::RelSet;
        let (c, scheme) = cx_parts(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", mjoin_program::Reg::Base(0));
        b.join(v, v, mjoin_program::Reg::Base(1));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let mut cert = Certificate::compute(&cx);
        cert.attribute(&[RelSet::from_indices([0, 1])]);
        let mem = memory_report_with(&cx, &[10, 10], &cert);
        assert_eq!(mem.stmts[0].node.as_deref(), Some("{AB,BC}"));
        assert!(mem.render_text().contains("[node {AB,BC}]"));
    }

    #[test]
    fn hashtable_model_matches_rawtable_shape() {
        // 3 rows → 8 buckets of 4 bytes + 3 entries of 16 bytes.
        assert_eq!(hashtable_bytes(3), 8 * 4 + 3 * 16);
        // 0 rows still allocates the minimum 2-bucket array.
        assert_eq!(hashtable_bytes(0), 2 * 4);
        // Saturates instead of overflowing.
        assert_eq!(hashtable_bytes(u64::MAX), u64::MAX);
    }
}
