//! Diagnostics: what a lint pass reports, and how reports render.

use std::fmt;

/// How serious a finding is.
///
/// Ordering is by severity, so `max()` over a report yields the worst
/// finding and `--deny warn`-style gates compare with `>=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never wrong by itself.
    Note,
    /// A defect the paper's pipeline never produces (a Cartesian join, a
    /// dead store, a recomputation): almost certainly a program bug.
    Warn,
    /// The program is broken: invalid per §2.2, or its schedule races.
    Error,
}

impl Severity {
    /// Lowercase name, as printed and as accepted by `--deny`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parse a `--deny` threshold name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warn" | "warning" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// The lint's stable kebab-case name (e.g. `cartesian-join`).
    pub lint: &'static str,
    /// The offending statement index, if the finding is about one.
    pub stmt: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
    /// The offending statement rendered in the paper's notation.
    pub excerpt: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.lint)?;
        if let Some(i) = self.stmt {
            write!(f, " stmt {i}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(e) = &self.excerpt {
            write!(f, "\n    {e}")?;
        }
        Ok(())
    }
}

/// The outcome of analyzing one program: every pass's findings, in pass
/// order then statement order.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// The most severe finding, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the report has no findings at `threshold` or above.
    pub fn clean_at(&self, threshold: Severity) -> bool {
        // (Not `Option::is_none_or`: the workspace supports rust 1.75.)
        match self.worst() {
            Some(w) => w < threshold,
            None => true,
        }
    }

    /// Whether the report has no errors and no warnings (notes allowed) —
    /// the bar every Algorithm-2/optimizer-generated program must meet.
    pub fn is_clean(&self) -> bool {
        self.clean_at(Severity::Warn)
    }

    /// Findings raised by the lint named `lint`.
    pub fn by_lint(&self, lint: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.lint == lint).collect()
    }

    /// Plain-text rendering, one finding per entry, with a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Note)
        ));
        out
    }

    /// JSON rendering: an object with a `diagnostics` array and counters.
    /// Hand-rolled (the workspace is offline, no serde) but escapes every
    /// string field, so it is valid JSON for any program text.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"severity\":");
            json_string(&mut out, d.severity.as_str());
            out.push_str(",\"lint\":");
            json_string(&mut out, d.lint);
            out.push_str(",\"stmt\":");
            match d.stmt {
                Some(s) => out.push_str(&s.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":");
            json_string(&mut out, &d.message);
            out.push_str(",\"excerpt\":");
            match &d.excerpt {
                Some(e) => json_string(&mut out, e),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"notes\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Note)
        ));
        out
    }
}

/// Append `s` to `out` as a JSON string literal (the workspace-shared
/// escaper — the server's wire protocol uses the same one, so escaping
/// rules cannot drift between the two renderers).
fn json_string(out: &mut String, s: &str) {
    mjoin_relation::json::string_into(s, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity, lint: &'static str) -> Diagnostic {
        Diagnostic {
            severity,
            lint,
            stmt: Some(3),
            message: "msg".into(),
            excerpt: Some("R(V) := R(AB) ⋈ R(CD)".into()),
        }
    }

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Note < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::parse("warn"), Some(Severity::Warn));
        assert_eq!(Severity::parse("warning"), Some(Severity::Warn));
        assert_eq!(Severity::parse("bogus"), None);
    }

    #[test]
    fn report_gates() {
        let mut r = Report::default();
        assert!(r.is_clean());
        assert!(r.clean_at(Severity::Note));
        r.diagnostics.push(diag(Severity::Note, "claim-c-bound"));
        assert!(r.is_clean(), "notes do not break cleanliness");
        assert!(!r.clean_at(Severity::Note));
        r.diagnostics.push(diag(Severity::Warn, "cartesian-join"));
        assert!(!r.is_clean());
        assert!(r.clean_at(Severity::Error));
        assert_eq!(r.worst(), Some(Severity::Warn));
        assert_eq!(r.by_lint("cartesian-join").len(), 1);
    }

    #[test]
    fn json_is_escaped() {
        let mut r = Report::default();
        r.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            lint: "validate",
            stmt: None,
            message: "bad \"quote\"\nand newline".into(),
            excerpt: None,
        });
        let json = r.render_json();
        assert!(json.contains("\\\"quote\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"stmt\":null"));
        assert!(json.ends_with("\"errors\":1,\"warnings\":0,\"notes\":0}"));
    }

    #[test]
    fn text_rendering_includes_excerpt() {
        let mut r = Report::default();
        r.diagnostics.push(diag(Severity::Warn, "cartesian-join"));
        let text = r.render_text();
        assert!(text.contains("warn[cartesian-join] stmt 3: msg"));
        assert!(text.contains("R(V) := R(AB) ⋈ R(CD)"));
        assert!(text.contains("0 error(s), 1 warning(s), 0 note(s)"));
    }
}
