//! Pre-execution admission control: certified per-statement cost bounds
//! cheap enough to evaluate *before* running anything.
//!
//! The Theorem-2 certificate ([`Certificate`]) bounds every statement head
//! by a product of `⋈D[S]` intermediates, but evaluating those exactly
//! means executing the very joins admission is supposed to gate. Instead
//! each `|⋈D[S]|` is over-approximated by `Π_{i∈S} |D_i|` (a join is a
//! subset of the Cartesian product of its inputs), and the result is
//! intersected with the independent interval analysis of
//! [`crate::absint::interval_analysis`] — both are sound upper bounds, so
//! their elementwise minimum is too. The whole computation is arithmetic
//! over the input cardinalities: O(statements × factors), no tuples
//! touched.
//!
//! A server admits a request iff every statement's admitted bound is at
//! most the configured budget; a rejection names the first offending
//! statement, its numeric bound, and the certificate's symbolic bound so
//! the client sees *why* (e.g. `|⋈D[{AB}]|·|⋈D[{CD}]|` — a Cartesian
//! product the optimizer would never emit, cf. the paper's title).

use crate::absint::interval_analysis;
use crate::cert::Certificate;
use crate::cx::AnalysisCx;

/// The admitted (sound) cost bound for one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionBound {
    /// Statement index.
    pub stmt: usize,
    /// `"join"`, `"semijoin"` or `"project"`.
    pub kind: &'static str,
    /// `min(certificate product, interval hi)` — a sound upper bound on
    /// the statement head's cardinality. `u64::MAX` reads as "unbounded".
    pub bound: u64,
    /// The certificate's symbolic bound, e.g. `|⋈D[{ABC,CDE}]|`.
    pub symbolic: String,
    /// Whether the certificate bound is a single intermediate (the
    /// Theorem-2 shape) rather than a product.
    pub tight: bool,
    /// The statement rendered in paper notation.
    pub excerpt: Option<String>,
}

/// The whole-program admission report: per-statement bounds plus the peak.
#[derive(Debug, Clone)]
pub struct AdmissionReport {
    /// One bound per statement, in statement order.
    pub bounds: Vec<AdmissionBound>,
    /// The largest per-statement bound (0 for an empty program).
    pub peak: u64,
    /// Index of the statement carrying [`AdmissionReport::peak`].
    pub peak_stmt: Option<usize>,
}

impl AdmissionReport {
    /// The first statement whose bound exceeds `budget`, if any — the
    /// statement a rejection names.
    #[must_use]
    pub fn violation(&self, budget: u64) -> Option<&AdmissionBound> {
        self.bounds.iter().find(|b| b.bound > budget)
    }
}

/// Compute the admission report for an analyzed program given the input
/// cardinalities `seeds[i] = |D_i|` (the resident catalog's sizes).
#[must_use]
pub fn admission_report(cx: &AnalysisCx<'_>, seeds: &[u64]) -> AdmissionReport {
    let cert = Certificate::compute(cx);
    // |⋈D[S]| ≤ Π_{i∈S} |D_i|: the join of a set of relations is a subset
    // of their Cartesian product.
    let cert_bounds = cert.evaluate_with(|set| {
        let mut acc: u128 = 1;
        for i in set.iter() {
            acc = acc.saturating_mul(u128::from(seeds[i]));
        }
        u64::try_from(acc).unwrap_or(u64::MAX)
    });
    let intervals = interval_analysis(cx, seeds);
    debug_assert_eq!(cert_bounds.len(), intervals.len());

    let bounds: Vec<AdmissionBound> = cert
        .stmts
        .iter()
        .zip(cert_bounds.iter().zip(&intervals))
        .enumerate()
        .map(|(i, (sb, (&cb, iv)))| AdmissionBound {
            stmt: i,
            kind: sb.kind,
            bound: cb.min(iv.hi),
            symbolic: cert.bound_name(i, cx.scheme, cx.catalog),
            tight: sb.tight,
            excerpt: cx.excerpt(i),
        })
        .collect();
    let peak_stmt = bounds
        .iter()
        .enumerate()
        .max_by_key(|(_, b)| b.bound)
        .map(|(i, _)| i);
    let peak = peak_stmt.map_or(0, |i| bounds[i].bound);
    AdmissionReport {
        bounds,
        peak,
        peak_stmt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_hypergraph::DbScheme;
    use mjoin_program::{ProgramBuilder, Reg};
    use mjoin_relation::Catalog;

    fn cx_parts(schemes: &[&str]) -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let scheme = DbScheme::parse(&mut c, schemes);
        (c, scheme)
    }

    /// A chain join's admitted bounds never exceed the Cartesian products
    /// of the inputs involved, and the interval refinement kicks in for
    /// semijoins (a filter cannot grow its target).
    #[test]
    fn semijoin_bound_uses_interval_refinement() {
        let (c, scheme) = cx_parts(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&scheme);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(Reg::Base(0));
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let report = admission_report(&cx, &[10, 1000]);
        // AB ⋉ BC has at most |AB| = 10 tuples, however big BC is.
        assert_eq!(report.bounds.len(), 1);
        assert_eq!(report.bounds[0].bound, 10);
        assert_eq!(report.peak, 10);
        assert!(report.violation(10).is_none());
        assert_eq!(report.violation(9).unwrap().stmt, 0);
    }

    /// A Cartesian first join (the paper's anti-pattern) is bounded by the
    /// full product and trips a small budget, naming statement 0 with its
    /// product-shaped symbolic bound.
    #[test]
    fn cartesian_product_trips_the_budget() {
        let (c, scheme) = cx_parts(&["AB", "CD", "BC"]);
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1)); // AB ⋈ CD: disjoint schemes
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let report = admission_report(&cx, &[100, 100, 100]);
        assert_eq!(report.bounds[0].bound, 10_000, "Cartesian product bound");
        let v = report.violation(1_000).expect("must trip");
        assert_eq!(v.stmt, 0);
        assert!(
            v.symbolic.contains('·') || v.symbolic.contains("AB"),
            "symbolic bound names the intermediates: {}",
            v.symbolic
        );
        // The follow-on join compounds the product, so the *peak* lands on
        // statement 1 — but a rejection still names statement 0, the first
        // over budget.
        assert_eq!(report.peak_stmt, Some(1));
        assert!(report.peak >= 10_000);
    }

    /// Admitted bounds are sound: never smaller than the true head sizes.
    #[test]
    fn bounds_are_sound_on_a_concrete_database() {
        use mjoin_program::execute;
        use mjoin_relation::{relation_of_ints, Database};
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[2, 3], &[9, 8]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 3], &[3, 4]]).unwrap();
        let scheme = DbScheme::parse(&mut c, &["AB", "BC"]);
        let db = Database::from_relations(vec![r, s]);

        let mut b = ProgramBuilder::new(&scheme);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &scheme, &c).unwrap();
        let seeds: Vec<u64> = db.relations().iter().map(|r| r.len() as u64).collect();
        let report = admission_report(&cx, &seeds);
        let out = execute(&p, &db);
        for (bound, &size) in report.bounds.iter().zip(&out.head_sizes) {
            assert!(
                bound.bound >= size as u64,
                "stmt {}: admitted bound {} < actual {}",
                bound.stmt,
                bound.bound,
                size
            );
        }
    }
}
