//! Cardinality abstract interpretation: per-register `[lo, hi]` interval
//! bounds propagated from input cardinalities through the §2.2 operators.
//!
//! The transfer functions are deliberately simple and *sound in both
//! directions*:
//!
//! * join: `hi = hi_l · hi_r` (Cartesian worst case), refined to
//!   `hi = hi_l` when the right scheme is contained in the left (the join
//!   degenerates to a semijoin) and symmetrically; `lo = lo_l · lo_r`
//!   only when the operand schemes are disjoint (a Cartesian product is
//!   *exactly* the product), else `0`.
//! * semijoin: `[0, hi_target]` — a filter never grows its target; if
//!   the schemes are disjoint and the filter is provably nonempty the
//!   target passes through unchanged, so `lo = lo_target`.
//! * project: `hi = hi_src` and `lo = min(lo_src, 1)` (dedup can
//!   collapse everything to one tuple, never to zero from nonempty);
//!   identity projections keep `lo = lo_src`.
//!
//! On top of the intervals rides the `cost-blowup` lint: a statement
//! whose *lower* bound already exceeds the whole input is a statically
//! provable blowup (typically a Cartesian product of large inputs) —
//! no data distribution can save it.

use crate::cx::AnalysisCx;
use crate::diagnostic::{Diagnostic, Severity};
use mjoin_program::dataflow::{num_regs, reg_index};
use mjoin_program::{Reg, Stmt};

/// A closed interval `[lo, hi]` of possible cardinalities. Arithmetic
/// saturates at `u64::MAX` (which reads as "unbounded").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardInterval {
    /// Smallest possible cardinality.
    pub lo: u64,
    /// Largest possible cardinality.
    pub hi: u64,
}

impl CardInterval {
    /// The exact interval `[n, n]`.
    #[must_use]
    pub fn exact(n: u64) -> Self {
        CardInterval { lo: n, hi: n }
    }

    /// Whether a measured cardinality lies inside the interval.
    #[must_use]
    pub fn contains(&self, n: u64) -> bool {
        self.lo <= n && n <= self.hi
    }
}

/// Per-statement head intervals for one program, given the input
/// cardinalities `seeds[i] = |D_i|` (exact sizes or estimator output).
#[must_use]
pub fn interval_analysis(cx: &AnalysisCx<'_>, seeds: &[u64]) -> Vec<CardInterval> {
    let program = cx.program;
    assert_eq!(
        seeds.len(),
        cx.scheme.num_relations(),
        "one seed cardinality per base relation"
    );
    let mut states: Vec<Option<CardInterval>> = vec![None; num_regs(program)];
    for (i, &n) in seeds.iter().enumerate() {
        states[i] = Some(CardInterval::exact(n));
    }
    let resolve = |states: &[Option<CardInterval>], reg: Reg| -> CardInterval {
        let mut cur = reg;
        loop {
            match states[reg_index(program, cur)] {
                Some(iv) => return iv,
                None => match cur {
                    Reg::Temp(t) => cur = program.temp_init[t].expect("validated alias"),
                    Reg::Base(_) => unreachable!("bases are seeded"),
                },
            }
        }
    };

    let mut out = Vec::with_capacity(program.stmts.len());
    for (i, stmt) in program.stmts.iter().enumerate() {
        let facts = &cx.stmts[i];
        let (head, iv) = match stmt {
            Stmt::Project { dst, src, attrs } => {
                let s = resolve(&states, *src);
                let identity = *attrs == facts.operand_schemes[0];
                let lo = if identity { s.lo } else { s.lo.min(1) };
                (*dst, CardInterval { lo, hi: s.hi })
            }
            Stmt::Semijoin { target, filter } => {
                let t = resolve(&states, *target);
                let f = resolve(&states, *filter);
                let disjoint = facts.operand_schemes[0].is_disjoint(&facts.operand_schemes[1]);
                let lo = if disjoint && f.lo >= 1 { t.lo } else { 0 };
                (*target, CardInterval { lo, hi: t.hi })
            }
            Stmt::Join { dst, left, right } => {
                let l = resolve(&states, *left);
                let r = resolve(&states, *right);
                let ls = &facts.operand_schemes[0];
                let rs = &facts.operand_schemes[1];
                let hi = if rs.is_subset(ls) {
                    l.hi
                } else if ls.is_subset(rs) {
                    r.hi
                } else {
                    l.hi.saturating_mul(r.hi)
                };
                let lo = if ls.is_disjoint(rs) {
                    l.lo.saturating_mul(r.lo)
                } else {
                    0
                };
                (*dst, CardInterval { lo, hi })
            }
        };
        out.push(iv);
        states[reg_index(program, head)] = Some(iv);
    }
    out
}

/// The `cost-blowup` lint: statements whose interval *lower* bound
/// exceeds the total input size — a blowup no data can avoid.
#[must_use]
pub fn cost_blowup(cx: &AnalysisCx<'_>, seeds: &[u64]) -> Vec<Diagnostic> {
    let total: u64 = seeds.iter().fold(0, |a, &n| a.saturating_add(n));
    interval_analysis(cx, seeds)
        .iter()
        .enumerate()
        .filter(|(_, iv)| iv.lo > total)
        .map(|(i, iv)| Diagnostic {
            severity: Severity::Warn,
            lint: "cost-blowup",
            stmt: Some(i),
            message: format!(
                "statically provable blowup: head has at least {} tuples, more than the {} \
                 input tuples combined",
                iv.lo, total
            ),
            excerpt: cx.excerpt(i),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_hypergraph::DbScheme;
    use mjoin_program::ProgramBuilder;
    use mjoin_relation::Catalog;

    fn scheme(schemes: &[&str]) -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, schemes);
        (c, s)
    }

    #[test]
    fn cartesian_product_interval_is_exact() {
        let (c, s) = scheme(&["AB", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        b.join(v, Reg::Base(0), Reg::Base(1));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let iv = interval_analysis(&cx, &[100, 50]);
        assert_eq!(iv[0], CardInterval { lo: 5000, hi: 5000 });
        let diags = cost_blowup(&cx, &[100, 50]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "cost-blowup");
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn overlapping_join_and_semijoin_bounds() {
        let (c, s) = scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.join(v, v, Reg::Base(1));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let iv = interval_analysis(&cx, &[10, 20]);
        // Semijoin: can drop to empty, never grows past the target.
        assert_eq!(iv[0], CardInterval { lo: 0, hi: 10 });
        // Overlapping join: up to the product, down to empty.
        assert_eq!(iv[1], CardInterval { lo: 0, hi: 200 });
        assert!(cost_blowup(&cx, &[10, 20]).is_empty());
    }

    #[test]
    fn semijoin_into_join_refinement() {
        // Join whose right scheme ⊆ left scheme is a semijoin: hi = hi_left.
        let (c, s) = scheme(&["ABC", "AB"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        b.join(v, Reg::Base(0), Reg::Base(1));
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let iv = interval_analysis(&cx, &[7, 1000]);
        assert_eq!(iv[0], CardInterval { lo: 0, hi: 7 });
    }

    #[test]
    fn projection_lo_respects_identity() {
        let (mut c, s) = scheme(&["AB"]);
        let ab = s.attrs_of(0).clone();
        let a = mjoin_relation::AttrSet::singleton(c.intern("A"));
        let mut b = ProgramBuilder::new(&s);
        let x = b.new_temp("X");
        let y = b.new_temp("Y");
        b.project(x, Reg::Base(0), ab);
        b.project(y, Reg::Base(0), a);
        let p = b.finish(y);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let iv = interval_analysis(&cx, &[9]);
        assert_eq!(iv[0], CardInterval { lo: 9, hi: 9 });
        assert_eq!(iv[1], CardInterval { lo: 1, hi: 9 });
    }
}
