//! The shared analysis context: every dataflow fact the passes consume,
//! computed once per analysis run.
//!
//! Building an [`AnalysisCx`] performs
//!
//! * static validation ([`mjoin_program::validate`] — a context only exists
//!   for valid programs);
//! * a forward *scheme* sweep recording every operand's scheme at its point
//!   of use (the final schemes in [`ValidationInfo`] are not enough: a
//!   variable's scheme changes as it is rewritten);
//! * a forward *value-numbering* sweep (available expressions over
//!   registers): two reads get the same number iff they provably denote the
//!   same relation, which powers `redundant-recompute` and `noop-semijoin`;
//! * backward liveness ([`mjoin_program::Liveness`] — the same bitset
//!   analysis `eliminate_dead_code` rewrites with, so the `dead-store` lint
//!   and the optimizer can never disagree);
//! * def-use chains (which later statements read each statement's head);
//! * the level [`Schedule`], for the `schedule-audit` pass;
//! * the program rendered in the paper's notation, one line per statement,
//!   for diagnostic excerpts.

use mjoin_hypergraph::DbScheme;
use mjoin_program::dataflow::{num_regs, reg_index};
use mjoin_program::schedule::read_closure;
use mjoin_program::{display, schedule, validate, Liveness, Program, Reg, Schedule, Stmt};
use mjoin_program::{ValidateError, ValidationInfo};
use mjoin_relation::fxhash::FxHashMap;
use mjoin_relation::{AttrSet, Catalog};

/// A value number: two occurrences with the same number provably hold the
/// same relation (the converse does not hold — value numbering is
/// conservative).
pub type Vn = u32;

/// The defining expression of a value number, over operand value numbers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprKey {
    /// A base relation as loaded — value number `i` for base `i`.
    Input(usize),
    /// Natural join; operands normalized to `(min, max)` (⋈ commutes).
    Join(Vn, Vn),
    /// Semijoin `(target, filter)` — not commutative.
    Semijoin(Vn, Vn),
    /// Projection of a value onto an attribute set.
    Project(Vn, AttrSet),
}

/// Per-statement facts, in statement order.
#[derive(Debug, Clone)]
pub struct StmtFacts {
    /// Schemes of the operand registers *at this point*: `[src]` for a
    /// projection, `[left, right]` for a join, `[target, filter]` for a
    /// semijoin.
    pub operand_schemes: Vec<AttrSet>,
    /// Value numbers of the operands, same order.
    pub operand_vns: Vec<Vn>,
    /// Scheme of the head after the statement.
    pub head_scheme: AttrSet,
    /// Value number assigned to the head.
    pub head_vn: Vn,
    /// `Some(j)` if statement `j < i` already computed this exact value
    /// (same expression over the same operand values).
    pub redundant_with: Option<usize>,
}

/// Everything the passes share. See the module docs.
pub struct AnalysisCx<'a> {
    /// The program under analysis.
    pub program: &'a Program,
    /// Its database scheme.
    pub scheme: &'a DbScheme,
    /// The attribute catalog, for rendering.
    pub catalog: &'a Catalog,
    /// Final register schemes from validation.
    pub info: ValidationInfo,
    /// Backward liveness (shared with `eliminate_dead_code`).
    pub liveness: Liveness,
    /// Per-statement dataflow facts.
    pub stmts: Vec<StmtFacts>,
    /// Def-use chains: `uses[i]` lists the statements reading statement
    /// `i`'s head before it is overwritten (read closures included).
    pub uses: Vec<Vec<usize>>,
    /// The defining expression of every value number.
    pub def_of: FxHashMap<Vn, ExprKey>,
    /// The level schedule of the program.
    pub schedule: Schedule,
    /// The program rendered in paper notation, one line per statement.
    pub lines: Vec<String>,
}

impl<'a> AnalysisCx<'a> {
    /// Build the context, validating first.
    pub fn new(
        program: &'a Program,
        scheme: &'a DbScheme,
        catalog: &'a Catalog,
    ) -> Result<Self, ValidateError> {
        let info = validate(program, scheme)?;
        let liveness = Liveness::compute(program);
        let sched = schedule(program);
        let lines: Vec<String> = display::render(program, scheme, catalog)
            .lines()
            .map(str::to_owned)
            .collect();
        debug_assert_eq!(lines.len(), program.stmts.len());

        // Forward sweeps: schemes, value numbers, def-use.
        let mut base_schemes: Vec<AttrSet> = scheme.edges().to_vec();
        let mut temp_schemes: Vec<Option<AttrSet>> = vec![None; program.temp_names.len()];
        let mut vn_of: Vec<Option<Vn>> = vec![None; num_regs(program)];
        let mut def_of: FxHashMap<Vn, ExprKey> = FxHashMap::default();
        let mut avail: FxHashMap<ExprKey, (Vn, usize)> = FxHashMap::default();
        let mut next_vn: Vn = 0;
        for (i, _) in scheme.edges().iter().enumerate() {
            vn_of[i] = Some(next_vn);
            def_of.insert(next_vn, ExprKey::Input(i));
            next_vn += 1;
        }

        let mut last_writer: Vec<Option<usize>> = vec![None; num_regs(program)];
        let mut uses: Vec<Vec<usize>> = vec![Vec::new(); program.stmts.len()];
        let mut stmts = Vec::with_capacity(program.stmts.len());

        let resolve_scheme = |bs: &[AttrSet], ts: &[Option<AttrSet>], reg: Reg| -> AttrSet {
            let mut cur = reg;
            loop {
                match cur {
                    Reg::Base(b) => return bs[b].clone(),
                    Reg::Temp(t) => match &ts[t] {
                        Some(s) => return s.clone(),
                        None => cur = program.temp_init[t].expect("validated alias"),
                    },
                }
            }
        };
        let resolve_vn = |vn_of: &[Option<Vn>], reg: Reg| -> Vn {
            let mut cur = reg;
            loop {
                match vn_of[reg_index(program, cur)] {
                    Some(vn) => return vn,
                    None => match cur {
                        Reg::Temp(t) => {
                            cur = program.temp_init[t].expect("validated alias");
                        }
                        Reg::Base(_) => unreachable!("bases are numbered at entry"),
                    },
                }
            }
        };

        for (i, stmt) in program.stmts.iter().enumerate() {
            // Def-use: every register in a read closure charges its last
            // writer with a use.
            let mut closure = Vec::new();
            for r in stmt.reads() {
                read_closure(program, r, &mut closure);
            }
            for &r in &closure {
                if let Some(w) = last_writer[reg_index(program, r)] {
                    if !uses[w].contains(&i) {
                        uses[w].push(i);
                    }
                }
            }

            let (operand_schemes, operand_vns, key) = match stmt {
                Stmt::Project { src, attrs, .. } => {
                    let s = resolve_scheme(&base_schemes, &temp_schemes, *src);
                    let v = resolve_vn(&vn_of, *src);
                    (vec![s], vec![v], ExprKey::Project(v, attrs.clone()))
                }
                Stmt::Join { left, right, .. } => {
                    let ls = resolve_scheme(&base_schemes, &temp_schemes, *left);
                    let rs = resolve_scheme(&base_schemes, &temp_schemes, *right);
                    let lv = resolve_vn(&vn_of, *left);
                    let rv = resolve_vn(&vn_of, *right);
                    (
                        vec![ls, rs],
                        vec![lv, rv],
                        ExprKey::Join(lv.min(rv), lv.max(rv)),
                    )
                }
                Stmt::Semijoin { target, filter } => {
                    let ts = resolve_scheme(&base_schemes, &temp_schemes, *target);
                    let fs = resolve_scheme(&base_schemes, &temp_schemes, *filter);
                    let tv = resolve_vn(&vn_of, *target);
                    let fv = resolve_vn(&vn_of, *filter);
                    (vec![ts, fs], vec![tv, fv], ExprKey::Semijoin(tv, fv))
                }
            };

            // Available expressions: a key hit means the identical value was
            // already computed — the head inherits the memoized number.
            let (head_vn, redundant_with) = match avail.get(&key) {
                Some(&(vn, j)) => (vn, Some(j)),
                None => {
                    let vn = next_vn;
                    next_vn += 1;
                    avail.insert(key.clone(), (vn, i));
                    def_of.insert(vn, key);
                    (vn, None)
                }
            };

            // Update schemes and value numbers for the head.
            let head = stmt.head();
            let head_scheme = match stmt {
                Stmt::Project { attrs, .. } => attrs.clone(),
                Stmt::Join { .. } => operand_schemes[0].union(&operand_schemes[1]),
                Stmt::Semijoin { .. } => operand_schemes[0].clone(),
            };
            match head {
                Reg::Base(b) => base_schemes[b] = head_scheme.clone(),
                Reg::Temp(t) => temp_schemes[t] = Some(head_scheme.clone()),
            }
            vn_of[reg_index(program, head)] = Some(head_vn);
            last_writer[reg_index(program, head)] = Some(i);

            stmts.push(StmtFacts {
                operand_schemes,
                operand_vns,
                head_scheme,
                head_vn,
                redundant_with,
            });
        }

        Ok(AnalysisCx {
            program,
            scheme,
            catalog,
            info,
            liveness,
            stmts,
            uses,
            def_of,
            schedule: sched,
            lines,
        })
    }

    /// Render an attribute set in paper style (`ACE`), for messages.
    pub fn attrs_name(&self, attrs: &AttrSet) -> String {
        mjoin_relation::Schema::from_set(attrs)
            .display(self.catalog)
            .to_string()
    }

    /// The rendered excerpt of statement `i`.
    pub fn excerpt(&self, i: usize) -> Option<String> {
        self.lines.get(i).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_program::ProgramBuilder;

    fn scheme(schemes: &[&str]) -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, schemes);
        (c, s)
    }

    #[test]
    fn value_numbers_detect_recomputation() {
        let (c, s) = scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        let w = b.new_temp("W");
        b.join(v, Reg::Base(0), Reg::Base(1));
        b.join(w, Reg::Base(1), Reg::Base(0)); // same value, flipped order
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        assert_eq!(cx.stmts[0].redundant_with, None);
        assert_eq!(cx.stmts[1].redundant_with, Some(0));
        assert_eq!(cx.stmts[0].head_vn, cx.stmts[1].head_vn);
    }

    #[test]
    fn rewriting_an_operand_breaks_availability() {
        let (c, s) = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        let w = b.new_temp("W");
        b.join(v, Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(0), Reg::Base(2)); // Base(0) changes value
        b.join(w, Reg::Base(0), Reg::Base(1)); // NOT the same computation
        let p = b.finish(w);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        assert_eq!(cx.stmts[2].redundant_with, None);
        assert_ne!(cx.stmts[0].head_vn, cx.stmts[2].head_vn);
    }

    #[test]
    fn operand_schemes_are_point_in_time() {
        let (c, s) = scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1)); // reads AB via alias, head becomes ABC
        b.semijoin(v, Reg::Base(1)); // target scheme is now ABC
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        assert_eq!(cx.attrs_name(&cx.stmts[0].operand_schemes[0]), "AB");
        assert_eq!(cx.attrs_name(&cx.stmts[1].operand_schemes[0]), "ABC");
        assert_eq!(cx.excerpt(0).unwrap(), "R(V) := R(AB) ⋈ R(BC)");
    }

    #[test]
    fn def_use_chains_follow_alias_reads() {
        let (c, s) = scheme(&["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(1)); // stmt 0 writes Base(0)
        b.join(v, v, Reg::Base(1)); // stmt 1 reads Base(0) through V's alias
        let p = b.finish(v);
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        assert_eq!(cx.uses[0], vec![1]);
        assert!(cx.uses[1].is_empty());
    }

    #[test]
    fn invalid_program_is_rejected() {
        let (c, s) = scheme(&["AB", "BC"]);
        let p = Program {
            num_bases: 2,
            temp_names: vec!["V".into()],
            temp_init: vec![None],
            stmts: vec![],
            result: Reg::Temp(0),
        };
        assert!(AnalysisCx::new(&p, &s, &c).is_err());
    }
}
