//! The static-vs-measured audit: execute a program, then diff every
//! statement's measured head count (the §2.3 ledger) against its sound
//! static bounds — the symbolic Theorem-2 [`Certificate`] evaluated on
//! the input database, and the [`CardInterval`]s of the cardinality
//! abstract interpreter.
//!
//! A measured head that exceeds its sound static bound is a bug in the
//! kernel, the scheduler, or the certificate — so it surfaces as an
//! `error`-severity diagnostic (`audit-bound` / `audit-interval`), the
//! differential check that matters. The audit also re-derives the ledger
//! from the per-statement head sizes and the input sizes and errors
//! (`audit-ledger`) if it disagrees with `ExecOutcome::cost()` — the
//! ledger must be exactly `Σ inputs + Σ heads`, per §2.3.

use crate::absint::{cost_blowup, interval_analysis, CardInterval};
use crate::cert::{set_name, Certificate};
use crate::cx::AnalysisCx;
use crate::diagnostic::{Diagnostic, Report, Severity};
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_program::{execute_with, validate, ExecConfig, Program, ValidateError};
use mjoin_relation::{Catalog, CostKind, Database};

/// One statement's row in the audit: measured cost vs static bounds.
#[derive(Debug, Clone)]
pub struct StmtAudit {
    /// Statement index.
    pub stmt: usize,
    /// Head tuples this statement actually produced.
    pub measured: u64,
    /// The certificate's bound evaluated on the input database.
    pub bound: u64,
    /// Whether that bound is a single intermediate (tight) or a product.
    pub tight: bool,
    /// The abstract interpreter's interval for this head.
    pub interval: CardInterval,
    /// An estimator's guess at the bound (optional, e.g. histogram-based).
    pub estimate: Option<u64>,
}

impl StmtAudit {
    /// `bound / max(measured, 1)` — how loose the certificate is here.
    #[must_use]
    pub fn gap(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.bound as f64 / (self.measured.max(1)) as f64
        }
    }

    /// The q-error of the estimator on this row: the max-ratio
    /// `max(est, measured) / min(est, measured)` with both sides clamped
    /// to ≥ 1, the standard symmetric accuracy measure for cardinality
    /// estimates (1.0 = exact, always ≥ 1). `None` when no estimate was
    /// recorded for this row.
    #[must_use]
    pub fn q_error(&self) -> Option<f64> {
        let est = self.estimate?.max(1);
        let measured = self.measured.max(1);
        #[allow(clippy::cast_precision_loss)]
        Some(est.max(measured) as f64 / est.min(measured) as f64)
    }
}

/// The whole-program audit result.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Diagnostics: `audit-bound` / `audit-interval` / `audit-ledger`
    /// errors plus any `cost-blowup` warnings.
    pub report: Report,
    /// Per-statement rows, in statement order.
    pub rows: Vec<StmtAudit>,
    /// Total input tuples charged by the ledger.
    pub inputs: u64,
    /// `cost(P(D))` as accounted by the executor.
    pub cost: u64,
    /// The symbolic certificate the bounds came from.
    pub certificate: Certificate,
}

/// Run the full audit: compute the certificate, execute the program, and
/// diff. `estimator`, when given, is consulted once per *tight* bound set
/// (e.g. a histogram oracle) and recorded per row for gap reporting — it
/// never affects the pass/fail verdict.
///
/// # Errors
///
/// Returns the validation error if the program is not well-formed over
/// the scheme.
pub fn audit(
    program: &Program,
    scheme: &DbScheme,
    catalog: &Catalog,
    db: &Database,
    cfg: &ExecConfig,
    estimator: Option<&mut dyn FnMut(RelSet) -> u64>,
) -> Result<AuditReport, ValidateError> {
    validate(program, scheme)?;
    let cx = AnalysisCx::new(program, scheme, catalog)?;
    let certificate = Certificate::compute(&cx);
    audit_with_certificate(&cx, db, cfg, certificate, estimator)
}

/// The audit core, taking a precomputed certificate. Exposed so tests can
/// deliberately corrupt the certificate and assert the corruption is
/// caught (the ablation that proves the differential has teeth).
///
/// # Errors
///
/// Currently infallible for a validated context; kept as `Result` for
/// symmetry with [`audit`].
pub fn audit_with_certificate(
    cx: &AnalysisCx<'_>,
    db: &Database,
    cfg: &ExecConfig,
    certificate: Certificate,
    mut estimator: Option<&mut dyn FnMut(RelSet) -> u64>,
) -> Result<AuditReport, ValidateError> {
    let seeds: Vec<u64> = db.relations().iter().map(|r| r.len() as u64).collect();
    let intervals = interval_analysis(cx, &seeds);
    let bounds = certificate.evaluate(db);
    let exec = execute_with(cx.program, db, cfg);

    let mut diagnostics: Vec<Diagnostic> = cost_blowup(cx, &seeds);
    let mut rows = Vec::with_capacity(cx.program.stmts.len());
    for (i, &measured) in exec.head_sizes.iter().enumerate() {
        let measured = measured as u64;
        let b = &certificate.stmts[i];
        let estimate = match (&mut estimator, b.tight) {
            (Some(est), true) => Some(est(b.head_set)),
            _ => None,
        };
        if measured > bounds[i] {
            diagnostics.push(Diagnostic {
                severity: Severity::Error,
                lint: "audit-bound",
                stmt: Some(i),
                message: format!(
                    "measured head has {measured} tuples but the certificate bounds it by \
                     {} = {} — kernel, scheduler, or certificate bug",
                    bounds[i],
                    certificate.bound_name(i, cx.scheme, cx.catalog)
                ),
                excerpt: cx.excerpt(i),
            });
        }
        if !intervals[i].contains(measured) {
            diagnostics.push(Diagnostic {
                severity: Severity::Error,
                lint: "audit-interval",
                stmt: Some(i),
                message: format!(
                    "measured head has {measured} tuples, outside the abstract interval \
                     [{}, {}]",
                    intervals[i].lo, intervals[i].hi
                ),
                excerpt: cx.excerpt(i),
            });
        }
        rows.push(StmtAudit {
            stmt: i,
            measured,
            bound: bounds[i],
            tight: b.tight,
            interval: intervals[i],
            estimate,
        });
    }

    // Ledger differential: the §2.3 account must be exactly
    // Σ inputs + Σ per-statement heads, and the generated entries must
    // match `head_sizes` one-for-one.
    let inputs = exec.ledger.input_total();
    let heads: u64 = exec.head_sizes.iter().map(|&n| n as u64).sum();
    if inputs.saturating_add(heads) != exec.cost() {
        diagnostics.push(Diagnostic {
            severity: Severity::Error,
            lint: "audit-ledger",
            stmt: None,
            message: format!(
                "ledger total {} != inputs {inputs} + statement heads {heads}",
                exec.cost()
            ),
            excerpt: None,
        });
    }
    let generated: Vec<u64> = exec
        .ledger
        .entries()
        .iter()
        .filter(|e| e.kind == CostKind::Generated)
        .map(|e| e.tuples)
        .collect();
    let head_sizes: Vec<u64> = exec.head_sizes.iter().map(|&n| n as u64).collect();
    if generated != head_sizes {
        diagnostics.push(Diagnostic {
            severity: Severity::Error,
            lint: "audit-ledger",
            stmt: None,
            message: "per-statement ledger entries disagree with recorded head sizes".to_string(),
            excerpt: None,
        });
    }

    diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.stmt.cmp(&b.stmt)));
    Ok(AuditReport {
        report: Report { diagnostics },
        rows,
        inputs,
        cost: exec.cost(),
        certificate,
    })
}

impl AuditReport {
    /// Zero bound violations (warnings like `cost-blowup` may remain).
    #[must_use]
    pub fn bounds_hold(&self) -> bool {
        self.report.clean_at(Severity::Error)
    }

    /// The loosest per-statement gap `bound / measured` in the program.
    #[must_use]
    pub fn worst_gap(&self) -> f64 {
        self.rows.iter().map(StmtAudit::gap).fold(1.0, f64::max)
    }

    /// The statement where the estimator was most wrong: `(stmt index,
    /// q-error)` of the largest [`StmtAudit::q_error`], or `None` when no
    /// row carries an estimate.
    #[must_use]
    pub fn worst_q_error(&self) -> Option<(usize, f64)> {
        self.rows
            .iter()
            .filter_map(|r| r.q_error().map(|q| (r.stmt, q)))
            .fold(None, |acc, (stmt, q)| match acc {
                Some((_, best)) if best >= q => acc,
                _ => Some((stmt, q)),
            })
    }

    /// Deterministic plain-text rendering (no timings — goldenable).
    #[must_use]
    pub fn render_text(&self, cx: &AnalysisCx<'_>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: {} statements, ledger = {} inputs + {} heads = {} total\n",
            self.rows.len(),
            self.inputs,
            self.cost - self.inputs,
            self.cost
        ));
        out.push_str("stmt  measured      bound  kind       symbolic bound\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>4}  {:>8}  {:>9}  {:<9}  {}{}\n",
                r.stmt,
                r.measured,
                r.bound,
                if r.tight { "tight" } else { "product" },
                self.certificate.bound_name(r.stmt, cx.scheme, cx.catalog),
                match r.estimate {
                    Some(e) => format!("  (est {e})"),
                    None => String::new(),
                }
            ));
        }
        if let Some((stmt, q)) = self.worst_q_error() {
            out.push_str(&format!(
                "estimator: worst q-error {q:.2} at statement {stmt} (est {} vs measured {})\n",
                self.rows[stmt].estimate.unwrap_or(0),
                self.rows[stmt].measured
            ));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.bounds_hold() {
                "all measured costs within static bounds"
            } else {
                "BOUND VIOLATION — see diagnostics"
            }
        ));
        if !self.report.diagnostics.is_empty() {
            out.push_str(&self.report.render_text());
        }
        out
    }

    /// JSON rendering (hand-rolled, like the other renderers).
    #[must_use]
    pub fn render_json(&self, scheme: &DbScheme, catalog: &Catalog) -> String {
        let mut out = format!(
            "{{\"inputs\":{},\"cost\":{},\"bounds_hold\":{},\"stmts\":[",
            self.inputs,
            self.cost,
            self.bounds_hold()
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stmt\":{},\"measured\":{},\"bound\":{},\"tight\":{},\"lo\":{},\"hi\":{},\
                 \"set\":\"{}\",\"estimate\":{},\"q_error\":{}}}",
                r.stmt,
                r.measured,
                r.bound,
                r.tight,
                r.interval.lo,
                r.interval.hi,
                set_name(self.certificate.stmts[r.stmt].head_set, scheme, catalog),
                match r.estimate {
                    Some(e) => e.to_string(),
                    None => "null".to_string(),
                },
                match r.q_error() {
                    Some(q) => format!("{q:.4}"),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str(&format!(
            "],\"certificate\":{},\"report\":{}}}",
            self.certificate.render_json(scheme, catalog),
            self.report.render_json()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_program::{ProgramBuilder, Reg};
    use mjoin_relation::relation_of_ints;

    fn fixture() -> (Catalog, DbScheme, Program, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.join(v, v, Reg::Base(1));
        let p = b.finish(v);
        let ab = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4], &[5, 2]]).unwrap();
        let bc = relation_of_ints(&mut c, "BC", &[&[2, 7], &[2, 8]]).unwrap();
        let db = Database::from_relations(vec![ab, bc]);
        (c, s, p, db)
    }

    #[test]
    fn clean_program_audits_clean() {
        let (c, s, p, db) = fixture();
        let rep = audit(&p, &s, &c, &db, &ExecConfig::default(), None).unwrap();
        assert!(rep.bounds_hold(), "{}", rep.report.render_text());
        assert_eq!(rep.rows.len(), 2);
        // Differential: rows sum to the ledger's generated total.
        let heads: u64 = rep.rows.iter().map(|r| r.measured).sum();
        assert_eq!(rep.inputs + heads, rep.cost);
        assert!(rep.worst_gap() >= 1.0);
    }

    #[test]
    fn corrupted_certificate_is_caught() {
        let (c, s, p, db) = fixture();
        let cx = AnalysisCx::new(&p, &s, &c).unwrap();
        let mut cert = Certificate::compute(&cx);
        // Claim the join is bounded by a single base relation — it isn't.
        cert.stmts[1].factors = vec![RelSet::singleton(1)];
        let rep = audit_with_certificate(&cx, &db, &ExecConfig::default(), cert, None).unwrap();
        assert!(!rep.bounds_hold());
        let bad = rep.report.by_lint("audit-bound");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].severity, Severity::Error);
        assert_eq!(bad[0].stmt, Some(1));
    }

    #[test]
    fn estimator_is_recorded_per_tight_row() {
        let (c, s, p, db) = fixture();
        let mut calls = 0u32;
        let mut est = |set: RelSet| {
            calls += 1;
            set.len() as u64 * 100
        };
        let rep = audit(&p, &s, &c, &db, &ExecConfig::default(), Some(&mut est)).unwrap();
        assert!(calls >= 1);
        assert_eq!(rep.rows[0].estimate, Some(100));
        assert_eq!(rep.rows[1].estimate, Some(200));
    }

    #[test]
    fn q_error_is_symmetric_and_worst_offender_is_reported() {
        let (c, s, p, db) = fixture();
        // Overestimate row 0 by 50× and underestimate row 1 by the same
        // factor: the q-error must treat both directions alike.
        let mut first = true;
        let mut est = |_set: RelSet| {
            if std::mem::take(&mut first) {
                100 // measured 2 → q = 50
            } else {
                1 // measured 4 → q = 4
            }
        };
        let rep = audit(&p, &s, &c, &db, &ExecConfig::default(), Some(&mut est)).unwrap();
        let q0 = rep.rows[0].q_error().unwrap();
        let q1 = rep.rows[1].q_error().unwrap();
        assert!(q0 > q1, "overestimate dominates: {q0} vs {q1}");
        assert_eq!(rep.worst_q_error(), Some((0, q0)));
        let text = rep.render_text(&AnalysisCx::new(&p, &s, &c).unwrap());
        assert!(
            text.contains("worst q-error") && text.contains("at statement 0"),
            "{text}"
        );
        let json = rep.render_json(&s, &c);
        assert!(json.contains("\"q_error\":"), "{json}");
    }

    #[test]
    fn q_error_absent_without_an_estimator() {
        let (c, s, p, db) = fixture();
        let rep = audit(&p, &s, &c, &db, &ExecConfig::default(), None).unwrap();
        assert!(rep.rows.iter().all(|r| r.q_error().is_none()));
        assert_eq!(rep.worst_q_error(), None);
        assert!(!rep
            .render_text(&AnalysisCx::new(&p, &s, &c).unwrap())
            .contains("q-error"));
    }

    #[test]
    fn json_render_shapes() {
        let (c, s, p, db) = fixture();
        let rep = audit(&p, &s, &c, &db, &ExecConfig::default(), None).unwrap();
        let json = rep.render_json(&s, &c);
        assert!(json.contains("\"bounds_hold\":true"), "{json}");
        assert!(json.contains("\"certificate\":{"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
