//! Cost oracles: sources of `|⋈ D[S]|` for subsets `S` of the scheme.
//!
//! An optimal join expression minimizes the §2.3 cost, which is determined
//! entirely by the sizes of sub-joins. The [`ExactOracle`] materializes and
//! memoizes those sub-joins (the "true" optimum, affordable for small `r`);
//! the [`EstimateOracle`] uses the classical attribute-independence formula
//! (System-R style) and is what a real optimizer would use.

use mjoin_expr::JoinTree;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::fxhash::FxHashMap;
use mjoin_relation::{ops, AttrId, Database, Relation};

/// A source of sub-join sizes.
pub trait CostOracle {
    /// `|⋈ D[set]|` (exact or estimated).
    fn subjoin_size(&mut self, set: RelSet) -> u64;

    /// The §2.3 cost of a tree: each leaf's input size plus each internal
    /// node's sub-join size.
    fn tree_cost(&mut self, tree: &JoinTree) -> u64 {
        let mut total = 0u64;
        for set in tree.node_sets() {
            total = total.saturating_add(self.subjoin_size(set));
        }
        total
    }
}

/// Exact sizes by materializing each sub-join once (memoized).
///
/// Memory is proportional to the total size of all distinct sub-joins
/// requested; with the DP baselines that is every subset of the scheme, so
/// keep `r` small (≤ 12 or so) and inputs laptop-sized.
pub struct ExactOracle<'a> {
    db: &'a Database,
    memo: FxHashMap<RelSet, Relation>,
}

impl<'a> ExactOracle<'a> {
    /// An oracle over `db`.
    pub fn new(db: &'a Database) -> Self {
        ExactOracle {
            db,
            memo: FxHashMap::default(),
        }
    }

    /// The materialized sub-join for `set`.
    pub fn subjoin(&mut self, set: RelSet) -> &Relation {
        if !self.memo.contains_key(&set) {
            let rel = match set.len() {
                0 => Relation::nullary_unit(),
                1 => self.db.relation(set.first().unwrap()).clone(),
                _ => {
                    let first = set.first().unwrap();
                    let rest = set.difference(RelSet::singleton(first));
                    let sub = self.subjoin(rest).clone();
                    ops::join(&sub, self.db.relation(first))
                }
            };
            self.memo.insert(set, rel);
        }
        &self.memo[&set]
    }

    /// Number of memoized sub-joins (for tests/metrics).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

impl CostOracle for ExactOracle<'_> {
    fn subjoin_size(&mut self, set: RelSet) -> u64 {
        mjoin_trace::add("optimizer.oracle_calls", 1);
        self.subjoin(set).len() as u64
    }
}

/// Estimated sizes under the attribute-independence assumption.
///
/// For each attribute `A`, the domain size `d_A` is the largest number of
/// distinct `A`-values in any input relation containing `A`. A sub-join over
/// relations `R₁…R_k` is estimated as `Π|Rᵢ| / Π_A d_A^(c_A − 1)` where `c_A`
/// is how many of the `Rᵢ` contain `A` — each extra occurrence of a shared
/// attribute contributes one `1/d_A` selectivity factor.
pub struct EstimateOracle {
    rel_sizes: Vec<u64>,
    rel_attrs: Vec<Vec<AttrId>>,
    domain: FxHashMap<AttrId, u64>,
}

impl EstimateOracle {
    /// Build the statistics from a concrete database.
    pub fn new(scheme: &DbScheme, db: &Database) -> Self {
        let mut domain: FxHashMap<AttrId, u64> = FxHashMap::default();
        let mut rel_attrs = Vec::with_capacity(db.len());
        for (i, rel) in db.relations().iter().enumerate() {
            let attrs: Vec<AttrId> = scheme.attrs_of(i).to_vec();
            for &a in &attrs {
                let distinct = distinct_count(rel, a);
                let e = domain.entry(a).or_insert(1);
                *e = (*e).max(distinct.max(1));
            }
            rel_attrs.push(attrs);
        }
        EstimateOracle {
            rel_sizes: db.relations().iter().map(|r| r.len() as u64).collect(),
            rel_attrs,
            domain,
        }
    }
}

fn distinct_count(rel: &Relation, attr: AttrId) -> u64 {
    let Some(pos) = rel.schema().position(attr) else {
        return 1;
    };
    let mut seen = mjoin_relation::fxhash::FxHashSet::default();
    for row in rel.rows() {
        seen.insert(row[pos].clone());
    }
    seen.len() as u64
}

impl CostOracle for EstimateOracle {
    fn subjoin_size(&mut self, set: RelSet) -> u64 {
        mjoin_trace::add("optimizer.oracle_calls", 1);
        let mut numerator = 1f64;
        let mut attr_count: FxHashMap<AttrId, u32> = FxHashMap::default();
        for i in set.iter() {
            numerator *= self.rel_sizes[i] as f64;
            for &a in &self.rel_attrs[i] {
                *attr_count.entry(a).or_insert(0) += 1;
            }
        }
        let mut denom = 1f64;
        for (a, c) in attr_count {
            if c > 1 {
                let d = self.domain[&a] as f64;
                denom *= d.powi(c as i32 - 1);
            }
        }
        let est = numerator / denom;
        if est.is_finite() {
            est.round().max(0.0) as u64
        } else {
            u64::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn setup() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CA"]);
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[4, 5]]).unwrap();
        let t = relation_of_ints(&mut c, "BC", &[&[2, 3], &[5, 6]]).unwrap();
        let u = relation_of_ints(&mut c, "CA", &[&[3, 1]]).unwrap();
        (c, s, Database::from_relations(vec![r, t, u]))
    }

    #[test]
    fn exact_oracle_matches_naive_join() {
        let (_c, _s, db) = setup();
        let mut o = ExactOracle::new(&db);
        for set in [
            RelSet::singleton(0),
            RelSet::from_indices([0, 1]),
            RelSet::from_indices([0, 2]),
            RelSet::full(3),
        ] {
            assert_eq!(
                o.subjoin_size(set),
                db.join_of(&set.to_vec()).len() as u64,
                "set {set}"
            );
        }
        // Memoization: re-asking does not grow the table.
        let n = o.memo_len();
        o.subjoin_size(RelSet::full(3));
        assert_eq!(o.memo_len(), n);
    }

    #[test]
    fn exact_oracle_tree_cost_matches_evaluation() {
        let (_c, _s, db) = setup();
        let mut o = ExactOracle::new(&db);
        let t = JoinTree::left_deep(&[0, 1, 2]);
        assert_eq!(o.tree_cost(&t), mjoin_expr::cost_of(&t, &db));
        let t2 = JoinTree::left_deep(&[2, 0, 1]);
        assert_eq!(o.tree_cost(&t2), mjoin_expr::cost_of(&t2, &db));
    }

    #[test]
    fn estimate_oracle_reasonable() {
        let (_c, s, db) = setup();
        let mut o = EstimateOracle::new(&s, &db);
        // Singletons estimate exactly.
        assert_eq!(o.subjoin_size(RelSet::singleton(0)), 2);
        assert_eq!(o.subjoin_size(RelSet::singleton(2)), 1);
        // AB ⋈ BC: 2*2 / d_B, d_B = 2 → 2.
        assert_eq!(o.subjoin_size(RelSet::from_indices([0, 1])), 2);
        // Estimates are positive and finite.
        assert!(o.subjoin_size(RelSet::full(3)) < 100);
    }

    #[test]
    fn estimate_oracle_cartesian_product_is_product() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "CD"]);
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4], &[5, 6]]).unwrap();
        let t = relation_of_ints(&mut c, "CD", &[&[1, 2], &[3, 4]]).unwrap();
        let db = Database::from_relations(vec![r, t]);
        let mut o = EstimateOracle::new(&s, &db);
        assert_eq!(o.subjoin_size(RelSet::full(2)), 6);
    }

    #[test]
    fn empty_set_is_unit() {
        let (_c, _s, db) = setup();
        let mut o = ExactOracle::new(&db);
        assert_eq!(o.subjoin_size(RelSet::EMPTY), 1);
    }
}
