//! Random tree generation and neighborhood moves for the randomized
//! optimizers (iterative improvement, simulated annealing).
//!
//! Swami & Gupta's SIGMOD '88/'89 studies — cited by the paper as the state
//! of practice for large join queries — search a restricted space with random
//! transformations. We implement the same ingredients over (optionally CPF)
//! bushy trees: a random-merge generator and two local moves, *leaf swap*
//! and *rotation*.

use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use rand::Rng;

/// Generate a random join tree by repeatedly merging two random roots of a
/// forest. With `cpf_only`, only attribute-sharing pairs are merged, so the
/// result is CPF (requires a connected scheme).
pub fn random_tree<R: Rng>(scheme: &DbScheme, rng: &mut R, cpf_only: bool) -> JoinTree {
    let n = scheme.num_relations();
    assert!(n > 0);
    if cpf_only {
        assert!(
            scheme.fully_connected(),
            "CPF trees require a connected scheme"
        );
    }
    let mut forest: Vec<JoinTree> = (0..n).map(JoinTree::leaf).collect();
    while forest.len() > 1 {
        let pairs: Vec<(usize, usize)> = (0..forest.len())
            .flat_map(|i| ((i + 1)..forest.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| {
                !cpf_only
                    || scheme
                        .attrs_of_set(forest[i].rel_set())
                        .intersects(&scheme.attrs_of_set(forest[j].rel_set()))
            })
            .collect();
        debug_assert!(
            !pairs.is_empty(),
            "connected scheme always has a sharing pair"
        );
        let (i, j) = pairs[rng.gen_range(0..pairs.len())];
        let right = forest.remove(j);
        let left = forest.remove(i);
        forest.push(JoinTree::join(left, right));
    }
    forest.pop().unwrap()
}

/// The local moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Exchange the subtrees at two random leaf positions.
    LeafSwap,
    /// Rotate a random internal node: `(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)` or its
    /// mirror.
    Rotate,
}

/// Produce a random neighbor of `tree` under one of the moves. With
/// `cpf_only`, up to `tries` attempts are made to find a CPF neighbor;
/// returns `None` if none was found (caller keeps the current tree).
pub fn random_neighbor<R: Rng>(
    scheme: &DbScheme,
    tree: &JoinTree,
    rng: &mut R,
    cpf_only: bool,
    tries: usize,
) -> Option<JoinTree> {
    for _ in 0..tries {
        let mv = if rng.gen_bool(0.5) {
            Move::LeafSwap
        } else {
            Move::Rotate
        };
        let cand = apply_move(tree, rng, mv);
        if let Some(t) = cand {
            if !cpf_only || t.is_cpf(scheme) {
                return Some(t);
            }
        }
    }
    None
}

fn apply_move<R: Rng>(tree: &JoinTree, rng: &mut R, mv: Move) -> Option<JoinTree> {
    match mv {
        Move::LeafSwap => {
            let n = tree.num_leaves();
            if n < 2 {
                return None;
            }
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            Some(swap_leaves(tree, a, b))
        }
        Move::Rotate => {
            let sites = rotation_sites(tree);
            if sites.is_empty() {
                return None;
            }
            let site = sites[rng.gen_range(0..sites.len())];
            Some(rotate_at(tree, site, &mut 0).expect("site index valid"))
        }
    }
}

/// Swap the leaves at (left-to-right) positions `a` and `b`.
fn swap_leaves(tree: &JoinTree, a: usize, b: usize) -> JoinTree {
    let leaves = tree.leaves();
    let mut order = leaves.clone();
    order.swap(a, b);
    rebuild_with_leaves(tree, &order, &mut 0)
}

fn rebuild_with_leaves(tree: &JoinTree, order: &[usize], cursor: &mut usize) -> JoinTree {
    match tree {
        JoinTree::Leaf(_) => {
            let leaf = JoinTree::leaf(order[*cursor]);
            *cursor += 1;
            leaf
        }
        JoinTree::Join(l, r) => {
            let nl = rebuild_with_leaves(l, order, cursor);
            let nr = rebuild_with_leaves(r, order, cursor);
            JoinTree::join(nl, nr)
        }
    }
}

/// Preorder indices of internal nodes where a rotation applies (a join whose
/// left or right child is itself a join).
fn rotation_sites(tree: &JoinTree) -> Vec<usize> {
    let mut sites = Vec::new();
    let mut idx = 0;
    collect_sites(tree, &mut idx, &mut sites);
    sites
}

fn collect_sites(tree: &JoinTree, idx: &mut usize, sites: &mut Vec<usize>) {
    if let JoinTree::Join(l, r) = tree {
        let here = *idx;
        if matches!(l.as_ref(), JoinTree::Join(_, _)) || matches!(r.as_ref(), JoinTree::Join(_, _))
        {
            sites.push(here);
        }
        *idx += 1;
        collect_sites(l, idx, sites);
        collect_sites(r, idx, sites);
    }
}

/// Rotate the join at preorder internal-node index `site`.
fn rotate_at(tree: &JoinTree, site: usize, idx: &mut usize) -> Option<JoinTree> {
    match tree {
        JoinTree::Leaf(_) => None,
        JoinTree::Join(l, r) => {
            let here = *idx;
            *idx += 1;
            if here == site {
                // Prefer left rotation; fall back to right.
                if let JoinTree::Join(a, b) = l.as_ref() {
                    return Some(JoinTree::join(
                        a.as_ref().clone(),
                        JoinTree::join(b.as_ref().clone(), r.as_ref().clone()),
                    ));
                }
                if let JoinTree::Join(b, c) = r.as_ref() {
                    return Some(JoinTree::join(
                        JoinTree::join(l.as_ref().clone(), b.as_ref().clone()),
                        c.as_ref().clone(),
                    ));
                }
                return None;
            }
            if let Some(nl) = rotate_at(l, site, idx) {
                return Some(JoinTree::join(nl, r.as_ref().clone()));
            }
            rotate_at(r, site, idx).map(|nr| JoinTree::join(l.as_ref().clone(), nr))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper() -> DbScheme {
        let mut c = Catalog::new();
        DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"])
    }

    #[test]
    fn random_tree_is_exactly_over() {
        let s = paper();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let t = random_tree(&s, &mut rng, false);
            assert!(t.is_exactly_over(&s));
        }
    }

    #[test]
    fn random_cpf_tree_is_cpf() {
        let s = paper();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let t = random_tree(&s, &mut rng, true);
            assert!(t.is_cpf(&s));
            assert!(t.is_exactly_over(&s));
        }
    }

    #[test]
    fn neighbors_preserve_leaf_multiset() {
        let s = paper();
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_tree(&s, &mut rng, false);
        for _ in 0..50 {
            if let Some(n) = random_neighbor(&s, &t, &mut rng, false, 5) {
                let mut a = t.leaves();
                let mut b = n.leaves();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
                assert!(n.is_exactly_over(&s));
            }
        }
    }

    #[test]
    fn cpf_neighbors_stay_cpf() {
        let s = paper();
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = random_tree(&s, &mut rng, true);
        for _ in 0..50 {
            if let Some(n) = random_neighbor(&s, &t, &mut rng, true, 20) {
                assert!(n.is_cpf(&s));
                t = n;
            }
        }
    }

    #[test]
    fn rotation_changes_shape() {
        // ((0 ⋈ 1) ⋈ 2) has exactly one rotation site (the root) and rotating
        // gives 0 ⋈ (1 ⋈ 2).
        let t = JoinTree::left_deep(&[0, 1, 2]);
        let sites = rotation_sites(&t);
        assert_eq!(sites.len(), 1);
        let rotated = rotate_at(&t, sites[0], &mut 0).unwrap();
        assert_eq!(
            rotated,
            JoinTree::join(
                JoinTree::leaf(0),
                JoinTree::join(JoinTree::leaf(1), JoinTree::leaf(2))
            )
        );
    }

    #[test]
    fn leaf_swap_swaps() {
        let t = JoinTree::left_deep(&[0, 1, 2]);
        let swapped = swap_leaves(&t, 0, 2);
        assert_eq!(swapped.leaves(), vec![2, 1, 0]);
    }

    #[test]
    fn no_neighbor_for_two_leaf_cpf_failure() {
        // A 2-leaf tree has no rotation sites; leaf swap just mirrors it.
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC"]);
        let t = JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1));
        let mut rng = StdRng::seed_from_u64(5);
        let n = random_neighbor(&s, &t, &mut rng, true, 10);
        if let Some(n) = n {
            assert!(n.is_cpf(&s));
        }
    }
}
