//! The classical greedy smallest-result heuristic.
//!
//! Maintain a forest (initially one leaf per relation); repeatedly join the
//! pair of roots whose join result the oracle says is smallest; stop when one
//! tree remains. With `avoid_cartesian` set, Cartesian-product pairs are only
//! considered when no attribute-sharing pair exists — the common "avoid
//! Cartesian products" optimizer rule the paper discusses.

use crate::oracle::CostOracle;
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;

/// Greedily build a join tree. Returns the tree and its §2.3 cost.
pub fn greedy(
    scheme: &DbScheme,
    oracle: &mut dyn CostOracle,
    avoid_cartesian: bool,
) -> (JoinTree, u64) {
    let n = scheme.num_relations();
    assert!(n > 0, "greedy needs at least one relation");
    let mut sp = mjoin_trace::span("plan", "optimize_greedy");
    if sp.is_active() {
        sp.arg("relations", n);
        sp.arg("avoid_cartesian", i64::from(avoid_cartesian));
    }
    let mut forest: Vec<JoinTree> = (0..n).map(JoinTree::leaf).collect();
    let mut cost: u64 = forest
        .iter()
        .map(|t| oracle.subjoin_size(t.rel_set()))
        .sum();

    while forest.len() > 1 {
        let mut best: Option<(usize, usize, u64, bool)> = None;
        for i in 0..forest.len() {
            for j in (i + 1)..forest.len() {
                let si = forest[i].rel_set();
                let sj = forest[j].rel_set();
                let shares = scheme.attrs_of_set(si).intersects(&scheme.attrs_of_set(sj));
                let size = oracle.subjoin_size(si.union(sj));
                let candidate = (i, j, size, shares);
                best = Some(match best {
                    None => candidate,
                    Some(cur) => {
                        // Prefer attribute-sharing pairs when avoiding
                        // Cartesian products; break ties by size.
                        let better = if avoid_cartesian && shares != cur.3 {
                            shares
                        } else {
                            size < cur.2
                        };
                        if better {
                            candidate
                        } else {
                            cur
                        }
                    }
                });
            }
        }
        let (i, j, size, _) = best.expect("forest has ≥ 2 trees");
        cost = cost.saturating_add(size);
        let right = forest.remove(j);
        let left = forest.remove(i);
        forest.push(JoinTree::join(left, right));
    }
    sp.arg("cost", cost);
    (forest.pop().unwrap(), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use mjoin_expr::cost_of;
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn chain_db() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 2]]).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &[&[2, 5]]).unwrap();
        let r3 = relation_of_ints(&mut c, "CD", &[&[5, 7], &[5, 8], &[9, 9]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3]))
    }

    #[test]
    fn greedy_builds_full_tree_with_correct_cost() {
        let (_c, s, db) = chain_db();
        let mut o = ExactOracle::new(&db);
        let (tree, cost) = greedy(&s, &mut o, true);
        assert!(tree.is_exactly_over(&s));
        assert_eq!(cost, cost_of(&tree, &db));
    }

    #[test]
    fn avoid_cartesian_yields_cpf_when_scheme_connected() {
        let (_c, s, db) = chain_db();
        let mut o = ExactOracle::new(&db);
        let (tree, _) = greedy(&s, &mut o, true);
        assert!(tree.is_cpf(&s));
    }

    #[test]
    fn unrestricted_greedy_may_pick_cartesian() {
        // Two tiny disjoint-ish relations whose product is smaller than any
        // sharing join: AB has 1 tuple, CD has 1 tuple → product size 1,
        // while AB⋈BC is large.
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &[&[2, 5], &[2, 6], &[2, 7], &[2, 8]]).unwrap();
        let r3 = relation_of_ints(&mut c, "CD", &[&[5, 7]]).unwrap();
        let db = Database::from_relations(vec![r1, r2, r3]);
        let mut o = ExactOracle::new(&db);
        let (tree_free, cost_free) = greedy(&s, &mut o, false);
        let (_tree_cpf, cost_cpf) = greedy(&s, &mut o, true);
        assert!(
            !tree_free.is_cpf(&s),
            "free greedy should take AB × CD here"
        );
        assert!(cost_free <= cost_cpf);
    }

    #[test]
    fn single_relation_greedy() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB"]);
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let db = Database::from_relations(vec![r]);
        let mut o = ExactOracle::new(&db);
        let (tree, cost) = greedy(&s, &mut o, true);
        assert_eq!(tree, JoinTree::leaf(0));
        assert_eq!(cost, 1);
    }
}
