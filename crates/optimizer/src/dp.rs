//! Dynamic-programming optimizers over subsets of the scheme.
//!
//! These are the exhaustive baselines the paper's discussion revolves
//! around: the optimal join expression over *all* trees, the cheapest
//! Cartesian-product-free tree, and the cheapest linear (left-deep) tree —
//! each found by subset DP against a [`CostOracle`]. Example 3 is precisely
//! the database where `Cpf` and `Linear` are exponentially worse than `All`.

use crate::oracle::CostOracle;
use mjoin_expr::JoinTree;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::fxhash::FxHashMap;

/// Which space of join expression trees to search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchSpace {
    /// All join expression trees (the true optimum).
    All,
    /// Cartesian-product-free trees only (every node connected).
    Cpf,
    /// Linear (left-deep) trees, Cartesian products allowed.
    Linear,
    /// Linear trees that are also CPF — §4's open-question space.
    LinearCpf,
}

/// An optimizer result: the cheapest tree found and its §2.3 cost.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The minimizing tree.
    pub tree: JoinTree,
    /// Its cost (inputs + all sub-join sizes).
    pub cost: u64,
}

/// Find the cheapest tree over `scheme` in `space` under `oracle`.
///
/// Returns `None` when the space is empty — e.g. `Cpf` over a disconnected
/// scheme. Complexity is `O(3^r)` split enumerations plus the oracle calls;
/// intended for `r ≤ ~12` (`All`) or moderately larger (`Linear`).
///
/// ```
/// use mjoin_hypergraph::DbScheme;
/// use mjoin_optimizer::{optimize, ExactOracle, SearchSpace};
/// use mjoin_relation::{relation_of_ints, Catalog, Database};
///
/// let mut catalog = Catalog::new();
/// let scheme = DbScheme::parse(&mut catalog, &["AB", "BC", "CA"]);
/// let db = Database::from_relations(vec![
///     relation_of_ints(&mut catalog, "AB", &[&[1, 2], &[4, 5]]).unwrap(),
///     relation_of_ints(&mut catalog, "BC", &[&[2, 3], &[5, 6]]).unwrap(),
///     relation_of_ints(&mut catalog, "CA", &[&[3, 1]]).unwrap(),
/// ]);
/// let mut oracle = ExactOracle::new(&db);
/// let best = optimize(&scheme, &mut oracle, SearchSpace::All).unwrap();
/// assert_eq!(best.cost, mjoin_expr::cost_of(&best.tree, &db));
/// // The CPF optimum can never beat the unrestricted optimum.
/// let cpf = optimize(&scheme, &mut oracle, SearchSpace::Cpf).unwrap();
/// assert!(best.cost <= cpf.cost);
/// ```
pub fn optimize(
    scheme: &DbScheme,
    oracle: &mut dyn CostOracle,
    space: SearchSpace,
) -> Option<Optimized> {
    let mut sp = mjoin_trace::span("plan", "optimize_dp");
    let full = scheme.all();
    let mut memo: FxHashMap<RelSet, Option<(u64, JoinTree)>> = FxHashMap::default();
    let found = best(scheme, oracle, space, full, &mut memo);
    if sp.is_active() {
        sp.arg("relations", scheme.num_relations());
        sp.arg("space", format!("{space:?}"));
        sp.arg("subproblems", memo.len());
        if let Some((cost, _)) = &found {
            sp.arg("cost", *cost);
        }
    }
    let (cost, tree) = found?;
    Some(Optimized { tree, cost })
}

fn best(
    scheme: &DbScheme,
    oracle: &mut dyn CostOracle,
    space: SearchSpace,
    set: RelSet,
    memo: &mut FxHashMap<RelSet, Option<(u64, JoinTree)>>,
) -> Option<(u64, JoinTree)> {
    if set.len() == 1 {
        let i = set.first().unwrap();
        return Some((oracle.subjoin_size(set), JoinTree::leaf(i)));
    }
    if let Some(hit) = memo.get(&set) {
        return hit.clone();
    }
    mjoin_trace::add("optimizer.dp_subproblems", 1);
    // CPF spaces require every node to be connected.
    let connected_needed = matches!(space, SearchSpace::Cpf | SearchSpace::LinearCpf);
    if connected_needed && !scheme.is_connected(set) {
        memo.insert(set, None);
        return None;
    }

    let here = oracle.subjoin_size(set);
    let mut result: Option<(u64, JoinTree)> = None;
    for (l, r) in set.half_partitions() {
        // Linear spaces: one side must be a single leaf.
        if matches!(space, SearchSpace::Linear | SearchSpace::LinearCpf)
            && l.len() != 1
            && r.len() != 1
        {
            continue;
        }
        if connected_needed && (!scheme.is_connected(l) || !scheme.is_connected(r)) {
            continue;
        }
        let Some((cl, tl)) = best(scheme, oracle, space, l, memo) else {
            continue;
        };
        let Some((cr, tr)) = best(scheme, oracle, space, r, memo) else {
            continue;
        };
        let total = here.saturating_add(cl).saturating_add(cr);
        if result.as_ref().is_none_or(|(c, _)| total < *c) {
            // Keep the non-leaf side on the left so linear trees come out
            // left-deep, matching the paper's presentation.
            let tree = if tl.num_leaves() >= tr.num_leaves() {
                JoinTree::join(tl, tr)
            } else {
                JoinTree::join(tr, tl)
            };
            result = Some((total, tree));
        }
    }
    memo.insert(set, result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use mjoin_expr::{all_trees, cost_of, cpf_trees, linear_trees};
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn paper_db() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        let r1 = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3], &[1, 2, 4], &[9, 9, 9]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CDE", &[&[3, 4, 5], &[4, 4, 5]]).unwrap();
        let r3 = relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap();
        let r4 = relation_of_ints(&mut c, "GHA", &[&[7, 8, 1], &[7, 9, 1]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3, r4]))
    }

    fn brute_force_min(trees: &[JoinTree], db: &Database) -> u64 {
        trees.iter().map(|t| cost_of(t, db)).min().unwrap()
    }

    #[test]
    fn dp_all_matches_brute_force() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let opt = optimize(&s, &mut o, SearchSpace::All).unwrap();
        let brute = brute_force_min(&all_trees(s.all()), &db);
        assert_eq!(opt.cost, brute);
        assert_eq!(cost_of(&opt.tree, &db), opt.cost);
    }

    #[test]
    fn dp_cpf_matches_brute_force_and_tree_is_cpf() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let opt = optimize(&s, &mut o, SearchSpace::Cpf).unwrap();
        let brute = brute_force_min(&cpf_trees(&s, s.all()), &db);
        assert_eq!(opt.cost, brute);
        assert!(opt.tree.is_cpf(&s));
    }

    #[test]
    fn dp_linear_matches_brute_force_and_tree_is_linear() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let opt = optimize(&s, &mut o, SearchSpace::Linear).unwrap();
        let brute = brute_force_min(&linear_trees(s.all()), &db);
        assert_eq!(opt.cost, brute);
        assert!(opt.tree.is_linear());
    }

    #[test]
    fn linear_cpf_is_both() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let opt = optimize(&s, &mut o, SearchSpace::LinearCpf).unwrap();
        assert!(opt.tree.is_linear());
        assert!(opt.tree.is_cpf(&s));
        // Brute force: linear trees filtered to CPF.
        let brute = linear_trees(s.all())
            .into_iter()
            .filter(|t| t.is_cpf(&s))
            .map(|t| cost_of(&t, &db))
            .min()
            .unwrap();
        assert_eq!(opt.cost, brute);
    }

    #[test]
    fn space_ordering() {
        // All ≤ Cpf ≤ LinearCpf and All ≤ Linear, by inclusion of spaces.
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let all = optimize(&s, &mut o, SearchSpace::All).unwrap().cost;
        let cpf = optimize(&s, &mut o, SearchSpace::Cpf).unwrap().cost;
        let lin = optimize(&s, &mut o, SearchSpace::Linear).unwrap().cost;
        let lincpf = optimize(&s, &mut o, SearchSpace::LinearCpf).unwrap().cost;
        assert!(all <= cpf);
        assert!(all <= lin);
        assert!(cpf <= lincpf);
        assert!(lin <= lincpf);
    }

    #[test]
    fn cpf_over_disconnected_scheme_is_none() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "CD"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CD", &[&[3, 4]]).unwrap();
        let db = Database::from_relations(vec![r1, r2]);
        let mut o = ExactOracle::new(&db);
        assert!(optimize(&s, &mut o, SearchSpace::Cpf).is_none());
        // But All still works (it is a Cartesian product).
        assert!(optimize(&s, &mut o, SearchSpace::All).is_some());
    }

    #[test]
    fn single_relation() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB"]);
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap();
        let db = Database::from_relations(vec![r]);
        let mut o = ExactOracle::new(&db);
        let opt = optimize(&s, &mut o, SearchSpace::All).unwrap();
        assert_eq!(opt.cost, 2);
        assert_eq!(opt.tree, JoinTree::leaf(0));
    }
}
