//! Iterative improvement and simulated annealing over join trees.
//!
//! These are the statistical optimizers of Swami & Gupta (SIGMOD '88/'89),
//! which the paper cites as the practical way to search large join queries
//! after the heuristics have pruned the space. Both walk the neighborhood
//! defined in [`crate::randomized`].

use crate::oracle::CostOracle;
use crate::randomized::{random_neighbor, random_tree};
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`iterative_improvement`].
#[derive(Debug, Clone)]
pub struct IiConfig {
    /// Number of random restarts.
    pub restarts: usize,
    /// Consecutive non-improving neighbors before declaring a local minimum.
    pub patience: usize,
    /// Restrict the walk to CPF trees.
    pub cpf_only: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IiConfig {
    fn default() -> Self {
        IiConfig {
            restarts: 10,
            patience: 50,
            cpf_only: false,
            seed: 0,
        }
    }
}

/// Iterative improvement: repeated hill-climbing from random starts.
pub fn iterative_improvement(
    scheme: &DbScheme,
    oracle: &mut dyn CostOracle,
    config: &IiConfig,
) -> (JoinTree, u64) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best: Option<(JoinTree, u64)> = None;
    for _ in 0..config.restarts {
        let mut cur = random_tree(scheme, &mut rng, config.cpf_only);
        let mut cur_cost = oracle.tree_cost(&cur);
        let mut stale = 0;
        while stale < config.patience {
            match random_neighbor(scheme, &cur, &mut rng, config.cpf_only, 10) {
                Some(n) => {
                    let c = oracle.tree_cost(&n);
                    if c < cur_cost {
                        cur = n;
                        cur_cost = c;
                        stale = 0;
                    } else {
                        stale += 1;
                    }
                }
                None => break,
            }
        }
        if best.as_ref().is_none_or(|(_, c)| cur_cost < *c) {
            best = Some((cur, cur_cost));
        }
    }
    best.expect("at least one restart")
}

/// Configuration for [`simulated_annealing`].
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Initial temperature as a fraction of the starting cost.
    pub initial_temp_factor: f64,
    /// Geometric cooling rate per stage.
    pub cooling: f64,
    /// Moves attempted per temperature stage.
    pub stage_len: usize,
    /// Stages with no accepted move before freezing.
    pub freeze_after: usize,
    /// Restrict the walk to CPF trees.
    pub cpf_only: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            initial_temp_factor: 0.1,
            cooling: 0.9,
            stage_len: 40,
            freeze_after: 4,
            cpf_only: false,
            seed: 0,
        }
    }
}

/// Simulated annealing with geometric cooling.
pub fn simulated_annealing(
    scheme: &DbScheme,
    oracle: &mut dyn CostOracle,
    config: &SaConfig,
) -> (JoinTree, u64) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cur = random_tree(scheme, &mut rng, config.cpf_only);
    let mut cur_cost = oracle.tree_cost(&cur);
    let mut best = cur.clone();
    let mut best_cost = cur_cost;
    let mut temp = (cur_cost as f64 * config.initial_temp_factor).max(1.0);
    let mut frozen_stages = 0;

    while frozen_stages < config.freeze_after {
        let mut accepted = false;
        for _ in 0..config.stage_len {
            let Some(n) = random_neighbor(scheme, &cur, &mut rng, config.cpf_only, 10) else {
                continue;
            };
            let c = oracle.tree_cost(&n);
            let delta = c as f64 - cur_cost as f64;
            if delta <= 0.0 || rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0)) {
                cur = n;
                cur_cost = c;
                accepted = true;
                if cur_cost < best_cost {
                    best = cur.clone();
                    best_cost = cur_cost;
                }
            }
        }
        frozen_stages = if accepted { 0 } else { frozen_stages + 1 };
        temp *= config.cooling;
        if temp < 1e-3 {
            break;
        }
    }
    (best, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{optimize, SearchSpace};
    use crate::oracle::ExactOracle;
    use mjoin_expr::cost_of;
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn paper_db() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        let r1 = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3], &[1, 2, 4]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CDE", &[&[3, 4, 5], &[4, 4, 5]]).unwrap();
        let r3 = relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap();
        let r4 = relation_of_ints(&mut c, "GHA", &[&[7, 8, 1]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3, r4]))
    }

    #[test]
    fn ii_finds_a_valid_tree_with_consistent_cost() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let (tree, cost) = iterative_improvement(&s, &mut o, &IiConfig::default());
        assert!(tree.is_exactly_over(&s));
        assert_eq!(cost, cost_of(&tree, &db));
    }

    #[test]
    fn ii_cpf_mode_returns_cpf_tree() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let cfg = IiConfig {
            cpf_only: true,
            ..Default::default()
        };
        let (tree, _) = iterative_improvement(&s, &mut o, &cfg);
        assert!(tree.is_cpf(&s));
    }

    #[test]
    fn ii_reaches_optimum_on_small_scheme() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let opt = optimize(&s, &mut o, SearchSpace::All).unwrap();
        let cfg = IiConfig {
            restarts: 20,
            patience: 60,
            seed: 7,
            cpf_only: false,
        };
        let (_, cost) = iterative_improvement(&s, &mut o, &cfg);
        assert_eq!(
            cost, opt.cost,
            "15-tree space: II with restarts finds the optimum"
        );
    }

    #[test]
    fn sa_finds_a_valid_tree() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let (tree, cost) = simulated_annealing(&s, &mut o, &SaConfig::default());
        assert!(tree.is_exactly_over(&s));
        assert_eq!(cost, cost_of(&tree, &db));
        assert!(cost > 0);
    }

    #[test]
    fn sa_cpf_mode_returns_cpf_tree() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let cfg = SaConfig {
            cpf_only: true,
            ..Default::default()
        };
        let (tree, _) = simulated_annealing(&s, &mut o, &cfg);
        assert!(tree.is_cpf(&s));
    }

    #[test]
    fn deterministic_given_seed() {
        let (_c, s, db) = paper_db();
        let mut o = ExactOracle::new(&db);
        let cfg = IiConfig {
            seed: 99,
            ..Default::default()
        };
        let a = iterative_improvement(&s, &mut o, &cfg);
        let b = iterative_improvement(&s, &mut o, &cfg);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
