//! `mjoin-optimizer` — baselines for picking join expression trees.
//!
//! The paper's pipeline needs a good input tree `T₁`; this crate supplies
//! every flavor the literature it cites uses:
//!
//! * [`CostOracle`]: sub-join sizes, exact ([`ExactOracle`]) or estimated
//!   under attribute independence ([`EstimateOracle`]);
//! * [`optimize`]: subset-DP optima over the all/CPF/linear/linear-CPF
//!   spaces ([`SearchSpace`]);
//! * [`greedy`]: the smallest-result heuristic, with or without the
//!   avoid-Cartesian-products rule;
//! * [`iterative_improvement`] / [`simulated_annealing`]: Swami–Gupta-style
//!   randomized search over (optionally CPF) bushy trees;
//! * [`space_sizes`]: search-space statistics for the E5 experiment.

#![warn(missing_docs)]

pub mod dp;
pub mod greedy;
pub mod histogram;
pub mod local;
pub mod oracle;
pub mod randomized;
pub mod search_space;

pub use dp::{optimize, Optimized, SearchSpace};
pub use greedy::greedy;
pub use histogram::{q_error, Histogram, HistogramOracle};
pub use local::{iterative_improvement, simulated_annealing, IiConfig, SaConfig};
pub use oracle::{CostOracle, EstimateOracle, ExactOracle};
pub use randomized::{random_neighbor, random_tree};
pub use search_space::{space_sizes, SpaceSizes};
