//! Equi-width histograms and a histogram-based cost oracle.
//!
//! The [`crate::oracle::EstimateOracle`] assumes uniform values; skewed data
//! (like Example 3's, where almost all mass sits on two corner values)
//! breaks that badly. Per-attribute equi-width histograms with per-bucket
//! containment give the classic one-notch-better estimator; the E8
//! experiment measures both estimators' q-error against exact sizes.

use crate::oracle::CostOracle;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::fxhash::{FxHashMap, FxHashSet};
use mjoin_relation::{AttrId, Database, Relation, Value};
use std::hash::BuildHasher;

/// Number of buckets per histogram.
const BUCKETS: usize = 16;

/// An equi-width histogram over one column of one relation.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: i64,
    hi: i64,
    /// Tuple count per bucket.
    counts: [u64; BUCKETS],
    /// Distinct-value count per bucket.
    distinct: [u64; BUCKETS],
    /// Total tuples.
    total: u64,
}

/// Map a value to a sortable i64 key: integers are themselves; strings hash
/// (only relative bucketing matters for strings).
fn value_key(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        Value::Str(s) => {
            let h = mjoin_relation::fxhash::FxBuildHasher::default().hash_one(s);
            (h as i64).wrapping_abs() % 1_000_003
        }
    }
}

impl Histogram {
    /// Build from one column of a relation.
    pub fn build(rel: &Relation, attr: AttrId) -> Option<Histogram> {
        let pos = rel.schema().position(attr)?;
        if rel.is_empty() {
            return Some(Histogram {
                lo: 0,
                hi: 0,
                counts: [0; BUCKETS],
                distinct: [0; BUCKETS],
                total: 0,
            });
        }
        let keys: Vec<i64> = rel.rows().iter().map(|r| value_key(&r[pos])).collect();
        let lo = *keys.iter().min().unwrap();
        let hi = *keys.iter().max().unwrap();
        let mut h = Histogram {
            lo,
            hi,
            counts: [0; BUCKETS],
            distinct: [0; BUCKETS],
            total: 0,
        };
        let mut per_bucket: Vec<FxHashSet<i64>> = vec![FxHashSet::default(); BUCKETS];
        for k in keys {
            let b = h.bucket_of(k);
            h.counts[b] += 1;
            h.total += 1;
            per_bucket[b].insert(k);
        }
        for (b, set) in per_bucket.iter().enumerate() {
            h.distinct[b] = set.len() as u64;
        }
        Some(h)
    }

    fn bucket_of(&self, key: i64) -> usize {
        if self.hi == self.lo {
            return 0;
        }
        let span = (self.hi - self.lo) as i128 + 1;
        let off = (key - self.lo) as i128;
        ((off * BUCKETS as i128 / span) as usize).min(BUCKETS - 1)
    }

    /// Total tuples summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Align another histogram's buckets onto this one's range, returning
    /// per-bucket `(count, distinct)` pairs for the *union* range. Both
    /// histograms are re-bucketed on the combined `[lo, hi]`.
    fn rebucket(&self, lo: i64, hi: i64) -> ([f64; BUCKETS], [f64; BUCKETS]) {
        let mut counts = [0f64; BUCKETS];
        let mut distinct = [0f64; BUCKETS];
        let target = Histogram {
            lo,
            hi,
            counts: [0; BUCKETS],
            distinct: [0; BUCKETS],
            total: 0,
        };
        for b in 0..BUCKETS {
            if self.counts[b] == 0 {
                continue;
            }
            // Spread this source bucket's mass over the target buckets its
            // key range maps into (approximate: assign to the bucket of the
            // source bucket's midpoint).
            let span = (self.hi - self.lo).max(0) as i128 + 1;
            let mid = self.lo as i128 + span * (2 * b as i128 + 1) / (2 * BUCKETS as i128);
            let tb = target.bucket_of(mid as i64);
            counts[tb] += self.counts[b] as f64;
            distinct[tb] += self.distinct[b] as f64;
        }
        (counts, distinct)
    }
}

/// Join-size estimation across `c ≥ 2` histograms of the same attribute:
/// per-bucket containment, `Σ_b Π_i f_{i,b} / max_i d_{i,b}^{c−1}`.
fn multiway_attr_join(hists: &[&Histogram]) -> f64 {
    let lo = hists.iter().map(|h| h.lo).min().unwrap();
    let hi = hists.iter().map(|h| h.hi).max().unwrap();
    let re: Vec<([f64; BUCKETS], [f64; BUCKETS])> =
        hists.iter().map(|h| h.rebucket(lo, hi)).collect();
    let mut total = 0f64;
    for b in 0..BUCKETS {
        let mut prod = 1f64;
        let mut max_d = 0f64;
        let mut nonzero = true;
        for (counts, distinct) in &re {
            if counts[b] == 0.0 {
                nonzero = false;
                break;
            }
            prod *= counts[b];
            max_d = max_d.max(distinct[b]);
        }
        if nonzero && max_d >= 1.0 {
            total += prod / max_d.powi(hists.len() as i32 - 1);
        }
    }
    total
}

/// A [`CostOracle`] estimating sub-join sizes from per-column histograms.
pub struct HistogramOracle {
    rel_sizes: Vec<u64>,
    rel_attrs: Vec<Vec<AttrId>>,
    hists: FxHashMap<(usize, AttrId), Histogram>,
}

impl HistogramOracle {
    /// Build the statistics from a concrete database.
    pub fn new(scheme: &DbScheme, db: &Database) -> Self {
        let mut hists = FxHashMap::default();
        let mut rel_attrs = Vec::with_capacity(db.len());
        for (i, rel) in db.relations().iter().enumerate() {
            let attrs: Vec<AttrId> = scheme.attrs_of(i).to_vec();
            for &a in &attrs {
                if let Some(h) = Histogram::build(rel, a) {
                    hists.insert((i, a), h);
                }
            }
            rel_attrs.push(attrs);
        }
        HistogramOracle {
            rel_sizes: db.relations().iter().map(|r| r.len() as u64).collect(),
            rel_attrs,
            hists,
        }
    }
}

impl CostOracle for HistogramOracle {
    fn subjoin_size(&mut self, set: RelSet) -> u64 {
        let rels = set.to_vec();
        if rels.is_empty() {
            return 1;
        }
        if rels.len() == 1 {
            return self.rel_sizes[rels[0]];
        }
        // Which attributes are shared, and by whom.
        let mut sharers: FxHashMap<AttrId, Vec<usize>> = FxHashMap::default();
        for &i in &rels {
            for &a in &self.rel_attrs[i] {
                sharers.entry(a).or_default().push(i);
            }
        }
        let mut est: f64 = rels
            .iter()
            .map(|&i| self.rel_sizes[i].max(1) as f64)
            .product();
        for (a, who) in sharers {
            if who.len() < 2 {
                continue;
            }
            let hists: Vec<&Histogram> = who
                .iter()
                .filter_map(|&i| self.hists.get(&(i, a)))
                .collect();
            if hists.len() != who.len() {
                continue;
            }
            let joined = multiway_attr_join(&hists);
            let product: f64 = who
                .iter()
                .map(|&i| self.rel_sizes[i].max(1) as f64)
                .product();
            let sel = if product > 0.0 {
                (joined / product).clamp(0.0, 1.0)
            } else {
                0.0
            };
            est *= sel;
        }
        if est.is_finite() {
            est.round().max(0.0) as u64
        } else {
            u64::MAX
        }
    }
}

/// The q-error of an estimate against the truth: `max(e/t, t/e)` with both
/// floored at 1 (the standard accuracy metric for cardinality estimators).
pub fn q_error(estimate: u64, truth: u64) -> f64 {
    let e = estimate.max(1) as f64;
    let t = truth.max(1) as f64;
    (e / t).max(t / e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{EstimateOracle, ExactOracle};
    use mjoin_relation::{relation_of_ints, Catalog};

    #[test]
    fn histogram_counts_and_buckets() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[0, 0], &[1, 0], &[15, 0], &[15, 1]]).unwrap();
        let a = c.lookup("A").unwrap();
        let h = Histogram::build(&r, a).unwrap();
        assert_eq!(h.total(), 4);
        // 15 appears twice but is one distinct value in its bucket.
        let b15 = h.bucket_of(15);
        assert_eq!(h.counts[b15], 2);
        assert_eq!(h.distinct[b15], 1);
    }

    #[test]
    fn missing_attr_yields_none() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let z = c.intern("Z");
        assert!(Histogram::build(&r, z).is_none());
    }

    #[test]
    fn exact_for_equijoin_on_separated_keys() {
        // Keys far apart land in distinct buckets → per-bucket containment
        // is exact.
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 0], &[2, 0], &[3, 1000]]).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &[&[0, 7], &[1000, 8], &[1000, 9]]).unwrap();
        let db = Database::from_relations(vec![r1, r2]);
        let mut hist = HistogramOracle::new(&s, &db);
        let mut exact = ExactOracle::new(&db);
        let set = RelSet::full(2);
        let t = exact.subjoin_size(set);
        let e = hist.subjoin_size(set);
        assert!(q_error(e, t) <= 1.5, "estimate {e} vs truth {t}");
    }

    #[test]
    fn histogram_beats_uniform_on_skew() {
        // Heavy skew: one B-value holds almost all tuples on both sides. The
        // uniform-independence estimate dramatically undercounts; the
        // histogram sees the hot bucket.
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC"]);
        let mut left = vec![];
        let mut right = vec![];
        for i in 0..100i64 {
            left.push(vec![i, 0]); // all B = 0
            right.push(vec![0, i]); // all B = 0 on the other side too
        }
        left.push(vec![1000, 500]);
        right.push(vec![500, 1000]);
        let lrefs: Vec<&[i64]> = left.iter().map(std::vec::Vec::as_slice).collect();
        let rrefs: Vec<&[i64]> = right.iter().map(std::vec::Vec::as_slice).collect();
        let r1 = relation_of_ints(&mut c, "AB", &lrefs).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &rrefs).unwrap();
        let db = Database::from_relations(vec![r1, r2]);

        let mut exact = ExactOracle::new(&db);
        let mut hist = HistogramOracle::new(&s, &db);
        let mut unif = EstimateOracle::new(&s, &db);
        let set = RelSet::full(2);
        let t = exact.subjoin_size(set); // 100·100 = 10,000 (+maybe 1)
        let qh = q_error(hist.subjoin_size(set), t);
        let qu = q_error(unif.subjoin_size(set), t);
        assert!(qh < qu, "histogram q-error {qh} must beat uniform {qu}");
        assert!(qh < 3.0, "histogram should be close on this skew: {qh}");
    }

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10, 10), 1.0);
        assert_eq!(q_error(20, 10), 2.0);
        assert_eq!(q_error(5, 10), 2.0);
        assert_eq!(q_error(0, 0), 1.0);
        assert_eq!(q_error(0, 10), 10.0);
    }

    #[test]
    fn empty_relation_histogram() {
        let mut c = Catalog::new();
        let schema = mjoin_relation::Schema::from_chars(&mut c, "AB");
        let r = Relation::empty(schema);
        let a = c.lookup("A").unwrap();
        let h = Histogram::build(&r, a).unwrap();
        assert_eq!(h.total(), 0);
    }
}
