//! Search-space statistics for the experiment harness (E5).

use mjoin_expr::{count_all_trees, count_cpf_trees, count_linear_trees};
use mjoin_hypergraph::DbScheme;

/// Sizes of the three search spaces over one scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSizes {
    /// Number of relation schemes.
    pub r: usize,
    /// All unordered join trees: `(2r−3)!!`.
    pub all: u128,
    /// Cartesian-product-free trees (depends on the hypergraph).
    pub cpf: u128,
    /// Left-deep trees: `r!/2`.
    pub linear: u128,
}

impl SpaceSizes {
    /// Fraction of all trees that are CPF.
    pub fn cpf_fraction(&self) -> f64 {
        if self.all == 0 {
            0.0
        } else {
            self.cpf as f64 / self.all as f64
        }
    }
}

/// Compute the space sizes for `scheme`.
pub fn space_sizes(scheme: &DbScheme) -> SpaceSizes {
    let r = scheme.num_relations();
    SpaceSizes {
        r,
        all: count_all_trees(r),
        cpf: count_cpf_trees(scheme, scheme.all()),
        linear: count_linear_trees(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    #[test]
    fn paper_scheme_sizes() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        let sizes = space_sizes(&s);
        assert_eq!(sizes.r, 4);
        assert_eq!(sizes.all, 15);
        assert_eq!(sizes.linear, 12);
        assert!(sizes.cpf > 0 && sizes.cpf < 15);
        assert!(sizes.cpf_fraction() > 0.0 && sizes.cpf_fraction() < 1.0);
    }

    #[test]
    fn chain_grows_slower_than_all() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD", "DE", "EF"]);
        let sizes = space_sizes(&s);
        assert_eq!(sizes.all, 105);
        assert!(sizes.cpf < sizes.all);
    }
}
