//! Property tests for join expression trees: enumeration completeness,
//! parser/display roundtrips, and cost-model invariants.

use mjoin_expr::{
    all_trees, cost_of, count_all_trees, count_cpf_trees, cpf_trees, evaluate, linear_trees,
    parse_join_tree, tree_application_cost, JoinTree,
};
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::{AttrId, AttrSet, Catalog, Database, Relation, Schema, Value};
use proptest::prelude::*;

/// A random connected scheme with 2..=5 edges over attributes 0..6.
fn connected_scheme() -> impl Strategy<Value = DbScheme> {
    prop::collection::vec(prop::collection::vec(0u32..6, 1..=3), 2..=5)
        .prop_map(|edges| {
            // Stitch connectivity: overlap each edge with its predecessor.
            let mut sets: Vec<AttrSet> = Vec::new();
            for (i, attrs) in edges.into_iter().enumerate() {
                let mut set: AttrSet = attrs.into_iter().map(AttrId).collect();
                if i > 0 {
                    let prev_first = sets[i - 1].iter().next().unwrap();
                    set.insert(prev_first);
                }
                sets.push(set);
            }
            DbScheme::new(sets)
        })
        .prop_filter("connected", DbScheme::fully_connected)
}

/// A random database over the scheme with values 0..4.
fn db_for(scheme: &DbScheme, seed: u64) -> Database {
    // Tiny deterministic generator (SplitMix-ish) to avoid extra deps.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let rels = (0..scheme.num_relations())
        .map(|i| {
            let schema = Schema::from_set(scheme.attrs_of(i));
            let rows = (0..12)
                .map(|_| {
                    (0..schema.arity())
                        .map(|_| Value::Int((next() % 4) as i64))
                        .collect()
                })
                .collect();
            Relation::from_rows(schema, rows).unwrap()
        })
        .collect();
    Database::from_relations(rels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_enumerated_tree_is_well_formed(s in connected_scheme()) {
        let n = s.num_relations();
        let trees = all_trees(s.all());
        prop_assert_eq!(trees.len() as u128, count_all_trees(n));
        for t in &trees {
            prop_assert!(t.is_exactly_over(&s));
            prop_assert_eq!(t.num_joins(), n - 1);
        }
    }

    #[test]
    fn cpf_enumeration_agrees_with_predicate_filter(s in connected_scheme()) {
        let brute: Vec<JoinTree> = all_trees(s.all())
            .into_iter()
            .filter(|t| t.is_cpf(&s))
            .collect();
        let direct = cpf_trees(&s, s.all());
        prop_assert_eq!(direct.len(), brute.len());
        prop_assert_eq!(count_cpf_trees(&s, s.all()), brute.len() as u128);
        // CPF trees always exist for a connected scheme.
        prop_assert!(!direct.is_empty());
    }

    #[test]
    fn linear_trees_are_linear_and_minimal_cost_ge_all(
        s in connected_scheme(),
        seed in any::<u64>(),
    ) {
        let db = db_for(&s, seed);
        let all_min = all_trees(s.all()).iter().map(|t| cost_of(t, &db)).min().unwrap();
        let lin_min = linear_trees(s.all()).iter().map(|t| cost_of(t, &db)).min().unwrap();
        let cpf_min = cpf_trees(&s, s.all()).iter().map(|t| cost_of(t, &db)).min().unwrap();
        prop_assert!(all_min <= lin_min);
        prop_assert!(all_min <= cpf_min);
    }

    #[test]
    fn every_tree_evaluates_to_the_same_join(
        s in connected_scheme(),
        seed in any::<u64>(),
    ) {
        let db = db_for(&s, seed);
        let expected = db.join_all();
        for t in all_trees(s.all()).into_iter().take(20) {
            let r = evaluate(&t, &db);
            prop_assert_eq!(&r.relation, &expected);
            // Application cost (paper §2.4) equals evaluation cost for
            // exactly-over trees.
            prop_assert_eq!(tree_application_cost(&t, &db), r.ledger.total());
        }
    }

    #[test]
    fn display_parse_roundtrip_single_letter(n in 2usize..5, pick in any::<u64>()) {
        // Single-letter scheme names so the paper notation applies.
        let mut c = Catalog::new();
        let names = ["AB", "BC", "CD", "DE"];
        let s = DbScheme::parse(&mut c, &names[..n]);
        let trees = all_trees(s.all());
        let t = &trees[(pick % trees.len() as u64) as usize];
        let text = t.display(&s, &c).to_string();
        let parsed = parse_join_tree(&c, &s, &text).unwrap();
        prop_assert_eq!(&parsed, t);
    }

    #[test]
    fn cost_includes_all_inputs(s in connected_scheme(), seed in any::<u64>()) {
        let db = db_for(&s, seed);
        let t = JoinTree::left_deep(&(0..s.num_relations()).collect::<Vec<_>>());
        let r = evaluate(&t, &db);
        prop_assert_eq!(r.ledger.input_total(), db.total_tuples());
        prop_assert!(r.cost() >= db.total_tuples());
    }

    #[test]
    fn node_sets_consistent(s in connected_scheme(), pick in any::<u64>()) {
        let trees = all_trees(s.all());
        let t = &trees[(pick % trees.len() as u64) as usize];
        let sets = t.node_sets();
        prop_assert_eq!(sets.len(), 2 * s.num_relations() - 1);
        prop_assert_eq!(*sets.last().unwrap(), s.all());
        // Singleton sets = leaves.
        let singles = sets.iter().filter(|x| x.len() == 1).count();
        prop_assert_eq!(singles, s.num_relations());
        let _ = RelSet::EMPTY;
    }
}
