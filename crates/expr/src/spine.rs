//! Left-spine decomposition of join trees — the structure Algorithm 2 walks
//! (the paper's Figure 3).
//!
//! For a node `𝒱`, following left children down to a leaf gives the spine
//! `𝒱₀, 𝒱₁, …, 𝒱ₙ = 𝒱`; the right child of each `𝒱ᵢ` is `𝒲ᵢ`. The paper's
//! set `S` — the root plus every internal node that is a right child — is
//! exactly the set of nodes that get their own spine walk (and their own
//! relation scheme variable in the derived program).

use crate::tree::JoinTree;

/// The left spine of a node: the bottom leaf `v0` and the right children
/// `W₁ … Wₙ` from the bottom up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spine<'a> {
    /// The leaf `𝒱₀` at the bottom of the left branch.
    pub v0: usize,
    /// `𝒲₁ … 𝒲ₙ`: the right child of each spine node, bottom-up.
    pub rights: Vec<&'a JoinTree>,
}

impl Spine<'_> {
    /// `n`, the number of internal nodes on the spine.
    pub fn len(&self) -> usize {
        self.rights.len()
    }

    /// Whether the node was itself a leaf (empty spine).
    pub fn is_empty(&self) -> bool {
        self.rights.is_empty()
    }
}

/// Decompose `node`'s left spine.
pub fn left_spine(node: &JoinTree) -> Spine<'_> {
    let mut rights_rev = Vec::new();
    let mut cur = node;
    while let JoinTree::Join(l, r) = cur {
        rights_rev.push(r.as_ref());
        cur = l;
    }
    let JoinTree::Leaf(v0) = cur else {
        unreachable!("spine ends at a leaf")
    };
    rights_rev.reverse();
    Spine {
        v0: *v0,
        rights: rights_rev,
    }
}

/// The paper's set `S` for a tree: the root plus every internal node that is
/// the right child of its parent, in the bottom-up order Algorithm 2 visits
/// them (every member inside a subtree precedes the subtree's own member).
pub fn s_nodes(tree: &JoinTree) -> Vec<&JoinTree> {
    fn collect<'a>(node: &'a JoinTree, out: &mut Vec<&'a JoinTree>) {
        // Recurse into the spine's right children first (bottom-up), then
        // emit the node itself.
        if let JoinTree::Join(_, _) = node {
            let spine = left_spine(node);
            for w in spine.rights {
                if matches!(w, JoinTree::Join(_, _)) {
                    collect(w, out);
                }
            }
            out.push(node);
        }
    }
    let mut out = Vec::new();
    collect(tree, &mut out);
    out
}

/// Number of statements Algorithm 2 can emit for `tree`, per Claim C's
/// counting argument: at most `a + 5·n` per member of `S` with spine length
/// `n`, hence strictly less than `r(a+5)` overall. This is the *static*
/// bound; the derived program is usually far shorter.
pub fn claim_c_bound(tree: &JoinTree, num_attrs: usize) -> usize {
    s_nodes(tree)
        .iter()
        .map(|v| num_attrs + 5 * left_spine(v).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2's tree ((0 ⋈ 1) ⋈ 2) ⋈ 3.
    fn fig2() -> JoinTree {
        JoinTree::left_deep(&[0, 1, 2, 3])
    }

    #[test]
    fn left_deep_spine() {
        let t = fig2();
        let s = left_spine(&t);
        assert_eq!(s.v0, 0);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.rights,
            vec![&JoinTree::leaf(1), &JoinTree::leaf(2), &JoinTree::leaf(3)]
        );
    }

    #[test]
    fn left_deep_tree_has_single_s_node() {
        // Every internal node is a left child except the root.
        let t = fig2();
        let s = s_nodes(&t);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0], &t);
    }

    #[test]
    fn bushy_tree_s_nodes_bottom_up() {
        // (0 ⋈ 1) ⋈ (2 ⋈ 3): the right child (2 ⋈ 3) is in S, visited
        // before the root.
        let right = JoinTree::join(JoinTree::leaf(2), JoinTree::leaf(3));
        let t = JoinTree::join(
            JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1)),
            right.clone(),
        );
        let s = s_nodes(&t);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], &right);
        assert_eq!(s[1], &t);
    }

    #[test]
    fn right_deep_tree_every_internal_node_in_s() {
        // 0 ⋈ (1 ⋈ (2 ⋈ 3)): both nested joins are right children.
        let t = JoinTree::join(
            JoinTree::leaf(0),
            JoinTree::join(
                JoinTree::leaf(1),
                JoinTree::join(JoinTree::leaf(2), JoinTree::leaf(3)),
            ),
        );
        let s = s_nodes(&t);
        assert_eq!(s.len(), 3);
        // Innermost first.
        assert_eq!(s[0].num_leaves(), 2);
        assert_eq!(s[1].num_leaves(), 3);
        assert_eq!(s[2].num_leaves(), 4);
    }

    #[test]
    fn leaf_has_no_s_nodes() {
        assert!(s_nodes(&JoinTree::leaf(0)).is_empty());
        let leaf = JoinTree::leaf(7);
        let s = left_spine(&leaf);
        assert_eq!(s.v0, 7);
        assert!(s.is_empty());
    }

    #[test]
    fn spine_segments_partition_internal_nodes() {
        // Across all trees over 5 leaves, the spine lengths of the S-nodes
        // sum to the number of internal nodes (r − 1) — the fact behind
        // Claim C's `a|S| + 5r` count.
        for t in crate::enumerate::all_trees(mjoin_hypergraph::RelSet::full(5)) {
            let total: usize = s_nodes(&t).iter().map(|v| left_spine(v).len()).sum();
            assert_eq!(total, t.num_joins(), "tree {t:?}");
        }
    }

    #[test]
    fn claim_c_bound_dominates_real_programs() {
        // The static count is < r(a+5) whenever |S| ≤ r − 1… with a = attrs.
        let t = fig2();
        let bound = claim_c_bound(&t, 8);
        assert_eq!(bound, 8 + 15);
        assert!(bound < 4 * (8 + 5));
    }
}
