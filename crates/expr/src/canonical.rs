//! Canonical forms of join trees modulo join commutativity.
//!
//! Under the §2.3 cost model `E₁ ⋈ E₂` and `E₂ ⋈ E₁` cost the same and
//! compute the same relation, so analyses often want to treat them as one
//! tree. The canonical form orders every join's children by their smallest
//! leaf index; two trees are cost-equivalent-by-commutativity iff their
//! canonical forms are equal.

use crate::tree::JoinTree;

/// The canonical representative of `tree` modulo commutativity: at every
/// join, the child containing the smaller minimum leaf index goes left.
pub fn canonical(tree: &JoinTree) -> JoinTree {
    match tree {
        JoinTree::Leaf(i) => JoinTree::leaf(*i),
        JoinTree::Join(l, r) => {
            let cl = canonical(l);
            let cr = canonical(r);
            let lmin = cl.rel_set().first().expect("nonempty");
            let rmin = cr.rel_set().first().expect("nonempty");
            if lmin <= rmin {
                JoinTree::join(cl, cr)
            } else {
                JoinTree::join(cr, cl)
            }
        }
    }
}

/// Whether two trees are equal up to flipping join operands.
pub fn commutatively_equal(a: &JoinTree, b: &JoinTree) -> bool {
    canonical(a) == canonical(b)
}

/// Deduplicate a collection of trees modulo commutativity, keeping the
/// canonical representative of each class (order preserved by first
/// appearance).
pub fn dedup_commutative(trees: &[JoinTree]) -> Vec<JoinTree> {
    let mut seen = mjoin_relation::fxhash::FxHashSet::default();
    let mut out = Vec::new();
    for t in trees {
        let c = canonical(t);
        if seen.insert(c.clone()) {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_trees;
    use mjoin_hypergraph::RelSet;

    #[test]
    fn flip_has_same_canonical_form() {
        let a = JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1));
        let b = JoinTree::join(JoinTree::leaf(1), JoinTree::leaf(0));
        assert_ne!(a, b);
        assert!(commutatively_equal(&a, &b));
        assert_eq!(canonical(&b), a);
    }

    #[test]
    fn canonical_is_idempotent() {
        for t in all_trees(RelSet::full(4)) {
            let c = canonical(&t);
            assert_eq!(canonical(&c), c);
            assert!(commutatively_equal(&t, &c));
        }
    }

    #[test]
    fn different_shapes_stay_distinct() {
        let left_deep = JoinTree::left_deep(&[0, 1, 2]);
        let right_deep = JoinTree::join(
            JoinTree::leaf(0),
            JoinTree::join(JoinTree::leaf(1), JoinTree::leaf(2)),
        );
        assert!(!commutatively_equal(&left_deep, &right_deep));
    }

    #[test]
    fn enumeration_is_already_commutativity_free() {
        // `all_trees` uses the anchored partition enumerator, so no two
        // results should collapse to the same canonical form.
        for n in 2..=5 {
            let trees = all_trees(RelSet::full(n));
            let deduped = dedup_commutative(&trees);
            assert_eq!(deduped.len(), trees.len(), "n = {n}");
        }
    }

    #[test]
    fn nested_flips_normalize() {
        // ((2 ⋈ 1) ⋈ 0) canonicalizes to (0 ⋈ (1 ⋈ 2)).
        let t = JoinTree::join(
            JoinTree::join(JoinTree::leaf(2), JoinTree::leaf(1)),
            JoinTree::leaf(0),
        );
        let c = canonical(&t);
        assert_eq!(
            c,
            JoinTree::join(
                JoinTree::leaf(0),
                JoinTree::join(JoinTree::leaf(1), JoinTree::leaf(2)),
            )
        );
    }
}
