//! Join expression trees (§2.4).
//!
//! A join expression *exactly over* a database scheme has one leaf per
//! relation-scheme occurrence, so leaves carry occurrence indices and the
//! tree corresponds one-to-one with a fully parenthesized join expression.
//! Each node of the paper's "join expression tree" is a database scheme; for
//! us that is the [`RelSet`] of occurrences below the node, available via
//! [`JoinTree::rel_set`] / [`JoinTree::node_sets`].

use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::{Catalog, Schema};
use std::fmt;

/// A join expression tree: leaves are relation-scheme occurrences, internal
/// nodes are joins.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinTree {
    /// A relation-scheme occurrence (index into the database scheme).
    Leaf(usize),
    /// A join of two subexpressions.
    Join(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// A leaf.
    pub fn leaf(idx: usize) -> Self {
        JoinTree::Leaf(idx)
    }

    /// A join node.
    pub fn join(left: JoinTree, right: JoinTree) -> Self {
        JoinTree::Join(Box::new(left), Box::new(right))
    }

    /// A left-deep (linear) tree joining the occurrences in `order`:
    /// `(((o₀ ⋈ o₁) ⋈ o₂) ⋈ …)`. Panics on an empty order.
    pub fn left_deep(order: &[usize]) -> Self {
        assert!(!order.is_empty(), "a join tree needs at least one leaf");
        let mut it = order.iter();
        let mut tree = JoinTree::leaf(*it.next().unwrap());
        for &idx in it {
            tree = JoinTree::join(tree, JoinTree::leaf(idx));
        }
        tree
    }

    /// The set of occurrences at the leaves (the database scheme labelling
    /// this node in the paper's tree).
    pub fn rel_set(&self) -> RelSet {
        match self {
            JoinTree::Leaf(i) => RelSet::singleton(*i),
            JoinTree::Join(l, r) => l.rel_set().union(r.rel_set()),
        }
    }

    /// Leaf occurrence indices in left-to-right order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            JoinTree::Leaf(i) => out.push(*i),
            JoinTree::Join(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 1,
            JoinTree::Join(l, r) => l.num_leaves() + r.num_leaves(),
        }
    }

    /// Number of join (internal) nodes — always `num_leaves() − 1`.
    pub fn num_joins(&self) -> usize {
        self.num_leaves() - 1
    }

    /// Height: 0 for a leaf.
    pub fn height(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join(l, r) => 1 + l.height().max(r.height()),
        }
    }

    /// Whether the tree is *exactly over* the scheme: one occurrence of every
    /// relation scheme, no repeats (§2.2).
    pub fn is_exactly_over(&self, scheme: &DbScheme) -> bool {
        let leaves = self.leaves();
        leaves.len() == scheme.num_relations() && self.rel_set() == scheme.all()
    }

    /// The [`RelSet`] of every node, leaves and internal nodes, in postorder.
    pub fn node_sets(&self) -> Vec<RelSet> {
        let mut out = Vec::new();
        self.collect_node_sets(&mut out);
        out
    }

    fn collect_node_sets(&self, out: &mut Vec<RelSet>) -> RelSet {
        let set = match self {
            JoinTree::Leaf(i) => RelSet::singleton(*i),
            JoinTree::Join(l, r) => {
                let ls = l.collect_node_sets(out);
                let rs = r.collect_node_sets(out);
                ls.union(rs)
            }
        };
        out.push(set);
        set
    }

    /// Whether the join at every internal node is Cartesian-product-free:
    /// the attribute sets of the two children intersect (§2.2).
    pub fn is_cpf(&self, scheme: &DbScheme) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Join(l, r) => {
                l.is_cpf(scheme)
                    && r.is_cpf(scheme)
                    && scheme
                        .attrs_of_set(l.rel_set())
                        .intersects(&scheme.attrs_of_set(r.rel_set()))
            }
        }
    }

    /// Whether the tree is linear (left-deep after flipping: every join has
    /// at least one leaf child). The paper's linear expressions are
    /// `(…(R₁ ⋈ R₂) ⋈ …) ⋈ Rₙ`; we accept the mirror-image shapes too since
    /// join is commutative in this cost model.
    pub fn is_linear(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Join(l, r) => match (l.as_ref(), r.as_ref()) {
                (JoinTree::Leaf(_), _) => r.is_linear(),
                (_, JoinTree::Leaf(_)) => l.is_linear(),
                _ => false,
            },
        }
    }

    /// Render using the scheme's attribute names, e.g.
    /// `(ABC ⋈ EFG) ⋈ (CDE ⋈ AGH)`.
    pub fn display<'a>(
        &'a self,
        scheme: &'a DbScheme,
        catalog: &'a Catalog,
    ) -> JoinTreeDisplay<'a> {
        JoinTreeDisplay {
            tree: self,
            scheme,
            catalog,
        }
    }
}

/// Helper returned by [`JoinTree::display`].
pub struct JoinTreeDisplay<'a> {
    tree: &'a JoinTree,
    scheme: &'a DbScheme,
    catalog: &'a Catalog,
}

impl JoinTreeDisplay<'_> {
    fn fmt_node(&self, tree: &JoinTree, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match tree {
            JoinTree::Leaf(i) => {
                let schema = Schema::from_set(self.scheme.attrs_of(*i));
                write!(f, "{}", schema.display(self.catalog))
            }
            JoinTree::Join(l, r) => {
                let paren = |t: &JoinTree| matches!(t, JoinTree::Join(_, _));
                if paren(l) {
                    write!(f, "(")?;
                    self.fmt_node(l, f)?;
                    write!(f, ")")?;
                } else {
                    self.fmt_node(l, f)?;
                }
                write!(f, " ⋈ ")?;
                if paren(r) {
                    write!(f, "(")?;
                    self.fmt_node(r, f)?;
                    write!(f, ")")?;
                } else {
                    self.fmt_node(r, f)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for JoinTreeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_node(self.tree, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_scheme() -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        (c, s)
    }

    /// Example 2's expression `(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)`.
    fn example2_tree() -> JoinTree {
        JoinTree::join(
            JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(2)),
            JoinTree::join(JoinTree::leaf(1), JoinTree::leaf(3)),
        )
    }

    #[test]
    fn structure_queries() {
        let t = example2_tree();
        assert_eq!(t.num_leaves(), 4);
        assert_eq!(t.num_joins(), 3);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaves(), vec![0, 2, 1, 3]);
        assert_eq!(t.rel_set(), RelSet::full(4));
    }

    #[test]
    fn example2_is_non_cpf_and_nonlinear() {
        let (_c, s) = paper_scheme();
        let t = example2_tree();
        // ABC and EFG share no attributes: the left join is a Cartesian
        // product, exactly as the paper says.
        assert!(!t.is_cpf(&s));
        assert!(!t.is_linear());
        assert!(t.is_exactly_over(&s));
    }

    #[test]
    fn left_deep_is_linear_and_cpf_here() {
        let (_c, s) = paper_scheme();
        // ABC ⋈ CDE ⋈ EFG ⋈ GHA in chain order stays connected.
        let t = JoinTree::left_deep(&[0, 1, 2, 3]);
        assert!(t.is_linear());
        assert!(t.is_cpf(&s));
        // Linear order that goes disconnected is linear but not CPF.
        let t2 = JoinTree::left_deep(&[0, 2, 1, 3]);
        assert!(t2.is_linear());
        assert!(!t2.is_cpf(&s));
    }

    #[test]
    fn mirrored_linear_shapes_count_as_linear() {
        let t = JoinTree::join(
            JoinTree::leaf(2),
            JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1)),
        );
        assert!(t.is_linear());
        let bushy = JoinTree::join(
            JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1)),
            JoinTree::join(JoinTree::leaf(2), JoinTree::leaf(3)),
        );
        assert!(!bushy.is_linear());
    }

    #[test]
    fn node_sets_postorder() {
        let t = example2_tree();
        let sets = t.node_sets();
        assert_eq!(sets.len(), 7);
        // Last is the root.
        assert_eq!(*sets.last().unwrap(), RelSet::full(4));
        // Leaves are singletons.
        assert_eq!(sets[0], RelSet::singleton(0));
        assert_eq!(sets[1], RelSet::singleton(2));
    }

    #[test]
    fn exactly_over_detects_repeats_and_omissions() {
        let (_c, s) = paper_scheme();
        let missing = JoinTree::left_deep(&[0, 1, 2]);
        assert!(!missing.is_exactly_over(&s));
        let repeat = JoinTree::join(JoinTree::left_deep(&[0, 1, 2, 3]), JoinTree::leaf(0));
        assert!(!repeat.is_exactly_over(&s));
    }

    #[test]
    fn display_matches_paper_notation() {
        let (c, s) = paper_scheme();
        let t = example2_tree();
        assert_eq!(t.display(&s, &c).to_string(), "(ABC ⋈ EFG) ⋈ (CDE ⋈ AGH)");
        let lin = JoinTree::left_deep(&[0, 1, 2]);
        assert_eq!(lin.display(&s, &c).to_string(), "(ABC ⋈ CDE) ⋈ EFG");
    }

    #[test]
    fn single_leaf_tree() {
        let (_c, s) = paper_scheme();
        let t = JoinTree::leaf(1);
        assert!(t.is_cpf(&s));
        assert!(t.is_linear());
        assert_eq!(t.num_joins(), 0);
        assert_eq!(t.height(), 0);
    }
}
