//! Enumerating and counting join expression trees.
//!
//! The paper's search-space discussion (§1, §4) contrasts the full space of
//! join expressions with its CPF and linear subsets. This module enumerates
//! each space (for small schemes) and counts them in closed form or by
//! subset DP (for larger ones). Trees are *unordered*: `E₁ ⋈ E₂` and
//! `E₂ ⋈ E₁` have identical cost under §2.3, so each unordered split is
//! produced once (the anchored [`RelSet::half_partitions`] guarantees this).

use crate::tree::JoinTree;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::fxhash::FxHashMap;

/// All unordered join expression trees over the occurrences in `set`.
///
/// The count is the double factorial `(2n−3)!!` — 1, 3, 15, 105, 945 … for
/// n = 2, 3, 4, 5, 6 — so keep `n` small (≤ 8 is comfortable).
pub fn all_trees(set: RelSet) -> Vec<JoinTree> {
    assert!(!set.is_empty(), "no join trees over an empty scheme");
    if set.len() == 1 {
        return vec![JoinTree::leaf(set.first().unwrap())];
    }
    let mut out = Vec::new();
    for (l, r) in set.half_partitions() {
        for tl in all_trees(l) {
            for tr in all_trees(r) {
                out.push(JoinTree::join(tl.clone(), tr.clone()));
            }
        }
    }
    out
}

/// All unordered *Cartesian-product-free* trees over `set`.
///
/// Every node of a CPF tree is a connected database scheme (§2.4), so both
/// sides of every split must be connected; if `set` itself is disconnected
/// there are none.
pub fn cpf_trees(scheme: &DbScheme, set: RelSet) -> Vec<JoinTree> {
    assert!(!set.is_empty(), "no join trees over an empty scheme");
    if set.len() == 1 {
        return vec![JoinTree::leaf(set.first().unwrap())];
    }
    if !scheme.is_connected(set) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (l, r) in set.half_partitions() {
        if !scheme.is_connected(l) || !scheme.is_connected(r) {
            continue;
        }
        for tl in cpf_trees(scheme, l) {
            for tr in cpf_trees(scheme, r) {
                out.push(JoinTree::join(tl.clone(), tr.clone()));
            }
        }
    }
    out
}

/// All left-deep (linear) trees over `set`, one per permutation of the
/// occurrences with the symmetric first pair deduplicated (swapping the two
/// innermost leaves gives the same unordered tree), i.e. `n!/2` trees.
pub fn linear_trees(set: RelSet) -> Vec<JoinTree> {
    assert!(!set.is_empty(), "no join trees over an empty scheme");
    let items = set.to_vec();
    if items.len() == 1 {
        return vec![JoinTree::leaf(items[0])];
    }
    let mut out = Vec::new();
    let mut order = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    permute(&items, &mut used, &mut order, &mut out);
    out
}

fn permute(items: &[usize], used: &mut [bool], order: &mut Vec<usize>, out: &mut Vec<JoinTree>) {
    if order.len() == items.len() {
        out.push(JoinTree::left_deep(order));
        return;
    }
    for i in 0..items.len() {
        if used[i] {
            continue;
        }
        // Dedup the symmetric innermost pair: require first < second.
        if order.len() == 1 && items[i] < order[0] {
            continue;
        }
        used[i] = true;
        order.push(items[i]);
        permute(items, used, order, out);
        order.pop();
        used[i] = false;
    }
}

/// Closed-form count of unordered join trees over `n` leaves:
/// `(2n−3)!! = 1·3·5·…·(2n−3)` for `n ≥ 2`, and 1 for `n = 1`.
pub fn count_all_trees(n: usize) -> u128 {
    if n <= 1 {
        return 1;
    }
    let mut acc: u128 = 1;
    let mut k: u128 = 1;
    while k <= (2 * n as u128).saturating_sub(3) {
        acc = acc.saturating_mul(k);
        k += 2;
    }
    acc
}

/// Count of left-deep trees (unordered innermost pair): `n!/2` for `n ≥ 2`.
pub fn count_linear_trees(n: usize) -> u128 {
    if n <= 1 {
        return 1;
    }
    let fact: u128 = (1..=n as u128).product();
    fact / 2
}

/// Count the CPF trees over `set` by subset DP, without materializing them.
pub fn count_cpf_trees(scheme: &DbScheme, set: RelSet) -> u128 {
    let mut memo: FxHashMap<RelSet, u128> = FxHashMap::default();
    count_cpf_rec(scheme, set, &mut memo)
}

fn count_cpf_rec(scheme: &DbScheme, set: RelSet, memo: &mut FxHashMap<RelSet, u128>) -> u128 {
    if set.len() <= 1 {
        return if set.is_empty() { 0 } else { 1 };
    }
    if let Some(&c) = memo.get(&set) {
        return c;
    }
    let mut total: u128 = 0;
    if scheme.is_connected(set) {
        for (l, r) in set.half_partitions() {
            if scheme.is_connected(l) && scheme.is_connected(r) {
                let cl = count_cpf_rec(scheme, l, memo);
                if cl == 0 {
                    continue;
                }
                let cr = count_cpf_rec(scheme, r, memo);
                total = total.saturating_add(cl.saturating_mul(cr));
            }
        }
    }
    memo.insert(set, total);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    fn paper() -> DbScheme {
        let mut c = Catalog::new();
        DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"])
    }

    #[test]
    fn all_trees_count_matches_double_factorial() {
        for n in 1..=5 {
            let trees = all_trees(RelSet::full(n));
            assert_eq!(trees.len() as u128, count_all_trees(n), "n = {n}");
            for t in &trees {
                assert_eq!(t.rel_set(), RelSet::full(n));
                assert_eq!(t.num_leaves(), n);
            }
        }
        assert_eq!(count_all_trees(4), 15);
        assert_eq!(count_all_trees(6), 945);
    }

    #[test]
    fn all_trees_distinct() {
        let trees = all_trees(RelSet::full(4));
        let mut seen = std::collections::HashSet::new();
        for t in &trees {
            assert!(seen.insert(format!("{t:?}")), "duplicate tree produced");
        }
    }

    #[test]
    fn cpf_trees_are_cpf_and_complete() {
        let s = paper();
        let cpf = cpf_trees(&s, s.all());
        assert!(!cpf.is_empty());
        for t in &cpf {
            assert!(t.is_cpf(&s));
            assert!(t.is_exactly_over(&s));
        }
        // Cross-check against brute force: filter all trees by the CPF
        // predicate.
        let brute: Vec<_> = all_trees(s.all())
            .into_iter()
            .filter(|t| t.is_cpf(&s))
            .collect();
        assert_eq!(cpf.len(), brute.len());
        assert_eq!(count_cpf_trees(&s, s.all()), cpf.len() as u128);
    }

    #[test]
    fn cpf_trees_of_disconnected_set_is_empty() {
        let s = paper();
        let disconnected = RelSet::from_indices([0, 2]); // ABC, EFG
        assert!(cpf_trees(&s, disconnected).is_empty());
        assert_eq!(count_cpf_trees(&s, disconnected), 0);
    }

    #[test]
    fn clique_scheme_has_all_trees_cpf() {
        // Every pair of schemes shares X, so nothing is a Cartesian product.
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["XA", "XB", "XC", "XD"]);
        assert_eq!(
            count_cpf_trees(&s, s.all()),
            count_all_trees(4),
            "star scheme: every tree is CPF"
        );
    }

    #[test]
    fn linear_trees_count() {
        for n in 2..=5 {
            let trees = linear_trees(RelSet::full(n));
            assert_eq!(trees.len() as u128, count_linear_trees(n), "n = {n}");
            for t in &trees {
                assert!(t.is_linear());
                assert_eq!(t.rel_set(), RelSet::full(n));
            }
        }
        assert_eq!(count_linear_trees(4), 12);
    }

    #[test]
    fn singletons() {
        let one = RelSet::singleton(3);
        assert_eq!(all_trees(one), vec![JoinTree::leaf(3)]);
        assert_eq!(linear_trees(one), vec![JoinTree::leaf(3)]);
        let s = paper();
        assert_eq!(cpf_trees(&s, one), vec![JoinTree::leaf(3)]);
        assert_eq!(count_cpf_trees(&s, one), 1);
    }

    #[test]
    fn paper_cycle_cpf_count() {
        // For the 4-cycle {ABC, CDE, EFG, GHA}: connected pairs are the 4
        // cycle edges; by symmetry each contributes, and the exhaustive count
        // is what the brute force says. Pin it as a regression value.
        let s = paper();
        let n = count_cpf_trees(&s, s.all());
        assert_eq!(n, cpf_trees(&s, s.all()).len() as u128);
        assert!(n < count_all_trees(4));
    }
}
