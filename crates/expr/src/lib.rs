//! `mjoin-expr` — join expression trees (§2.2, §2.4 of the paper).
//!
//! * [`JoinTree`]: the tree form of a join expression exactly over a
//!   database scheme, with the CPF and linearity predicates;
//! * [`parse_join_tree`]: the paper's textual notation
//!   (`(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)`);
//! * [`evaluate`] / [`cost_of`]: evaluation against a database under the
//!   §2.3 tuple-count cost model;
//! * [`enumerate`]: exhaustive enumeration and counting of the all/CPF/
//!   linear search spaces.

#![warn(missing_docs)]

pub mod canonical;
pub mod enumerate;
pub mod eval;
pub mod parse;
pub mod spine;
pub mod tree;

pub use canonical::{canonical, commutatively_equal, dedup_commutative};
pub use enumerate::{
    all_trees, count_all_trees, count_cpf_trees, count_linear_trees, cpf_trees, linear_trees,
};
pub use eval::{cost_of, evaluate, tree_application_cost, EvalResult};
pub use parse::parse_join_tree;
pub use spine::{claim_c_bound, left_spine, s_nodes, Spine};
pub use tree::JoinTree;
