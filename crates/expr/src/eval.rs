//! Evaluating join expression trees and costing them per §2.3.

use crate::tree::JoinTree;
use mjoin_relation::{ops, CostLedger, Database, Relation};

/// The outcome of evaluating a join tree on a database.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The relation computed at the root — `E(D)`.
    pub relation: Relation,
    /// The cost account: every leaf's input relation plus every join node's
    /// result, i.e. the paper's `cost(E(D))`.
    pub ledger: CostLedger,
}

impl EvalResult {
    /// Total tuple-count cost.
    pub fn cost(&self) -> u64 {
        self.ledger.total()
    }
}

/// Evaluate `tree` on `db`, producing the root relation and the §2.3 cost.
///
/// Leaves charge the input relation they reference (each occurrence is
/// charged once — trees *exactly over* the scheme reference each occurrence
/// once); every join node charges its result.
pub fn evaluate(tree: &JoinTree, db: &Database) -> EvalResult {
    let mut ledger = CostLedger::new();
    let relation = eval_node(tree, db, &mut ledger);
    EvalResult { relation, ledger }
}

fn eval_node(tree: &JoinTree, db: &Database, ledger: &mut CostLedger) -> Relation {
    match tree {
        JoinTree::Leaf(i) => {
            let rel = db.relation(*i);
            ledger.charge_input(format!("input R{i}"), rel.len());
            rel.clone()
        }
        JoinTree::Join(l, r) => {
            let lr = eval_node(l, db, ledger);
            let rr = eval_node(r, db, ledger);
            let joined = ops::join(&lr, &rr);
            ledger.charge_generated(
                format!("join {} ⋈ {}", l.rel_set(), r.rel_set()),
                joined.len(),
            );
            joined
        }
    }
}

/// The cost of `tree` on `db` without keeping the relations around.
pub fn cost_of(tree: &JoinTree, db: &Database) -> u64 {
    evaluate(tree, db).cost()
}

/// `T(D)` in the paper's §2.4: the size of `⋈ D[𝒱]` for every node `𝒱` of the
/// tree, summed. For a tree representing a join expression exactly over the
/// scheme this equals `cost(E(D))` — each node's relation *is* the join of
/// the occurrences below it.
pub fn tree_application_cost(tree: &JoinTree, db: &Database) -> u64 {
    tree.node_sets()
        .iter()
        .map(|set| db.join_of(&set.to_vec()).len() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::{relation_of_ints, Catalog};

    /// The triangle R(AB), S(BC), T(CA) with one consistent cycle.
    fn triangle() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[4, 5]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 3], &[5, 6]]).unwrap();
        let t = relation_of_ints(&mut c, "CA", &[&[3, 1]]).unwrap();
        let scheme = DbScheme::parse(&mut c, &["AB", "BC", "CA"]);
        (c, scheme, Database::from_relations(vec![r, s, t]))
    }

    #[test]
    fn evaluation_matches_naive_join() {
        let (_c, _s, db) = triangle();
        let t = JoinTree::left_deep(&[0, 1, 2]);
        let res = evaluate(&t, &db);
        assert_eq!(res.relation, db.join_all());
    }

    #[test]
    fn cost_counts_inputs_and_intermediates() {
        let (_c, _s, db) = triangle();
        let t = JoinTree::left_deep(&[0, 1, 2]);
        let res = evaluate(&t, &db);
        // inputs: 2 + 2 + 1 = 5; AB⋈BC = 2 tuples; final = 1 tuple.
        assert_eq!(res.ledger.input_total(), 5);
        assert_eq!(res.ledger.generated_total(), 3);
        assert_eq!(res.cost(), 8);
        assert_eq!(cost_of(&t, &db), 8);
    }

    #[test]
    fn different_orders_same_result_different_cost() {
        let (_c, _s, db) = triangle();
        let t1 = JoinTree::left_deep(&[0, 1, 2]);
        // Joining AB with CA first also shares attribute A.
        let t2 = JoinTree::left_deep(&[0, 2, 1]);
        let r1 = evaluate(&t1, &db);
        let r2 = evaluate(&t2, &db);
        assert_eq!(r1.relation, r2.relation);
        // AB ⋈ CA = 1 tuple, so t2 is cheaper: 5 + 1 + 1 = 7.
        assert_eq!(r2.cost(), 7);
        assert!(r2.cost() < r1.cost());
    }

    #[test]
    fn tree_application_cost_equals_eval_cost() {
        let (_c, _s, db) = triangle();
        for t in [
            JoinTree::left_deep(&[0, 1, 2]),
            JoinTree::left_deep(&[2, 0, 1]),
            JoinTree::join(
                JoinTree::leaf(1),
                JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(2)),
            ),
        ] {
            assert_eq!(tree_application_cost(&t, &db), cost_of(&t, &db));
        }
    }

    #[test]
    fn cartesian_product_node_costs_product() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "A", &[&[1], &[2], &[3]]).unwrap();
        let s = relation_of_ints(&mut c, "B", &[&[7], &[8]]).unwrap();
        let db = Database::from_relations(vec![r, s]);
        let t = JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1));
        let res = evaluate(&t, &db);
        assert_eq!(res.relation.len(), 6);
        assert_eq!(res.cost(), 3 + 2 + 6);
    }

    #[test]
    fn single_leaf_cost_is_input_size() {
        let (_c, _s, db) = triangle();
        let t = JoinTree::leaf(0);
        assert_eq!(cost_of(&t, &db), 2);
    }
}
