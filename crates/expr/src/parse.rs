//! A small parser for join expressions in the paper's notation.
//!
//! Grammar (left-associative; `&` is an ASCII alias for `⋈`):
//!
//! ```text
//! expr := term (("⋈" | "&") term)*
//! term := "(" expr ")" | SCHEME
//! ```
//!
//! `SCHEME` is a run of attribute characters such as `ABC` or `GHA`; it is
//! resolved *as a set* against the database scheme's occurrences, and when a
//! scheme occurs several times (a multiset) each mention consumes the next
//! unused occurrence in index order.

use crate::tree::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_relation::{AttrSet, Catalog, Error, Result};

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    catalog: &'a Catalog,
    scheme: &'a DbScheme,
    used: Vec<bool>,
}

impl<'a> Parser<'a> {
    fn new(text: &str, catalog: &'a Catalog, scheme: &'a DbScheme) -> Self {
        Parser {
            chars: text.chars().collect(),
            pos: 0,
            catalog,
            scheme,
            used: vec![false; scheme.num_relations()],
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_expr(&mut self) -> Result<JoinTree> {
        let mut tree = self.parse_term()?;
        loop {
            match self.peek() {
                Some('⋈') | Some('&') => {
                    self.bump();
                    let rhs = self.parse_term()?;
                    tree = JoinTree::join(tree, rhs);
                }
                _ => return Ok(tree),
            }
        }
    }

    fn parse_term(&mut self) -> Result<JoinTree> {
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.parse_expr()?;
                if self.bump() != Some(')') {
                    return Err(Error::Parse("expected `)`".to_string()));
                }
                Ok(inner)
            }
            Some(c) if c.is_alphanumeric() => self.parse_scheme(),
            Some(c) => Err(Error::Parse(format!("unexpected character `{c}`"))),
            None => Err(Error::Parse("unexpected end of input".to_string())),
        }
    }

    fn parse_scheme(&mut self) -> Result<JoinTree> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.chars.len() && self.chars[self.pos].is_alphanumeric() {
            self.pos += 1;
        }
        let name: String = self.chars[start..self.pos].iter().collect();
        let mut want = AttrSet::new();
        for ch in name.chars() {
            let id = self.catalog.require(&ch.to_string())?;
            want.insert(id);
        }
        for idx in 0..self.scheme.num_relations() {
            if !self.used[idx] && *self.scheme.attrs_of(idx) == want {
                self.used[idx] = true;
                return Ok(JoinTree::leaf(idx));
            }
        }
        Err(Error::Parse(format!(
            "no unused occurrence of scheme `{name}` in the database scheme"
        )))
    }
}

/// Parse `text` into a [`JoinTree`] over `scheme`.
///
/// Errors if the text is malformed, mentions an unknown scheme, or mentions
/// one more often than it occurs. It does *not* require the expression to be
/// exactly over the scheme — use [`JoinTree::is_exactly_over`] if you need
/// that — but repeats beyond the multiset count are rejected.
pub fn parse_join_tree(catalog: &Catalog, scheme: &DbScheme, text: &str) -> Result<JoinTree> {
    let mut p = Parser::new(text, catalog, scheme);
    let tree = p.parse_expr()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(Error::Parse(format!("trailing input at offset {}", p.pos)));
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        (c, s)
    }

    #[test]
    fn parses_example2() {
        let (c, s) = paper();
        let t = parse_join_tree(&c, &s, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
        assert_eq!(t.leaves(), vec![0, 2, 1, 3]);
        assert!(t.is_exactly_over(&s));
    }

    #[test]
    fn ascii_alias_and_left_assoc() {
        let (c, s) = paper();
        let t = parse_join_tree(&c, &s, "ABC & CDE & EFG & GHA").unwrap();
        assert_eq!(t, JoinTree::left_deep(&[0, 1, 2, 3]));
        assert!(t.is_linear());
    }

    #[test]
    fn scheme_matched_as_set() {
        let (c, s) = paper();
        // GHA and AGH denote the same attribute set.
        let t1 = parse_join_tree(&c, &s, "GHA").unwrap();
        let t2 = parse_join_tree(&c, &s, "AGH").unwrap();
        assert_eq!(t1, t2);
        assert_eq!(t1, JoinTree::leaf(3));
    }

    #[test]
    fn multiset_occurrences_consumed_in_order() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "AB", "BC"]);
        let t = parse_join_tree(&c, &s, "(AB & BC) & AB").unwrap();
        assert_eq!(t.leaves(), vec![0, 2, 1]);
        assert!(parse_join_tree(&c, &s, "AB & AB & AB").is_err());
    }

    #[test]
    fn error_cases() {
        let (c, s) = paper();
        assert!(parse_join_tree(&c, &s, "").is_err());
        assert!(parse_join_tree(&c, &s, "(ABC").is_err());
        assert!(parse_join_tree(&c, &s, "ABC )").is_err());
        assert!(parse_join_tree(&c, &s, "QRS").is_err());
        assert!(parse_join_tree(&c, &s, "ABD").is_err()); // attrs exist, set doesn't
        assert!(parse_join_tree(&c, &s, "ABC ⋈").is_err());
    }

    #[test]
    fn nested_parens() {
        let (c, s) = paper();
        let t = parse_join_tree(&c, &s, "((ABC)) ⋈ (CDE)").unwrap();
        assert_eq!(t, JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1)));
    }

    #[test]
    fn roundtrip_with_display() {
        let (c, s) = paper();
        let t = parse_join_tree(&c, &s, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
        let text = t.display(&s, &c).to_string();
        let t2 = parse_join_tree(&c, &s, &text).unwrap();
        assert_eq!(t, t2);
    }
}
