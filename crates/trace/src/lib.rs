//! `mjoin-trace` — cheap, thread-safe execution tracing for the whole
//! workspace.
//!
//! Like `mjoin-pool` and the in-tree `fxhash`, this crate is `std`-only and
//! depends on nothing else in the workspace, so every layer — relational
//! operators, the thread pool, the program executors, the optimizers — can
//! record into one shared sink without dependency cycles.
//!
//! The design is a miniature of the usual production tracing split:
//!
//! * **Spans** ([`span`]) are timed regions with a static category/name and
//!   a handful of key→value args (operator strategy, cardinalities, …).
//!   They are recorded on drop into a process-wide sink.
//! * **Counters** ([`add`], [`record_max`]) are named monotonic totals and
//!   high-water marks for things too frequent or too small to span
//!   (oracle calls, DP subproblems, pool queue depth).
//!
//! Everything is gated on one relaxed atomic load ([`enabled`]): when
//! tracing is off — the default — a span is a `None` and costs a branch, no
//! clock read, no allocation, no lock. Tracing turns on either explicitly
//! ([`set_enabled`], used by `mjoin_cli --explain-analyze`) or implicitly
//! when the `MJOIN_TRACE` environment variable is set to a non-empty value
//! (the conventional value is the path the Chrome-trace JSON should be
//! written to; this crate only reads the variable's presence — writing the
//! file is the caller's job via [`Trace::to_chrome_json`]).
//!
//! Collected data is drained with [`take`], which returns a [`Trace`]:
//! the raw [`Event`]s plus the counter totals, with helpers to aggregate
//! ([`Trace::aggregate`]) and export ([`Trace::to_chrome_json`]).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// The enabled flag.

/// 0 = uninitialized, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether tracing is currently on. One relaxed atomic load on the fast
/// path; the first call consults the `MJOIN_TRACE` environment variable.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var_os("MJOIN_TRACE").is_some_and(|v| !v.is_empty());
    // Keep an explicit set_enabled() that raced us; only claim the
    // uninitialized slot.
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

/// Turn tracing on or off explicitly (overrides the environment).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Clock and thread identity.

/// Process-wide trace epoch; all timestamps are microseconds since it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small dense thread ids (Chrome's UI sorts them numerically).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Events and args.

/// A span argument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An integer (cardinalities, indices, microseconds).
    Int(i64),
    /// A short string (strategy names and the like).
    Str(String),
}

impl ArgValue {
    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ArgValue::Int(v) => Some(*v),
            ArgValue::Str(_) => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::Int(_) => None,
            ArgValue::Str(s) => Some(s),
        }
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct Event {
    /// Category (`"op"`, `"exec"`, `"plan"`, `"pool"`).
    pub cat: &'static str,
    /// Name within the category (`"join"`, `"stmt"`, …).
    pub name: &'static str,
    /// Start, µs since the trace epoch.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Recording thread (small dense id).
    pub tid: u64,
    /// Key→value details.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// Look up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Integer argument by key.
    pub fn int_arg(&self, key: &str) -> Option<i64> {
        self.arg(key).and_then(ArgValue::as_int)
    }

    /// String argument by key.
    pub fn str_arg(&self, key: &str) -> Option<&str> {
        self.arg(key).and_then(ArgValue::as_str)
    }
}

// ---------------------------------------------------------------------------
// The sink.

static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

fn push_event(e: Event) {
    EVENTS.lock().expect("trace sink poisoned").push(e);
}

/// Add `delta` to the named counter. No-op when tracing is disabled.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut c = COUNTERS.lock().expect("trace counters poisoned");
    *c.entry(name).or_insert(0) += delta;
}

/// Raise the named high-water mark to at least `value`. No-op when tracing
/// is disabled.
#[inline]
pub fn record_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut c = COUNTERS.lock().expect("trace counters poisoned");
    let e = c.entry(name).or_insert(0);
    *e = (*e).max(value);
}

// ---------------------------------------------------------------------------
// Spans.

/// An in-flight timed region; records an [`Event`] when dropped. Inactive
/// (and free) when tracing is disabled.
#[must_use = "a span measures the region it is alive for"]
pub struct Span(Option<SpanInner>);

struct SpanInner {
    cat: &'static str,
    name: &'static str,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

/// Open a span. When tracing is disabled this returns an inactive span:
/// no clock read, no allocation.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    // Touch the epoch before taking the start time so the first span's
    // timestamp is not negative.
    epoch();
    Span(Some(SpanInner {
        cat,
        name,
        start: Instant::now(),
        args: Vec::new(),
    }))
}

impl Span {
    /// Whether the span is recording (lets callers skip building costly
    /// arg values when tracing is off).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Attach a key→value detail. No-op on an inactive span.
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(inner) = &mut self.0 {
            inner.args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let ts_us = inner
                .start
                .saturating_duration_since(epoch())
                .as_micros()
                .min(u64::MAX as u128) as u64;
            let dur_us = inner.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            push_event(Event {
                cat: inner.cat,
                name: inner.name,
                ts_us,
                dur_us,
                tid: thread_id(),
                args: inner.args,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Draining and export.

/// Everything collected since the last [`take`]: raw events plus counter
/// totals.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans, in completion order.
    pub events: Vec<Event>,
    /// Counter totals / high-water marks, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
}

/// Drain the sink: returns all events and counters recorded so far and
/// resets both.
pub fn take() -> Trace {
    let events = std::mem::take(&mut *EVENTS.lock().expect("trace sink poisoned"));
    let counters = std::mem::take(&mut *COUNTERS.lock().expect("trace counters poisoned"))
        .into_iter()
        .collect();
    Trace { events, counters }
}

/// Discard everything recorded so far.
pub fn clear() {
    let _ = take();
}

/// One row of [`Trace::aggregate`]: spans grouped by category, name, and
/// (when present) their `strategy` arg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRow {
    /// `cat/name` or `cat/name[strategy]`.
    pub key: String,
    /// Number of spans in the group.
    pub count: u64,
    /// Total duration, µs.
    pub total_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
}

impl Trace {
    /// Fold another drained trace into this one: events are appended,
    /// counters are summed by name. A resident server drains the sink per
    /// request and merges into a cumulative trace, so per-process totals
    /// survive `take()` boundaries. Additive counters merge exactly;
    /// high-water-mark counters (`record_max`) merge as sums, i.e. as an
    /// upper bound on the true process-wide mark.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        let mut totals: BTreeMap<&'static str, u64> = self.counters.drain(..).collect();
        for (name, v) in other.counters {
            *totals.entry(name).or_insert(0) += v;
        }
        self.counters = totals.into_iter().collect();
    }

    /// Counter value by name, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Group spans by `cat/name` (plus the `strategy` arg when present) and
    /// total their durations. Rows come back sorted by total time,
    /// descending.
    pub fn aggregate(&self) -> Vec<AggRow> {
        let mut groups: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for e in &self.events {
            let key = match e.str_arg("strategy") {
                Some(s) => format!("{}/{}[{}]", e.cat, e.name, s),
                None => format!("{}/{}", e.cat, e.name),
            };
            let g = groups.entry(key).or_insert((0, 0, 0));
            g.0 += 1;
            g.1 += e.dur_us;
            g.2 = g.2.max(e.dur_us);
        }
        let mut rows: Vec<AggRow> = groups
            .into_iter()
            .map(|(key, (count, total_us, max_us))| AggRow {
                key,
                count,
                total_us,
                max_us,
            })
            .collect();
        rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then_with(|| a.key.cmp(&b.key)));
        rows
    }

    /// Render the trace as Chrome trace format JSON (the `chrome://tracing`
    /// / Perfetto "JSON Array with metadata" flavor): spans become complete
    /// (`"ph": "X"`) events, counters become one final counter event each.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                json_escape(e.name),
                json_escape(e.cat),
                e.ts_us,
                e.dur_us,
                e.tid
            );
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match v {
                        ArgValue::Int(n) => {
                            let _ = write!(out, "\"{}\":{}", json_escape(k), n);
                        }
                        ArgValue::Str(s) => {
                            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(s));
                        }
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        let end_ts = self
            .events
            .iter()
            .map(|e| e.ts_us + e.dur_us)
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{end_ts},\"pid\":1,\"args\":{{\"value\":{value}}}}}",
                json_escape(name),
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// A compact human-readable summary: aggregated spans, then counters.
    /// Generic (no knowledge of programs or schedules); `mjoin_cli` builds
    /// its richer `EXPLAIN ANALYZE` report on top of the raw events.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for row in self.aggregate() {
            let _ = writeln!(
                out,
                "{:<40} {:>6} calls  {:>10.3} ms total  {:>9.3} ms max",
                row.key,
                row.count,
                row.total_us as f64 / 1e3,
                row.max_us as f64 / 1e3,
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<40} {value:>6}");
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink and the enabled flag are process-global, so every test that
    /// toggles them must hold this lock.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = guard();
        set_enabled(false);
        clear();
        {
            let mut sp = span("op", "join");
            assert!(!sp.is_active());
            sp.arg("rows", 5usize);
        }
        add("x", 3);
        record_max("y", 9);
        let t = take();
        assert!(t.events.is_empty());
        assert!(t.counters.is_empty());
    }

    #[test]
    fn spans_and_counters_round_trip() {
        let _g = guard();
        set_enabled(true);
        clear();
        {
            let mut sp = span("op", "join");
            assert!(sp.is_active());
            sp.arg("strategy", "radix");
            sp.arg("out_rows", 42usize);
        }
        add("optimizer.oracle_calls", 2);
        add("optimizer.oracle_calls", 3);
        record_max("pool.max_queue_depth", 4);
        record_max("pool.max_queue_depth", 2);
        let t = take();
        set_enabled(false);
        assert_eq!(t.events.len(), 1);
        let e = &t.events[0];
        assert_eq!((e.cat, e.name), ("op", "join"));
        assert_eq!(e.str_arg("strategy"), Some("radix"));
        assert_eq!(e.int_arg("out_rows"), Some(42));
        assert_eq!(t.counter("optimizer.oracle_calls"), Some(5));
        assert_eq!(t.counter("pool.max_queue_depth"), Some(4));
        // Drained: a second take is empty.
        assert!(take().events.is_empty());
    }

    #[test]
    fn aggregate_groups_by_strategy() {
        let _g = guard();
        set_enabled(true);
        clear();
        for strat in ["radix", "radix", "probe"] {
            let mut sp = span("op", "join");
            sp.arg("strategy", strat);
        }
        let _ = span("exec", "stmt");
        let t = take();
        set_enabled(false);
        let rows = t.aggregate();
        let find = |key: &str| rows.iter().find(|r| r.key == key).map(|r| r.count);
        assert_eq!(find("op/join[radix]"), Some(2));
        assert_eq!(find("op/join[probe]"), Some(1));
        assert_eq!(find("exec/stmt"), Some(1));
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let _g = guard();
        set_enabled(true);
        clear();
        {
            let mut sp = span("op", "semijoin");
            sp.arg("strategy", "chunked_probe");
            sp.arg("left_rows", 10usize);
        }
        add("pool.tasks", 7);
        let t = take();
        set_enabled(false);
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"semijoin\""));
        assert!(json.contains("\"strategy\":\"chunked_probe\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"pool.tasks\""));
        // Balanced braces/brackets (cheap structural sanity without a JSON
        // parser in the dependency set).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn merge_sums_counters_and_appends_events() {
        let _g = guard();
        set_enabled(true);
        clear();
        add("x", 2);
        {
            let _sp = span("exec", "stmt");
        }
        let mut total = take();
        add("x", 3);
        add("y", 1);
        {
            let _sp = span("exec", "stmt");
        }
        total.merge(take());
        set_enabled(false);
        assert_eq!(total.counter("x"), Some(5));
        assert_eq!(total.counter("y"), Some(1));
        assert_eq!(total.events.len(), 2);
        // Counters stay sorted by name after a merge.
        let names: Vec<_> = total.counters.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn spans_record_across_threads() {
        let _g = guard();
        set_enabled(true);
        clear();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _ = span("exec", "stmt");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = take();
        set_enabled(false);
        assert_eq!(t.events.len(), 4);
    }
}
