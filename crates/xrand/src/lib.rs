//! `mjoin-xrand` — an in-tree stand-in for the `rand` crate.
//!
//! The build environment has no cargo registry access, so external crates
//! can never resolve; like the in-tree `fxhash`, this crate keeps the
//! workspace self-contained. It is wired into dependents under the package
//! rename `rand = { package = "mjoin-xrand" }`, exposing exactly the 0.8-era
//! surface the workspace uses: the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64 — a standard, well-mixed generator for simulation workloads.
//! It is *not* cryptographically secure, which is fine for the synthetic
//! workloads and randomized tests here. Range sampling uses a simple
//! modulo reduction; the bias is at most `span / 2^64`, far below anything a
//! statistical test in this workspace could observe.

#![warn(missing_docs)]

/// A source of random 64-bit words (the core of `rand`'s `RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution (`f64` is
    /// uniform in `[0, 1)`, integers are uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open `a..b` or inclusive
    /// `a..=b`). Panics on an empty range, like `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (values outside `[0, 1]` behave as their
    /// nearest bound).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (the subset of `rand::SeedableRng` in use).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard distribution of `T`; see [`Rng::gen`].
pub trait Standard {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that can be sampled from; see [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let w: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 1000 uniforms is near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((150..350).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: usize = rng.gen_range(3..3);
    }
}
