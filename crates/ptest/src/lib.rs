//! `mjoin-ptest` — an in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no cargo registry access, so external crates
//! can never resolve; this crate keeps the workspace's property tests
//! runnable by reimplementing the slice of the `proptest` API they use. It
//! is wired into dependents under the package rename
//! `proptest = { package = "mjoin-ptest" }`, so the test files read as
//! ordinary proptest.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and generated inputs
//!   via `Debug`; rerunning is deterministic (seeds derive from the test
//!   name and case index), so failures reproduce exactly.
//! * **`prop_assume` skips rather than resamples**, which slightly lowers
//!   the effective case count for tests that use it.

#![warn(missing_docs)]

use mjoin_xrand::rngs::StdRng;
use mjoin_xrand::Rng;
use std::marker::PhantomData;
use std::ops::Range;

// Re-exported so the `proptest!` macro can name the RNG traits from inside
// dependent crates (which see this crate as `proptest`, not `mjoin_ptest`,
// and need not depend on `mjoin-xrand` themselves).
#[doc(hidden)]
pub use mjoin_xrand as xrand;

/// The RNG handed to strategies by the [`proptest!`] macro.
pub type TestRng = StdRng;

/// Per-test configuration (the `proptest!` inner attribute).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, resampling up to a bounded number
    /// of times (panics if the predicate is too selective, like proptest's
    /// rejection limit).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: whence.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}): rejection limit exceeded", self.reason);
    }
}

/// A strategy producing one fixed value (cloned per case).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u64, u32, usize, i64, bool, f64);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use mjoin_xrand::Rng;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Lower and upper bound (half-open).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min + 1 >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range for prop::collection::vec");
        VecStrategy { element, min, max }
    }
}

/// Deterministic per-test seed: FNV-1a over the test path.
pub fn seed_for(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Everything the property-test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property body; on failure the enclosing case fails with
/// the formatted message (no panic unwinding needed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Skip the current case when its inputs don't satisfy a hypothesis.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// The test-declaration macro. Each `#[test] fn name(pat in strategy, ...)`
/// item becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    // The `#[test]` attribute written in the source is captured by the
    // `$meta` repetition (matching it literally as well would be ambiguous)
    // and re-emitted onto the generated zero-argument function.
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                    let mut ptest_rng = <$crate::TestRng as $crate::xrand::SeedableRng>::seed_from_u64(seed);
                    $(let $pat = $crate::Strategy::generate(&$strat, &mut ptest_rng);)*
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!(
                            "property `{}` failed at case {} (seed {:#x}):\n{}",
                            stringify!($name), case, seed, msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a::b", 0), crate::seed_for("a::b", 0));
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::b", 1));
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::c", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 0usize..10, v in prop::collection::vec(0..5i64, 0..8)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 8);
            for e in &v {
                prop_assert!((0..5).contains(e));
            }
        }

        #[test]
        fn tuples_maps_filters_and_assume(
            (a, b) in (0u32..100, 0u32..100).prop_map(|(x, y)| (x.min(y), x.max(y))),
            c in (0i64..50).prop_filter("even", |v| v % 2 == 0),
            w in any::<u64>(),
        ) {
            prop_assume!(a != b);
            prop_assert!(a < b);
            prop_assert_eq!(c % 2, 0);
            prop_assert_eq!(w, w);
            prop_assert_ne!((a, b), (b, a));
        }

        #[test]
        fn just_clones((..) in Just(()), v in Just(vec![1, 2, 3])) {
            prop_assert_eq!(v, vec![1, 2, 3]);
        }
    }

    #[test]
    fn prop_assert_produces_err_not_panic() {
        let failing = || -> Result<(), String> {
            let x = 1;
            prop_assert!(x > 10, "x too small: {}", x);
            Ok(())
        };
        assert_eq!(failing(), Err("x too small: 1".to_string()));
        let eq_failing = || -> Result<(), String> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        };
        assert!(eq_failing().unwrap_err().contains("1 + 1"));
    }
}
