//! Shared helpers for the experiment binaries (`exp_e1` … `exp_e9`,
//! `exp_par`) and the Criterion benches.

pub mod baseline;

use mjoin_expr::JoinTree;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_optimizer::CostOracle;
use mjoin_workloads::Example3;

/// A [`CostOracle`] backed by Example 3's closed-form sub-join sizes, so the
/// DP baselines can be run at scales where materialization is impossible
/// (`m = 10^4` means `2·10¹²`-tuple relations).
pub struct Example3Oracle<'a> {
    /// The family member.
    pub ex: Example3,
    /// Its scheme.
    pub scheme: &'a DbScheme,
}

impl CostOracle for Example3Oracle<'_> {
    fn subjoin_size(&mut self, set: RelSet) -> u64 {
        u64::try_from(self.ex.subjoin_size(self.scheme, set)).unwrap_or(u64::MAX)
    }
}

impl Example3Oracle<'_> {
    /// Closed-form tree cost in `u128` (the `u64` trait method saturates at
    /// very large `m`).
    pub fn tree_cost_u128(&self, tree: &JoinTree) -> u128 {
        self.ex.tree_cost(self.scheme, tree)
    }
}

/// Print a markdown table: a header row and aligned data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = widths
            .iter()
            .zip(cells)
            .map(|(w, c)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", parts.join(" | "));
    };
    line(
        &headers
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>(),
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        line(row);
    }
}

/// Format a `u128` with thousands separators for readability.
pub fn fmt_count(n: u128) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    #[test]
    fn fmt_count_groups() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn analytic_oracle_matches_closed_form() {
        let mut c = Catalog::new();
        let scheme = Example3::scheme(&mut c);
        let ex = Example3::new(7);
        let mut o = Example3Oracle {
            ex,
            scheme: &scheme,
        };
        assert_eq!(
            o.subjoin_size(RelSet::from_indices([0, 1])) as u128,
            ex.subjoin_size(&scheme, RelSet::from_indices([0, 1]))
        );
        let t = Example3::optimal_tree();
        assert_eq!(o.tree_cost(&t) as u128, ex.tree_cost(&scheme, &t));
    }
}
