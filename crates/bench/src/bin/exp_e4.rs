//! **E4 — derivation is data-independent and scheme-bounded.**
//!
//! The paper (§1): "the cost of deriving a program from any CPF join
//! expression is bounded by the size of the given database scheme instead of
//! the size of actual relations", and Claim C bounds the statement count by
//! `r(a+5)`.
//!
//! This experiment measures, per scheme family and size `r`:
//! * the statement count of the derived program vs the `r(a+5)` bound;
//! * wall-clock time of Algorithm 1 + Algorithm 2 (no data touched at all);
//! * that the time is unchanged when the (hypothetical) data grows — the
//!   derivation API never sees a database.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e4
//! ```

use mjoin_bench::print_table;
use mjoin_core::derive;
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_relation::Catalog;
use mjoin_workloads::schemes;
use std::time::Instant;

fn time_derivation(scheme: &DbScheme, t1: &JoinTree, iters: u32) -> (f64, usize) {
    // Warm up + measure.
    let d = derive(scheme, t1).expect("derivation succeeds");
    let start = Instant::now();
    for _ in 0..iters {
        let _ = derive(scheme, t1).expect("derivation succeeds");
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
    (micros, d.program.len())
}

fn main() {
    println!("# E4: program derivation cost is bounded by the scheme, not the data\n");

    let mut rows = Vec::new();
    for r in [4usize, 8, 12, 16, 20, 24] {
        for family in ["chain", "cycle", "star", "clique-ish"] {
            let mut catalog = Catalog::new();
            let scheme = match family {
                "chain" => schemes::chain(&mut catalog, r),
                "cycle" => schemes::cycle(&mut catalog, r.max(3)),
                "star" => schemes::star(&mut catalog, r - 1),
                _ => {
                    // clique on v vertices has v(v-1)/2 edges; pick v so the
                    // edge count is near r.
                    let v = (1..).find(|&v| v * (v - 1) / 2 >= r).unwrap();
                    schemes::clique(&mut catalog, v)
                }
            };
            let t1 = JoinTree::left_deep(&(0..scheme.num_relations()).collect::<Vec<_>>());
            let (micros, stmts) = time_derivation(&scheme, &t1, 50);
            rows.push(vec![
                family.to_string(),
                scheme.num_relations().to_string(),
                scheme.num_attrs().to_string(),
                stmts.to_string(),
                scheme.quasi_factor().to_string(),
                format!("{micros:.1}"),
            ]);
            assert!(
                (stmts as u64) < scheme.quasi_factor(),
                "Claim C: statement count must stay below r(a+5)"
            );
        }
    }
    print_table(
        &[
            "family",
            "r",
            "a",
            "statements",
            "r(a+5) bound",
            "derive time (us)",
        ],
        &rows,
    );

    println!("\n(No row depends on any data: derive() takes only the scheme and the tree.)");
}
