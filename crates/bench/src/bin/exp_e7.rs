//! **E7 — ablations and the §4 open question.**
//!
//! 1. Ablate Algorithm 2's output: replace semijoins with joins, replace
//!    projections with full-scheme copies, or both — quantifying what each
//!    statement kind contributes to the cost bound (Example 3 data).
//! 2. The paper's §4 open question: among *linear and CPF* expressions, is
//!    there always one whose derived program is quasi-optimal? We measure
//!    the best derived-program cost over every linear-CPF tree of the
//!    4-cycle and compare with the best over all CPF trees.
//! 3. Algorithm 1 choice-policy sensitivity: program cost across all 16
//!    Algorithm 1 outcomes for the bowtie input.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e7
//! ```

use mjoin_bench::print_table;
use mjoin_core::{ablate_program, algorithm1_all_outcomes, algorithm2, Ablation};
use mjoin_expr::{cpf_trees, linear_trees};
use mjoin_program::execute;
use mjoin_relation::Catalog;
use mjoin_workloads::Example3;

fn main() {
    let m = 10u64;
    let ex = Example3::new(m);
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);
    let db = ex.database(&mut catalog);
    let expected = db.join_all();

    // Part 1: ablations on the program derived from Figure 2's tree.
    println!("# E7.1: statement-kind ablations (Example 3, m = {m})\n");
    let fig2 = mjoin_expr::parse_join_tree(&catalog, &scheme, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
    let p = algorithm2(&scheme, &fig2).unwrap();
    let mut rows = Vec::new();
    let full_cost = execute(&p, &db).cost();
    rows.push(vec![
        "full Algorithm 2".into(),
        p.len().to_string(),
        full_cost.to_string(),
        "1.0x".into(),
    ]);
    for (label, ab) in [
        ("no semijoins (⋉ → ⋈)", Ablation::NoSemijoins),
        ("no projections (π → copy)", Ablation::NoProjections),
        ("neither", Ablation::Neither),
    ] {
        let q = ablate_program(&p, &scheme, ab);
        let out = execute(&q, &db);
        assert_eq!(*out.result, expected, "{label} must stay correct");
        rows.push(vec![
            label.into(),
            q.len().to_string(),
            out.cost().to_string(),
            format!("{:.1}x", out.cost() as f64 / full_cost as f64),
        ]);
    }
    print_table(&["variant", "statements", "cost(P(D))", "vs full"], &rows);

    // Part 2: §4's open question, measured on the 4-cycle.
    println!("\n# E7.2: derived-program cost over tree classes (m = {m})\n");
    let mut best_rows = Vec::new();
    let all_cpf = cpf_trees(&scheme, scheme.all());
    let lin_cpf: Vec<_> = linear_trees(scheme.all())
        .into_iter()
        .filter(|t| t.is_cpf(&scheme))
        .collect();
    for (label, trees) in [
        ("all CPF trees", &all_cpf),
        ("linear ∩ CPF trees", &lin_cpf),
    ] {
        let mut best: Option<(u64, String)> = None;
        for t in trees {
            let p = algorithm2(&scheme, t).unwrap();
            let out = execute(&p, &db);
            assert_eq!(*out.result, expected);
            let c = out.cost();
            if best.as_ref().is_none_or(|(b, _)| c < *b) {
                best = Some((c, t.display(&scheme, &catalog).to_string()));
            }
        }
        let (cost, tree) = best.expect("class nonempty");
        best_rows.push(vec![
            label.to_string(),
            trees.len().to_string(),
            cost.to_string(),
            tree,
        ]);
    }
    let opt_cost = ex.optimal_cost(&scheme);
    print_table(
        &["class", "trees", "best program cost", "best tree"],
        &best_rows,
    );
    println!(
        "\n(optimal join-expression cost for reference: {opt_cost}; best CPF expression: {})",
        ex.min_cpf_cost(&scheme)
    );

    // Part 3: choice-policy sensitivity.
    println!("\n# E7.3: program cost across all 16 Algorithm 1 outcomes of the bowtie\n");
    let t1 = Example3::optimal_tree();
    let outcomes = algorithm1_all_outcomes(&scheme, &t1).unwrap();
    let mut costs: Vec<u64> = outcomes
        .iter()
        .map(|t2| {
            let p = algorithm2(&scheme, t2).unwrap();
            let out = execute(&p, &db);
            assert_eq!(*out.result, expected);
            out.cost()
        })
        .collect();
    costs.sort_unstable();
    println!(
        "{} outcomes; program cost min {} / median {} / max {} (Theorem 2 bound {})",
        costs.len(),
        costs.first().unwrap(),
        costs[costs.len() / 2],
        costs.last().unwrap(),
        scheme.quasi_factor() as u128 * ex.optimal_cost(&scheme)
    );

    // The cost-aware extension policy vs the paper's arbitrary choice.
    let mut aware = mjoin_core::CostAwareChoice::new(|set| {
        u64::try_from(ex.subjoin_size(&scheme, set)).unwrap_or(u64::MAX)
    });
    let t2 = mjoin_core::algorithm1_with_policy(&scheme, &t1, &mut aware).unwrap();
    let p = algorithm2(&scheme, &t2).unwrap();
    let out = execute(&p, &db);
    assert_eq!(*out.result, expected);
    println!(
        "cost-aware choice policy (greedy on sub-join sizes): program cost {} (vs min {} above)",
        out.cost(),
        costs.first().unwrap()
    );
}
