//! **E6 — semijoin programs are useless on Example 3; the classical acyclic
//! toolkit for contrast.**
//!
//! The paper (Example 3): the database is locally (pairwise) consistent, so
//! the classical semijoin-program approach removes nothing, even though
//! `⋈D` has a single tuple. On acyclic schemes the same machinery (full
//! reducer + monotone join, Yannakakis) is exactly what makes joins
//! polynomial. This experiment shows both sides.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e6
//! ```

use mjoin_acyclic::{
    fully_reduce, globally_consistent, pairwise_consistent, semijoin_fixpoint, yannakakis,
};
use mjoin_bench::print_table;
use mjoin_core::{run_pipeline, FirstChoice};
use mjoin_expr::evaluate;
use mjoin_hypergraph::is_acyclic;
use mjoin_relation::{Catalog, CostLedger};
use mjoin_workloads::{random_database, schemes, DataGenConfig, Example3};

fn main() {
    println!("# E6: semijoin reduction — useless on Example 3, decisive on acyclic schemes\n");

    // Part 1: Example 3.
    println!("## Example 3 (cyclic, pairwise consistent)\n");
    let mut rows = Vec::new();
    // m capped at 10 here: the consistency checks materialize ⋈D through a
    // 2m⁵-tuple intermediate, which is the very blow-up the paper is about.
    for m in [5u64, 10] {
        let ex = Example3::new(m);
        let mut catalog = Catalog::new();
        let scheme = Example3::scheme(&mut catalog);
        let db = ex.database(&mut catalog);
        assert!(!is_acyclic(&scheme));
        let pc = pairwise_consistent(&db);
        let gc = globally_consistent(&db);
        let mut ledger = CostLedger::new();
        let (reduced, effective) = semijoin_fixpoint(&db, &mut ledger);
        let run = run_pipeline(&scheme, &Example3::optimal_tree(), &db, &mut FirstChoice)
            .expect("pipeline");
        rows.push(vec![
            m.to_string(),
            pc.to_string(),
            gc.to_string(),
            effective.to_string(),
            (db.total_tuples() - reduced.total_tuples()).to_string(),
            run.exec.result.len().to_string(),
            run.program_cost().to_string(),
        ]);
    }
    print_table(
        &[
            "m",
            "pairwise consistent",
            "globally consistent",
            "effective semijoins",
            "tuples removed",
            "|join|",
            "paper program cost",
        ],
        &rows,
    );
    println!("\n(The semijoin fixpoint removes nothing — the paper's programs still win.)\n");

    // Part 2: an acyclic chain where the classical toolkit shines.
    println!("## Acyclic chain (r = 6), random data with dangling tuples\n");
    let mut catalog = Catalog::new();
    let scheme = schemes::chain(&mut catalog, 6);
    let db = random_database(
        &scheme,
        &DataGenConfig {
            tuples_per_relation: 30,
            domain: 40,
            seed: 3,
            plant_witness: true,
        },
    );
    let (reduced, red_ledger) = fully_reduce(&scheme, &db).unwrap();
    let removed = db.total_tuples() - reduced.total_tuples();
    println!(
        "full reducer: removed {removed} dangling tuples (cost {})",
        red_ledger.total()
    );
    assert!(globally_consistent(&reduced));

    let mono = mjoin_acyclic::monotone_join_tree(&scheme).unwrap();
    let naive = evaluate(&mono, &db);
    let smart = evaluate(&mono, &reduced);
    println!(
        "monotone join: peak intermediate {} (unreduced) vs {} (reduced); final {}",
        naive.ledger.peak_generated(),
        smart.ledger.peak_generated(),
        smart.relation.len()
    );
    assert!(smart.ledger.peak_generated() <= smart.relation.len() as u64);

    let (proj, yan_ledger) = yannakakis(&scheme, &db, &scheme.all_attrs()).unwrap();
    println!(
        "Yannakakis full join: {} tuples, total cost {}",
        proj.len(),
        yan_ledger.total()
    );
    assert_eq!(proj, db.join_all());

    // The paper pipeline on the same acyclic input for comparison.
    let run = run_pipeline(&scheme, &mono, &db, &mut FirstChoice).unwrap();
    println!(
        "paper pipeline from the monotone tree: cost(P) = {} (Yannakakis cost {})",
        run.program_cost(),
        yan_ledger.total()
    );
    assert_eq!(*run.exec.result, db.join_all());
}
