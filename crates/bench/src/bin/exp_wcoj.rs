//! `exp_wcoj` — the worst-case-optimal-vs-program bakeoff.
//!
//! Five binary cyclic queries over [`HubGraph`] data (every pairwise join
//! quadratic, full-join size a closed-form graph property) are run through
//!
//! * the **program engine**: the greedy-picked join tree, derived into a
//!   §2.2 program and interpreted (at 1 and 4 threads); and
//! * the **WCOJ engine**: [`mjoin_wcoj::wcoj_join`]'s Generic Join
//!   elimination loop over sorted tries.
//!
//! For each workload the `auto` selection is computed exactly as the query
//! layer computes it — Theorem-2 certificate of the derived program,
//! evaluated with AGM sub-bounds, against the component's AGM bound — with
//! no environment hints. The headline rows are `triangle_dense` and
//! `clique_4_skew`, where every Cartesian-free program's certificate
//! strictly exceeds the AGM bound, `auto` routes to WCOJ, and the measured
//! wall-clock win is the quadratic-vs-linear separation. `cycle_gap_4` is
//! the honest counterpoint: its certificate *ties* the AGM bound (the
//! output itself can be quadratic), so `auto` conservatively keeps the
//! program engine even when WCOJ happens to be faster on hub data.
//! `cycle_gap_5` shows the selection is a property of the derived program,
//! not the scheme: the greedy (bushy) program ties the AGM bound, while
//! the best **linear** program is certified strictly above it and flips
//! the selection. `clique_4` shows the same from the other side: the
//! scheme's AGM bound is the matching product `N²`, but the greedy tree
//! happens to pass through a star-shaped intermediate certified at `N³`,
//! so selection follows the program it would actually replace.
//!
//! Results land in `BENCH_wcoj.json` at the repo root (or the path given
//! as the first CLI argument). `--check-strategies` is the CI regression
//! gate: it asserts the selection outcomes above and that WCOJ-selected
//! workloads actually drive the elimination loop (`wcoj.attr_loops > 0`).

use mjoin_analyze::{AnalysisCx, Certificate};
use mjoin_bench::print_table;
use mjoin_core::derive;
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_optimizer::{greedy, optimize, EstimateOracle, SearchSpace};
use mjoin_program::{execute_parallel, Program};
use mjoin_relation::{json, Catalog, Database};
use mjoin_wcoj::{select, wcoj_join, Selection};
use mjoin_workloads::HubGraph;
use std::time::Instant;

const REPS: usize = 5;

struct Workload {
    name: &'static str,
    graph: HubGraph,
    catalog: Catalog,
    scheme: DbScheme,
    db: Database,
}

/// The five bench graphs. `check` shrinks the scales for the CI gate —
/// the selection bounds compare exponents, so the outcome is
/// scale-invariant, and the gate should not cost bench minutes.
fn workloads(check: bool) -> Vec<Workload> {
    let s = |bench: u64, gate: u64| if check { gate } else { bench };
    let graphs: Vec<(&'static str, HubGraph)> = vec![
        ("triangle_dense", HubGraph::cycle(3, s(800, 40))),
        ("cycle_gap_4", HubGraph::cycle(4, s(150, 40))),
        ("cycle_gap_5", HubGraph::cycle(5, s(120, 40))),
        ("clique_4", HubGraph::clique(4, s(300, 40))),
        ("clique_4_skew", HubGraph::clique_skew(s(250, 40), 4)),
    ];
    graphs
        .into_iter()
        .map(|(name, graph)| {
            let mut catalog = Catalog::new();
            let scheme = graph.scheme(&mut catalog);
            let db = graph.database(&mut catalog);
            Workload {
                name,
                graph,
                catalog,
                scheme,
                db,
            }
        })
        .collect()
}

/// The strategy-picked tree, exactly as the query layer would pick it.
fn pick_tree(w: &Workload, space: Option<SearchSpace>) -> JoinTree {
    let mut oracle = EstimateOracle::new(&w.scheme, &w.db);
    match space {
        None => greedy(&w.scheme, &mut oracle, true).0,
        Some(space) => {
            optimize(&w.scheme, &mut oracle, space)
                .expect("non-empty search space")
                .tree
        }
    }
}

/// Derive the program for `tree` and compute its `auto` selection: the
/// Theorem-2 certificate (with AGM sub-bounds) against the component AGM.
fn selection_of(w: &Workload, tree: &JoinTree) -> (Program, Selection) {
    let program = derive(&w.scheme, tree).expect("derivation").program;
    let cx = AnalysisCx::new(&program, &w.scheme, &w.catalog).expect("analysis");
    let cert = Certificate::compute(&cx);
    let sizes: Vec<u64> = w.db.relations().iter().map(|r| r.len() as u64).collect();
    (program, select(&w.scheme, &sizes, &cert))
}

/// One timed call of `f`, in milliseconds.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

struct Measurement {
    name: &'static str,
    relations: usize,
    input_tuples: usize,
    output_tuples: usize,
    selection: Selection,
    program_ms: f64,
    program_ms_t4: f64,
    wcoj_ms: f64,
    wcoj_counters: Vec<(String, u64)>,
    /// `cycle_gap_5` only: the best linear program's selection, showing
    /// the executor choice flip within one scheme.
    linear: Option<Selection>,
}

impl Measurement {
    fn selected(&self) -> &'static str {
        if self.selection.use_wcoj {
            "wcoj"
        } else {
            "program"
        }
    }

    /// Best program time (either thread count) over the WCOJ time.
    fn wcoj_speedup(&self) -> f64 {
        self.program_ms.min(self.program_ms_t4) / self.wcoj_ms
    }
}

fn measure(w: &Workload) -> Measurement {
    let tree = pick_tree(w, None);
    let (program, selection) = selection_of(w, &tree);
    let input_tuples: usize =
        w.db.relations()
            .iter()
            .map(mjoin_relation::Relation::len)
            .sum();

    // Correctness gate: both engines must produce the full join, whose
    // size the hub construction knows in closed form.
    let oracle = execute_parallel(&program, &w.db, 1);
    let wcoj_rel = wcoj_join(&w.scheme, &w.db, None);
    assert_eq!(
        *oracle.result, wcoj_rel,
        "{}: program and wcoj results diverged",
        w.name
    );
    assert_eq!(
        wcoj_rel.len() as u64,
        w.graph.join_size(),
        "{}: join size departs from the closed form",
        w.name
    );
    let output_tuples = wcoj_rel.len();

    // Warm both physical views outside the timed region, as exp_par does.
    for rel in w.db.relations() {
        let _ = rel.rows();
        let _ = rel.columns();
    }

    // Interleave the three configurations round-robin across reps (shared
    // CI hosts bias whatever runs last), keep each one's best rep.
    let mut program_ms = f64::INFINITY;
    let mut program_ms_t4 = f64::INFINITY;
    let mut wcoj_ms = f64::INFINITY;
    for _ in 0..REPS {
        program_ms = program_ms.min(time_once(&mut || {
            let out = execute_parallel(&program, &w.db, 1);
            std::hint::black_box(out.result.len());
        }));
        program_ms_t4 = program_ms_t4.min(time_once(&mut || {
            let out = execute_parallel(&program, &w.db, 4);
            std::hint::black_box(out.result.len());
        }));
        wcoj_ms = wcoj_ms.min(time_once(&mut || {
            let out = wcoj_join(&w.scheme, &w.db, None);
            std::hint::black_box(out.len());
        }));
    }

    // One traced (untimed) WCOJ run for the elimination-loop counters.
    mjoin_trace::clear();
    mjoin_trace::set_enabled(true);
    {
        let out = wcoj_join(&w.scheme, &w.db, None);
        std::hint::black_box(out.len());
    }
    mjoin_trace::set_enabled(false);
    let trace = mjoin_trace::take();
    let wcoj_counters: Vec<(String, u64)> = trace
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("wcoj."))
        .map(|(n, v)| (n.to_string(), *v))
        .collect();

    // The 5-cycle's program-class dependence: the best linear program.
    let linear = (w.name == "cycle_gap_5").then(|| {
        let t = pick_tree(w, Some(SearchSpace::Linear));
        selection_of(w, &t).1
    });

    Measurement {
        name: w.name,
        relations: w.db.len(),
        input_tuples,
        output_tuples,
        selection,
        program_ms,
        program_ms_t4,
        wcoj_ms,
        wcoj_counters,
        linear,
    }
}

fn write_json(path: &str, host_parallelism: usize, ms: &[Measurement]) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"wcoj\",\n");
    j.push_str("  \"command\": \"cargo run --release -p mjoin-bench --bin exp_wcoj\",\n");
    j.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    j.push_str(&format!("  \"reps_best_of\": {REPS},\n"));
    j.push_str(
        "  \"note\": \"selected = the auto policy's AGM-vs-certificate choice, computed with no environment hints; program_ms is the greedy-derived program, wcoj_ms the generic-join elimination loop; both engines are asserted equal to the closed-form join before timing\",\n",
    );
    j.push_str("  \"workloads\": [\n");
    for (i, m) in ms.iter().enumerate() {
        j.push_str("    {\n");
        j.push_str(&format!("      \"name\": {},\n", json::string(m.name)));
        j.push_str(&format!("      \"relations\": {},\n", m.relations));
        j.push_str(&format!("      \"input_tuples\": {},\n", m.input_tuples));
        j.push_str(&format!("      \"output_tuples\": {},\n", m.output_tuples));
        j.push_str(&format!(
            "      \"agm_bound\": {},\n",
            m.selection.agm_bound
        ));
        j.push_str(&format!(
            "      \"cert_bound\": {},\n",
            m.selection.cert_bound
        ));
        j.push_str(&format!("      \"selected\": \"{}\",\n", m.selected()));
        j.push_str(&format!("      \"program_ms\": {:.3},\n", m.program_ms));
        j.push_str(&format!(
            "      \"program_ms_t4\": {:.3},\n",
            m.program_ms_t4
        ));
        j.push_str(&format!("      \"wcoj_ms\": {:.3},\n", m.wcoj_ms));
        j.push_str(&format!(
            "      \"wcoj_speedup\": {:.2},\n",
            m.wcoj_speedup()
        ));
        if let Some(lin) = &m.linear {
            j.push_str("      \"linear_program\": {");
            j.push_str(&format!(
                "\"cert_bound\": {}, \"selected\": \"{}\"",
                lin.cert_bound,
                if lin.use_wcoj { "wcoj" } else { "program" }
            ));
            j.push_str("},\n");
        }
        j.push_str("      \"wcoj_counters\": {");
        let cells: Vec<String> = m
            .wcoj_counters
            .iter()
            .map(|(k, v)| format!("{}: {v}", json::string(k)))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("}\n");
        j.push_str(if i + 1 == ms.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    j.push_str("  ]\n}\n");
    std::fs::write(path, j).expect("write BENCH_wcoj.json");
}

/// CI regression gate (`--check-strategies`): the selection outcomes that
/// define the feature, on small instances.
///
/// * `triangle_dense` and `clique_4_skew` must route to WCOJ — on those
///   graphs *every* Cartesian-free program's certificate strictly exceeds
///   the AGM bound, so the expectation is robust to optimizer changes —
///   and a traced run must show the elimination loop actually fired.
/// * `cycle_gap_4` must stay on the program engine: its certificate ties
///   the AGM bound, and ties keep the §2.3 cost story.
/// * `cycle_gap_5` must stay on the program engine under the greedy
///   (bushy) tree but flip to WCOJ under the best linear program, whose
///   4-edge-path intermediate is certified strictly above the AGM bound.
/// * `clique_4` routes to WCOJ because of the *tree*, not the scheme: the
///   greedy program's star-shaped intermediate (three edges through one
///   vertex) is certified at `N³` against the matching-product AGM `N²`.
fn check_strategies(ws: &[Workload]) -> bool {
    let expect: &[(&str, bool)] = &[
        ("triangle_dense", true),
        ("cycle_gap_4", false),
        ("cycle_gap_5", false),
        ("clique_4", true),
        ("clique_4_skew", true),
    ];
    let mut ok = true;
    let mut check = |name: &str, label: &str, cond: bool, detail: String| {
        if cond {
            println!("  ok   {name}: {label} ({detail})");
        } else {
            println!("  FAIL {name}: {label} ({detail})");
            ok = false;
        }
    };
    for w in ws {
        let want_wcoj = expect
            .iter()
            .find(|(n, _)| *n == w.name)
            .is_some_and(|(_, e)| *e);
        let tree = pick_tree(w, None);
        let (_, sel) = selection_of(w, &tree);
        check(
            w.name,
            "selection sanity: certificate never below AGM",
            sel.cert_bound >= sel.agm_bound,
            format!("agm {} cert {}", sel.agm_bound, sel.cert_bound),
        );
        check(
            w.name,
            if want_wcoj {
                "auto selects wcoj"
            } else {
                "auto keeps the program engine"
            },
            sel.use_wcoj == want_wcoj,
            format!("agm {} cert {}", sel.agm_bound, sel.cert_bound),
        );
        if want_wcoj {
            mjoin_trace::clear();
            mjoin_trace::set_enabled(true);
            {
                let out = wcoj_join(&w.scheme, &w.db, None);
                std::hint::black_box(out.len());
            }
            mjoin_trace::set_enabled(false);
            let trace = mjoin_trace::take();
            let loops = trace.counter("wcoj.attr_loops").unwrap_or(0);
            check(
                w.name,
                "the elimination loop fired",
                loops > 0,
                format!("wcoj.attr_loops = {loops}"),
            );
        }
        if w.name == "cycle_gap_5" {
            let t = pick_tree(w, Some(SearchSpace::Linear));
            let (_, lin) = selection_of(w, &t);
            check(
                w.name,
                "the best linear program flips the selection to wcoj",
                lin.use_wcoj,
                format!("agm {} linear cert {}", lin.agm_bound, lin.cert_bound),
            );
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check-strategies") {
        let ws = workloads(true);
        println!("exp_wcoj --check-strategies: {} workloads\n", ws.len());
        if check_strategies(&ws) {
            println!("\ncheck-strategies: all selection expectations held");
            return;
        }
        eprintln!("\ncheck-strategies: executor selection regressed (see FAIL lines above)");
        std::process::exit(1);
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_wcoj.json".into());
    // Fail on an unwritable output path *before* the run.
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        eprintln!("exp_wcoj: cannot open output path {path}: {e}");
        std::process::exit(1);
    }
    let host_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    mjoin_pool::ensure_at_least(4);
    println!("exp_wcoj: host parallelism {host_parallelism}, best of {REPS}\n");

    let ws = workloads(false);
    let measurements: Vec<Measurement> = ws
        .iter()
        .map(|w| {
            println!("running {} ...", w.name);
            measure(w)
        })
        .collect();

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.input_tuples.to_string(),
                m.output_tuples.to_string(),
                m.selection.agm_bound.to_string(),
                m.selection.cert_bound.to_string(),
                m.selected().to_string(),
                format!("{:.1}", m.program_ms),
                format!("{:.1}", m.program_ms_t4),
                format!("{:.1}", m.wcoj_ms),
                format!("{:.2}×", m.wcoj_speedup()),
            ]
        })
        .collect();
    println!();
    print_table(
        &[
            "workload",
            "input",
            "output",
            "agm",
            "cert",
            "selected",
            "prog t=1",
            "prog t=4",
            "wcoj",
            "wcoj speedup",
        ],
        &rows,
    );

    write_json(&path, host_parallelism, &measurements);
    println!("\nwrote {path}");
}
