//! **E5 — search-space sizes and DP optimizer timing.**
//!
//! The paper's §1/§4 discuss the (exponential) sizes of the join-expression
//! search space and its CPF/linear subsets. This experiment tabulates the
//! exact counts per scheme family and the wall-clock of the subset-DP
//! optimizers against them.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e5
//! ```

use mjoin_bench::{fmt_count, print_table};
use mjoin_optimizer::{optimize, space_sizes, ExactOracle, SearchSpace};
use mjoin_relation::Catalog;
use mjoin_workloads::{random_database, schemes, DataGenConfig};
use std::time::Instant;

fn main() {
    println!("# E5: search-space sizes — all vs CPF vs linear\n");
    let mut rows = Vec::new();
    for r in 3..=10usize {
        for family in ["chain", "cycle", "star"] {
            let mut catalog = Catalog::new();
            let scheme = match family {
                "chain" => schemes::chain(&mut catalog, r),
                "cycle" => schemes::cycle(&mut catalog, r.max(3)),
                _ => schemes::star(&mut catalog, r - 1),
            };
            let sizes = space_sizes(&scheme);
            rows.push(vec![
                family.to_string(),
                sizes.r.to_string(),
                fmt_count(sizes.all),
                fmt_count(sizes.cpf),
                fmt_count(sizes.linear),
                format!("{:.3}", sizes.cpf_fraction()),
            ]);
        }
    }
    print_table(
        &[
            "family",
            "r",
            "all trees",
            "CPF trees",
            "linear trees",
            "CPF fraction",
        ],
        &rows,
    );

    println!("\n# DP optimizer wall-clock (exact oracle, 20 tuples/relation)\n");
    let mut rows = Vec::new();
    for r in [4usize, 6, 8, 10] {
        let mut catalog = Catalog::new();
        let scheme = schemes::cycle(&mut catalog, r);
        let db = random_database(
            &scheme,
            &DataGenConfig {
                tuples_per_relation: 20,
                domain: 4,
                seed: 1,
                plant_witness: true,
            },
        );
        let mut cells = vec![r.to_string()];
        for space in [SearchSpace::All, SearchSpace::Cpf, SearchSpace::Linear] {
            let mut oracle = ExactOracle::new(&db);
            let start = Instant::now();
            let opt = optimize(&scheme, &mut oracle, space).expect("space nonempty");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            cells.push(format!("{:.1}ms (cost {})", ms, opt.cost));
        }
        rows.push(cells);
    }
    print_table(&["r (cycle)", "DP all", "DP CPF", "DP linear"], &rows);
}
