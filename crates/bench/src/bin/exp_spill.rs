//! `exp_spill` — the certificate-gated Grace-hash spill bakeoff.
//!
//! Skewed chain joins (`AB ⋈ BC ⋈ CD` with a four-valued join attribute,
//! so the first join is quadratic) are executed twice: fully in memory,
//! and under a deliberately tiny `mem_budget` that forces the statically
//! selected statements through the Grace-hash partition-to-disk path. The
//! headline numbers are the price of spilling (wall-clock ratio) and its
//! footprint (`mem.partitions`, `mem.spilled_bytes` from a traced run),
//! next to the static [`memory_report`] peak the gate was derived from.
//! Both runs are asserted tuple-identical before anything is timed.
//!
//! Results land in `BENCH_spill.json` at the repo root (or the path given
//! as the first CLI argument). `--check` is the CI regression gate: an
//! over-provisioned budget must produce an empty spill plan and a run
//! with no `mem.passes` counter, while a starved budget must partition
//! (`mem.partitions > 0`) and still match the in-memory rows.

use mjoin_analyze::{memory_report, AnalysisCx, MemCertificate};
use mjoin_bench::print_table;
use mjoin_core::derive;
use mjoin_program::{execute_with, ExecConfig, Program};
use mjoin_relation::{json, relation_of_ints, Catalog, Database};
use std::sync::Arc;
use std::time::Instant;

const REPS: usize = 5;

struct Workload {
    name: &'static str,
    catalog: Catalog,
    scheme: mjoin_hypergraph::DbScheme,
    db: Database,
}

/// Skewed 3-chains at two scales. `check` shrinks them for the CI gate —
/// the spill/no-spill decision is a pure function of the certificate and
/// the budget, so the gate outcome is scale-invariant.
fn workloads(check: bool) -> Vec<Workload> {
    let s = |bench: i64, gate: i64| if check { gate } else { bench };
    [("chain_skew", s(700, 48)), ("chain_skew_wide", s(1400, 64))]
        .into_iter()
        .map(|(name, n)| {
            let mut catalog = Catalog::new();
            let scheme = mjoin_hypergraph::DbScheme::parse(&mut catalog, &["AB", "BC", "CD"]);
            let ab: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % 4]).collect();
            let bc: Vec<Vec<i64>> = (0..n).map(|i| vec![i % 4, i]).collect();
            let cd: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % 3]).collect();
            let db = Database::from_relations(vec![
                rel_of(&mut catalog, "AB", &ab),
                rel_of(&mut catalog, "BC", &bc),
                rel_of(&mut catalog, "CD", &cd),
            ]);
            Workload {
                name,
                catalog,
                scheme,
                db,
            }
        })
        .collect()
}

fn rel_of(catalog: &mut Catalog, name: &str, rows: &[Vec<i64>]) -> mjoin_relation::Relation {
    let slices: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    relation_of_ints(catalog, name, &slices).expect("workload relation")
}

/// Derive the chain program and its memory certificate on the real sizes.
fn derived(w: &Workload) -> (Program, MemCertificate) {
    let tree =
        mjoin_expr::parse_join_tree(&w.catalog, &w.scheme, "(AB ⋈ BC) ⋈ CD").expect("chain tree");
    let program = derive(&w.scheme, &tree).expect("derivation").program;
    let seeds: Vec<u64> = w.db.relations().iter().map(|r| r.len() as u64).collect();
    let cx = AnalysisCx::new(&program, &w.scheme, &w.catalog).expect("analysis");
    let mem = memory_report(&cx, &seeds);
    (program, mem)
}

fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// One traced (untimed) run; returns the `mem.*` counters.
fn traced_counters(program: &Program, db: &Database, cfg: &ExecConfig) -> Vec<(String, u64)> {
    mjoin_trace::clear();
    mjoin_trace::set_enabled(true);
    {
        let out = execute_with(program, db, cfg);
        std::hint::black_box(out.result.len());
    }
    mjoin_trace::set_enabled(false);
    let trace = mjoin_trace::take();
    trace
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("mem."))
        .map(|(n, v)| (n.to_string(), *v))
        .collect()
}

struct Measurement {
    name: &'static str,
    input_tuples: usize,
    output_tuples: usize,
    peak_bytes: u64,
    budget: u64,
    spilled_stmts: usize,
    mem_ms: f64,
    spill_ms: f64,
    counters: Vec<(String, u64)>,
}

impl Measurement {
    fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    fn slowdown(&self) -> f64 {
        self.spill_ms / self.mem_ms.max(1e-6)
    }
}

/// A budget the certificate must refuse: half the largest certified
/// build side, so the gate (`build_bytes > budget`) trips on at least
/// one join while staying a plausible per-operator cap.
fn starved_budget(mem: &MemCertificate) -> u64 {
    mem.stmts
        .iter()
        .filter_map(|s| s.build_bytes)
        .max()
        .map_or(1, |b| (b / 2).max(1))
}

fn measure(w: &Workload) -> Measurement {
    let (program, mem) = derived(w);
    let budget = starved_budget(&mem);
    let plan = Arc::new(mem.spill_plan(budget));
    assert!(
        plan.any(),
        "{}: half the largest build side must force at least one spill",
        w.name
    );
    let spill_cfg = ExecConfig {
        mem_budget: Some(budget),
        spill: Some(Arc::clone(&plan)),
        ..ExecConfig::default()
    };

    // Correctness gate before any timing: spilled == in-memory.
    let baseline = execute_with(&program, &w.db, &ExecConfig::default());
    let spilled = execute_with(&program, &w.db, &spill_cfg);
    assert_eq!(
        *baseline.result, *spilled.result,
        "{}: the spilled run diverged from the in-memory run",
        w.name
    );

    for rel in w.db.relations() {
        let _ = rel.rows();
        let _ = rel.columns();
    }
    let mut mem_ms = f64::INFINITY;
    let mut spill_ms = f64::INFINITY;
    for _ in 0..REPS {
        mem_ms = mem_ms.min(time_once(&mut || {
            let out = execute_with(&program, &w.db, &ExecConfig::default());
            std::hint::black_box(out.result.len());
        }));
        spill_ms = spill_ms.min(time_once(&mut || {
            let out = execute_with(&program, &w.db, &spill_cfg);
            std::hint::black_box(out.result.len());
        }));
    }

    let counters = traced_counters(&program, &w.db, &spill_cfg);
    Measurement {
        name: w.name,
        input_tuples: w
            .db
            .relations()
            .iter()
            .map(mjoin_relation::Relation::len)
            .sum(),
        output_tuples: baseline.result.len(),
        peak_bytes: mem.peak_bytes,
        budget,
        spilled_stmts: plan.spilled_stmts(),
        mem_ms,
        spill_ms,
        counters,
    }
}

fn write_json(path: &str, ms: &[Measurement]) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"spill\",\n");
    j.push_str("  \"command\": \"cargo run --release -p mjoin-bench --bin exp_spill\",\n");
    j.push_str(&format!("  \"reps_best_of\": {REPS},\n"));
    j.push_str(
        "  \"note\": \"budget = half the largest certified build side; the spill plan is computed statically from the memory certificate, never from runtime sizes; the spilled run is asserted tuple-identical to the in-memory run before timing\",\n",
    );
    j.push_str("  \"workloads\": [\n");
    for (i, m) in ms.iter().enumerate() {
        j.push_str("    {\n");
        j.push_str(&format!("      \"name\": {},\n", json::string(m.name)));
        j.push_str(&format!("      \"input_tuples\": {},\n", m.input_tuples));
        j.push_str(&format!("      \"output_tuples\": {},\n", m.output_tuples));
        j.push_str(&format!(
            "      \"certified_peak_bytes\": {},\n",
            m.peak_bytes
        ));
        j.push_str(&format!("      \"mem_budget\": {},\n", m.budget));
        j.push_str(&format!("      \"spilled_stmts\": {},\n", m.spilled_stmts));
        j.push_str(&format!("      \"in_memory_ms\": {:.3},\n", m.mem_ms));
        j.push_str(&format!("      \"spill_ms\": {:.3},\n", m.spill_ms));
        j.push_str(&format!("      \"spill_slowdown\": {:.2},\n", m.slowdown()));
        j.push_str("      \"counters\": {");
        let cells: Vec<String> = m
            .counters
            .iter()
            .map(|(k, v)| format!("{}: {v}", json::string(k)))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("}\n");
        j.push_str(if i + 1 == ms.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    j.push_str("  ]\n}\n");
    std::fs::write(path, j).expect("write BENCH_spill.json");
}

/// CI regression gate (`--check`): the budget decides, and only the
/// budget.
///
/// * Over-provisioned (`2 × certified peak`): the spill plan is empty and
///   a run under that budget never touches the spill path — no `mem.*`
///   counter fires.
/// * Starved (half the largest certified build side): the plan is
///   non-empty, the run partitions
///   (`mem.partitions > 0`, `mem.spilled_bytes > 0`) and its rows equal
///   the in-memory run's.
fn check(ws: &[Workload]) -> bool {
    let mut ok = true;
    let mut gate = |name: &str, label: &str, cond: bool, detail: String| {
        if cond {
            println!("  ok   {name}: {label} ({detail})");
        } else {
            println!("  FAIL {name}: {label} ({detail})");
            ok = false;
        }
    };
    for w in ws {
        let (program, mem) = derived(w);
        let baseline = execute_with(&program, &w.db, &ExecConfig::default());

        let roomy = mem.peak_bytes.saturating_mul(2);
        let under_plan = mem.spill_plan(roomy);
        gate(
            w.name,
            "over-provisioned budget yields an empty spill plan",
            !under_plan.any(),
            format!("peak {} budget {roomy}", mem.peak_bytes),
        );
        let under_cfg = ExecConfig {
            mem_budget: Some(roomy),
            spill: Some(Arc::new(under_plan)),
            ..ExecConfig::default()
        };
        let under_counters = traced_counters(&program, &w.db, &under_cfg);
        gate(
            w.name,
            "under-budget run never spills",
            under_counters.is_empty(),
            format!("mem.* counters: {under_counters:?}"),
        );

        let tight = starved_budget(&mem);
        let over_plan = Arc::new(mem.spill_plan(tight));
        gate(
            w.name,
            "starved budget forces a spill plan",
            over_plan.any(),
            format!("peak {} budget {tight}", mem.peak_bytes),
        );
        let over_cfg = ExecConfig {
            mem_budget: Some(tight),
            spill: Some(Arc::clone(&over_plan)),
            ..ExecConfig::default()
        };
        let spilled = execute_with(&program, &w.db, &over_cfg);
        gate(
            w.name,
            "spilled rows equal the in-memory rows",
            *spilled.result == *baseline.result,
            format!(
                "{} vs {} tuples",
                spilled.result.len(),
                baseline.result.len()
            ),
        );
        let over_counters = traced_counters(&program, &w.db, &over_cfg);
        let partitions = over_counters
            .iter()
            .find(|(n, _)| n == "mem.partitions")
            .map_or(0, |(_, v)| *v);
        let bytes = over_counters
            .iter()
            .find(|(n, _)| n == "mem.spilled_bytes")
            .map_or(0, |(_, v)| *v);
        gate(
            w.name,
            "over-budget run actually partitions",
            partitions > 0 && bytes > 0,
            format!("mem.partitions {partitions}, mem.spilled_bytes {bytes}"),
        );
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        let ws = workloads(true);
        println!("exp_spill --check: {} workloads\n", ws.len());
        if check(&ws) {
            println!("\ncheck: the budget gate held on both sides");
            return;
        }
        eprintln!("\ncheck: spill gating regressed (see FAIL lines above)");
        std::process::exit(1);
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_spill.json".into());
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        eprintln!("exp_spill: cannot open output path {path}: {e}");
        std::process::exit(1);
    }
    println!("exp_spill: best of {REPS}\n");

    let ws = workloads(false);
    let measurements: Vec<Measurement> = ws
        .iter()
        .map(|w| {
            println!("running {} ...", w.name);
            measure(w)
        })
        .collect();

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.input_tuples.to_string(),
                m.output_tuples.to_string(),
                m.peak_bytes.to_string(),
                m.budget.to_string(),
                m.spilled_stmts.to_string(),
                m.counter("mem.partitions").to_string(),
                m.counter("mem.spilled_bytes").to_string(),
                format!("{:.1}", m.mem_ms),
                format!("{:.1}", m.spill_ms),
                format!("{:.2}×", m.slowdown()),
            ]
        })
        .collect();
    println!();
    print_table(
        &[
            "workload", "input", "output", "peak B", "budget", "spilled", "parts", "bytes",
            "mem ms", "spill ms", "slowdown",
        ],
        &rows,
    );

    write_json(&path, &measurements);
    println!("\nwrote {path}");
}
