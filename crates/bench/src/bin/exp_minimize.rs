//! `exp_minimize` — what compiling the query *core* buys at execution time.
//!
//! Four [`PlantedRedundancy`] chain queries (known core size, closed-form
//! output and full-join sizes) are executed through the CQ pipeline twice —
//! `minimize: off` (the literal body) and `minimize: on` (the
//! Chandra–Merlin core, proof-checked both ways before the rewrite is
//! accepted) — with the `auto` executor, so every run also reports the
//! AGM-vs-certificate selection it made.
//!
//! Each planted atom multiplies the materialized pre-projection join by the
//! data's fanout `f`, so the minimized run does strictly less work while —
//! by Chandra–Merlin equivalence — producing the *same answers*, which the
//! harness asserts against the workload's closed form before timing.
//! `chain4_plus0` is the control: already its own core, minimization must
//! be a no-op at identical bounds.
//!
//! Results land in `BENCH_minimize.json` at the repo root (or the path
//! given as the first CLI argument). `--check` is the CI regression gate:
//! on shrunken instances it asserts every planted query folds to its known
//! core with a verified proof, both runs agree with the closed-form output,
//! the executor routing is identical pre/post minimization, the AGM and
//! certificate bounds never increase (and strictly shrink on the
//! multi-planted workloads, where the fractional cover provably tightens),
//! and the minimized run is measurably faster on those same workloads.

use mjoin_bench::print_table;
use mjoin_cq::{
    execute_query_with, minimize, ComponentDecision, ExecOptions, ExecutorKind, PlanStrategy,
    QueryResult,
};
use mjoin_relation::json;
use mjoin_workloads::PlantedRedundancy;
use std::time::Instant;

const REPS: usize = 5;

/// Minimum speedup the CI gate demands of the minimized run on workloads
/// with at least two planted atoms (where the full-join blowup is ≥ f² = 9×;
/// the margin leaves generous room for shared-host jitter).
const GATE_SPEEDUP: f64 = 1.15;

struct Workload {
    name: &'static str,
    w: PlantedRedundancy,
}

/// Bench workloads; `check` shrinks the domain for the CI gate (the fold
/// structure, bounds, and row-blowup *ratios* are scale-invariant).
fn workloads(check: bool) -> Vec<Workload> {
    let s = |bench: u64, gate: u64| if check { gate } else { bench };
    vec![
        Workload {
            name: "chain3_plus2",
            w: PlantedRedundancy::new(3, 2, s(3000, 400), 3),
        },
        Workload {
            name: "chain2_plus3",
            w: PlantedRedundancy::new(2, 3, s(4000, 500), 3),
        },
        Workload {
            name: "chain4_plus1",
            w: PlantedRedundancy::new(4, 1, s(800, 150), 3),
        },
        Workload {
            name: "chain4_plus0",
            w: PlantedRedundancy::new(4, 0, s(800, 150), 3),
        },
    ]
}

fn opts(minimize: bool) -> ExecOptions {
    ExecOptions {
        executor: ExecutorKind::Auto,
        minimize,
        ..Default::default()
    }
}

struct Measurement {
    name: &'static str,
    atoms: usize,
    core_atoms: usize,
    dropped: usize,
    relation_tuples: u64,
    output_tuples: u64,
    full_rows_off: u64,
    full_rows_on: u64,
    agm_before: u64,
    agm_after: u64,
    cert_off: u64,
    cert_on: u64,
    routed_off: String,
    routed_on: String,
    off_ms: f64,
    on_ms: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.off_ms / self.on_ms
    }
}

fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Executor names per component, in component order.
fn routing(decisions: &[ComponentDecision]) -> String {
    let names: Vec<&str> = decisions.iter().map(|d| d.executor.name()).collect();
    names.join(",")
}

/// Max certificate bound across components (single-component here, but the
/// fold keeps the harness honest if a workload ever splits).
fn cert_of(decisions: &[ComponentDecision]) -> u64 {
    decisions
        .iter()
        .filter_map(|d| d.cert_bound)
        .max()
        .unwrap_or(0)
}

fn run_both(
    w: &Workload,
) -> (
    (QueryResult, Vec<ComponentDecision>),
    (QueryResult, Vec<ComponentDecision>),
) {
    let ndb = w.w.named_database();
    let q = w.w.query();
    let off = execute_query_with(&ndb, &q, PlanStrategy::Greedy, &opts(false)).expect("off run");
    let on = execute_query_with(&ndb, &q, PlanStrategy::Greedy, &opts(true)).expect("on run");
    (off, on)
}

fn measure(wl: &Workload) -> Measurement {
    let ndb = wl.w.named_database();
    let q = wl.w.query();

    // Correctness gates before any timing: the fold reaches the known core,
    // and both runs land on the closed-form output size with equal answers.
    let m = minimize(&q);
    assert!(m.proof.verified, "{}: unverified proof", wl.name);
    assert_eq!(
        m.core.body.len(),
        wl.w.core_size(),
        "{}: core size",
        wl.name
    );
    let ((res_off, dec_off), (res_on, dec_on)) = run_both(wl);
    for (label, res) in [("off", &res_off), ("on", &res_on)] {
        assert_eq!(
            res.len() as u64,
            wl.w.expected_output_size(),
            "{}: minimize={label} output departs from the closed form",
            wl.name
        );
    }
    let mut rows_off = res_off.rows_in_head_order();
    let mut rows_on = res_on.rows_in_head_order();
    rows_off.sort();
    rows_on.sort();
    assert_eq!(rows_off, rows_on, "{}: answers diverged", wl.name);

    let summary = res_on.minimize.as_ref().expect("summary when minimizing");

    // Interleave the two configurations round-robin across reps (shared
    // hosts bias whatever runs last), keep each one's best rep.
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    for _ in 0..REPS {
        off_ms = off_ms.min(time_once(&mut || {
            let (res, _) =
                execute_query_with(&ndb, &q, PlanStrategy::Greedy, &opts(false)).expect("off");
            std::hint::black_box(res.len());
        }));
        on_ms = on_ms.min(time_once(&mut || {
            let (res, _) =
                execute_query_with(&ndb, &q, PlanStrategy::Greedy, &opts(true)).expect("on");
            std::hint::black_box(res.len());
        }));
    }

    Measurement {
        name: wl.name,
        atoms: wl.w.total_atoms(),
        core_atoms: wl.w.core_size(),
        dropped: summary.dropped.len(),
        relation_tuples: wl.w.relation_size(),
        output_tuples: wl.w.expected_output_size(),
        full_rows_off: wl.w.expected_full_join_rows(false),
        full_rows_on: wl.w.expected_full_join_rows(true),
        agm_before: summary.agm_before,
        agm_after: summary.agm_after,
        cert_off: cert_of(&dec_off),
        cert_on: cert_of(&dec_on),
        routed_off: routing(&dec_off),
        routed_on: routing(&dec_on),
        off_ms,
        on_ms,
    }
}

fn write_json(path: &str, ms: &[Measurement]) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"minimize\",\n");
    j.push_str("  \"command\": \"cargo run --release -p mjoin-bench --bin exp_minimize\",\n");
    j.push_str(&format!("  \"reps_best_of\": {REPS},\n"));
    j.push_str(
        "  \"note\": \"off/on = ExecOptions.minimize; both runs are asserted equal to the \
         workload's closed-form output before timing; agm/cert bounds are the compile stage's \
         pre/post-minimization AGM bound and the auto selector's Theorem-2 certificate; \
         full_rows is the closed-form pre-projection join size each run materializes\",\n",
    );
    j.push_str("  \"workloads\": [\n");
    for (i, m) in ms.iter().enumerate() {
        j.push_str("    {\n");
        j.push_str(&format!("      \"name\": {},\n", json::string(m.name)));
        j.push_str(&format!("      \"atoms\": {},\n", m.atoms));
        j.push_str(&format!("      \"core_atoms\": {},\n", m.core_atoms));
        j.push_str(&format!("      \"dropped\": {},\n", m.dropped));
        j.push_str(&format!(
            "      \"relation_tuples\": {},\n",
            m.relation_tuples
        ));
        j.push_str(&format!("      \"output_tuples\": {},\n", m.output_tuples));
        j.push_str(&format!("      \"full_rows_off\": {},\n", m.full_rows_off));
        j.push_str(&format!("      \"full_rows_on\": {},\n", m.full_rows_on));
        j.push_str(&format!("      \"agm_before\": {},\n", m.agm_before));
        j.push_str(&format!("      \"agm_after\": {},\n", m.agm_after));
        j.push_str(&format!("      \"cert_off\": {},\n", m.cert_off));
        j.push_str(&format!("      \"cert_on\": {},\n", m.cert_on));
        j.push_str(&format!(
            "      \"routed_off\": {},\n",
            json::string(&m.routed_off)
        ));
        j.push_str(&format!(
            "      \"routed_on\": {},\n",
            json::string(&m.routed_on)
        ));
        j.push_str(&format!("      \"off_ms\": {:.3},\n", m.off_ms));
        j.push_str(&format!("      \"on_ms\": {:.3},\n", m.on_ms));
        j.push_str(&format!("      \"speedup\": {:.2}\n", m.speedup()));
        j.push_str(if i + 1 == ms.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    j.push_str("  ]\n}\n");
    std::fs::write(path, j).expect("write BENCH_minimize.json");
}

/// CI regression gate (`--check`): the invariants that define the feature,
/// on small instances.
fn check_gate(ws: &[Workload]) -> bool {
    let mut ok = true;
    let mut check = |name: &str, label: &str, cond: bool, detail: String| {
        if cond {
            println!("  ok   {name}: {label} ({detail})");
        } else {
            println!("  FAIL {name}: {label} ({detail})");
            ok = false;
        }
    };
    for wl in ws {
        let m = measure(wl);
        let planted = wl.w.planted;
        check(
            m.name,
            "fold reaches the known core with a verified proof",
            m.core_atoms == wl.w.core_size(),
            format!("{} -> {} atoms", m.atoms, m.core_atoms),
        );
        check(
            m.name,
            "routing identical pre/post minimization",
            m.routed_off == m.routed_on,
            format!("off [{}] on [{}]", m.routed_off, m.routed_on),
        );
        check(
            m.name,
            "AGM bound never increases",
            m.agm_after <= m.agm_before,
            format!("{} -> {}", m.agm_before, m.agm_after),
        );
        check(
            m.name,
            "certificate bound never increases",
            m.cert_on <= m.cert_off,
            format!("{} -> {}", m.cert_off, m.cert_on),
        );
        if planted > 0 {
            check(
                m.name,
                "every planted atom folds away",
                m.dropped == planted,
                format!("{} dropped of {planted} planted", m.dropped),
            );
        } else {
            check(
                m.name,
                "no-op on a query that is its own core",
                m.agm_after == m.agm_before && m.cert_on == m.cert_off,
                format!("agm {} cert {}", m.agm_after, m.cert_on),
            );
        }
        if planted >= 2 {
            // A single planted atom need not tighten the AGM bound: its
            // fresh variable forces cover weight 1 on it, but that weight
            // also absorbs the anchor vertex's demand and can free a chain
            // edge exactly. With two or more (sequentially anchored)
            // planted atoms, at most one edge is freed per shared anchor
            // pair, so the pre-minimization cover is strictly heavier.
            check(
                m.name,
                "AGM bound strictly shrinks with multiple planted atoms",
                m.agm_after < m.agm_before,
                format!("{} -> {}", m.agm_before, m.agm_after),
            );
            check(
                m.name,
                "minimized run measurably faster",
                m.on_ms * GATE_SPEEDUP <= m.off_ms,
                format!(
                    "off {:.1} ms, on {:.1} ms ({:.2}x)",
                    m.off_ms,
                    m.on_ms,
                    m.speedup()
                ),
            );
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        let ws = workloads(true);
        println!("exp_minimize --check: {} workloads\n", ws.len());
        if check_gate(&ws) {
            println!("\ncheck: all minimization expectations held");
            return;
        }
        eprintln!("\ncheck: core minimization regressed (see FAIL lines above)");
        std::process::exit(1);
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_minimize.json".into());
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        eprintln!("exp_minimize: cannot open output path {path}: {e}");
        std::process::exit(1);
    }
    println!("exp_minimize: best of {REPS}\n");

    let ws = workloads(false);
    let measurements: Vec<Measurement> = ws
        .iter()
        .map(|wl| {
            println!("running {} ...", wl.name);
            measure(wl)
        })
        .collect();

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{} -> {}", m.atoms, m.core_atoms),
                m.output_tuples.to_string(),
                format!("{} -> {}", m.full_rows_off, m.full_rows_on),
                format!("{} -> {}", m.agm_before, m.agm_after),
                format!("{} -> {}", m.cert_off, m.cert_on),
                m.routed_on.clone(),
                format!("{:.1}", m.off_ms),
                format!("{:.1}", m.on_ms),
                format!("{:.2}×", m.speedup()),
            ]
        })
        .collect();
    println!();
    print_table(
        &[
            "workload",
            "atoms",
            "output",
            "full rows",
            "agm",
            "cert",
            "routed",
            "off ms",
            "on ms",
            "speedup",
        ],
        &rows,
    );

    write_json(&path, &measurements);
    println!("\nwrote {path}");
}
