//! **E1 — Example 3 / Example 6: the cost separation table.**
//!
//! For each scale (the paper's `k`, i.e. `m = 10^k`, plus intermediate `m`
//! values) print the §2.3 cost of:
//!
//! * the optimal join expression (the non-CPF bowtie) — paper: `< 10^(4k+1)`;
//! * the cheapest CPF join expression — paper: `> 2·10^(5k)`;
//! * the cheapest linear join expression — paper: `> 2·10^(5k)`;
//! * the program derived by Algorithms 1+2 from the optimal tree — paper
//!   (Example 6): `< 2·10^(4k)`-order.
//!
//! Expression costs are closed-form (validated against execution in the test
//! suite); the program cost is *measured* by execution where the data fits
//! in memory (`m ≤ 40` here) and the Theorem 2 bound is shown alongside.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e1
//! ```

use mjoin_bench::fmt_count;
use mjoin_core::{run_pipeline, FirstChoice};
use mjoin_relation::Catalog;
use mjoin_workloads::Example3;

fn main() {
    println!("# E1: Example 3 cost separation (paper §2.3 Example 3, §3 Example 6)\n");

    let mut rows: Vec<Vec<String>> = Vec::new();
    for &m in &[5u64, 10, 20, 40, 100, 1000, 10000] {
        let ex = Example3::new(m);
        let mut catalog = Catalog::new();
        let scheme = Example3::scheme(&mut catalog);

        let optimal = ex.min_overall_cost(&scheme);
        let cpf = ex.min_cpf_cost(&scheme);
        let linear = ex.min_linear_cost(&scheme);

        // Measured program cost where the database is materializable.
        let (program, bound) = if m <= 40 {
            let db = ex.database(&mut catalog);
            let run = run_pipeline(&scheme, &Example3::optimal_tree(), &db, &mut FirstChoice)
                .expect("pipeline runs");
            assert_eq!(run.exec.result.len(), 1);
            assert!(run.bound_holds());
            (
                fmt_count(run.program_cost() as u128),
                fmt_count(run.quasi_factor as u128 * run.tree_cost as u128),
            )
        } else {
            ("(too large)".to_string(), fmt_count(52 * optimal))
        };

        rows.push(vec![
            m.to_string(),
            fmt_count(optimal),
            fmt_count(cpf),
            fmt_count(linear),
            program,
            bound,
            format!("{:.1}x", cpf as f64 / optimal as f64),
        ]);
    }
    mjoin_bench::print_table(
        &[
            "m",
            "optimal (non-CPF)",
            "best CPF expr",
            "best linear expr",
            "program P (measured)",
            "Thm2 bound r(a+5)cost(T1)",
            "CPF/opt",
        ],
        &rows,
    );

    println!("\n## Paper's stated bounds (m = 10^k)\n");
    let mut rows = Vec::new();
    for k in 1..=4u32 {
        let ex = Example3::for_k(k);
        let mut catalog = Catalog::new();
        let scheme = Example3::scheme(&mut catalog);
        let optimal = ex.optimal_cost(&scheme);
        let cpf = ex.min_cpf_cost(&scheme);
        let lin = ex.min_linear_cost(&scheme);
        rows.push(vec![
            k.to_string(),
            format!(
                "{} < {}  [{}]",
                fmt_count(optimal),
                fmt_count(ex.paper_optimal_bound()),
                ok(optimal < ex.paper_optimal_bound())
            ),
            format!(
                "{} > {}  [{}]",
                fmt_count(cpf),
                fmt_count(ex.paper_cpf_lower_bound()),
                ok(cpf > ex.paper_cpf_lower_bound())
            ),
            format!(
                "{} > {}  [{}]",
                fmt_count(lin),
                fmt_count(ex.paper_cpf_lower_bound()),
                ok(lin > ex.paper_cpf_lower_bound())
            ),
        ]);
    }
    mjoin_bench::print_table(
        &[
            "k",
            "optimal < 10^(4k+1)",
            "CPF > 2*10^(5k)",
            "linear > 2*10^(5k)",
        ],
        &rows,
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "VIOLATED"
    }
}
