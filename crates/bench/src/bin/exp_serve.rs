//! Experiment S: resident-server warm-vs-cold on a hub-and-spoke reducer.
//!
//! The protocol-level analog of `exp_par`'s `hub_fanout_reducer`: a wide
//! hub relation `AB`, nine spokes `BC`…`BK` hanging off the same key `B`,
//! and a full-reducer-style program — every spoke semijoined by the hub
//! (one shared build-side index serves the whole width-9 level), the
//! surviving keys intersected down a chain, the hub folded back. (The
//! in-process workload's `C0`…`C9` spoke attributes can't round-trip the
//! single-char text notation, so the spokes here use attributes `C`…`K`.)
//!
//! One server process keeps the catalog, the compiled program, and the
//! index cache resident. Session 1 pays the cold cost: TSV parse, program
//! compile, and the hub's build table. Sessions 2…N reconnect fresh — as
//! a new client would — and only pay probes: the admission check is
//! arithmetic, the catalog is warm, and every spoke reduction hits the
//! cached hub index through the structural-fingerprint fallback (each run
//! re-wraps relations in fresh `Arc`s, so pointer identity never
//! matches).
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_serve
//! ```

use mjoin_serve::{Client, ServeConfig, Server, Value};
use std::time::Instant;

const HUB_ROWS: i64 = 100_000;
const B_DOMAIN: i64 = 2_000;
const SPOKE_ROWS: i64 = 4_000;
const SPOKE_ATTRS: &[char] = &['C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K'];
const WARM_SESSIONS: usize = 5;

fn hub_tsv() -> String {
    let mut t = String::from("A\tB\n");
    for i in 0..HUB_ROWS {
        t.push_str(&format!("{i}\t{}\n", i % B_DOMAIN));
    }
    t
}

fn spoke_tsv(idx: usize, attr: char) -> String {
    let mut t = format!("B\t{attr}\n");
    for j in 0..SPOKE_ROWS {
        t.push_str(&format!("{}\t{j}\n", (j * 97 + idx as i64 * 13) % B_DOMAIN));
    }
    t
}

/// The reducer in the paper's notation: reduce every spoke by the hub,
/// project each to its hub key, intersect the keys, fold into the hub.
fn program_text() -> String {
    let mut p = String::new();
    for a in SPOKE_ATTRS {
        p.push_str(&format!("R(B{a}) := R(B{a}) ⋉ R(AB)\n"));
    }
    for (i, a) in SPOKE_ATTRS.iter().enumerate() {
        p.push_str(&format!("R(K{i}) := π_B R(B{a})\n"));
    }
    for i in 1..SPOKE_ATTRS.len() {
        p.push_str(&format!("R(K0) := R(K0) ⋈ R(K{i})\n"));
    }
    p.push_str("R(AB) := R(AB) ⋉ R(K0)\n");
    p
}

fn scheme_text() -> String {
    let mut s = String::from("AB");
    for a in SPOKE_ATTRS {
        s.push_str(&format!(",B{a}"));
    }
    s
}

fn expect_ok(resp: &Value) {
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "request failed: {}",
        resp.render()
    );
}

fn cache_counter(resp: &Value, key: &str) -> u64 {
    resp.get("cache")
        .and_then(|c| c.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn main() {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.run());

    // Session 1: cold. Loads the catalog, compiles the program, pays the
    // hub's build table.
    let t0 = Instant::now();
    let mut c = Client::connect(addr).expect("connect");
    let mut load = |name: String, tsv: String| {
        let resp = c
            .cmd(
                "load",
                &[
                    ("catalog", Value::str("hub")),
                    ("name", Value::str(name)),
                    ("tsv", Value::str(tsv)),
                ],
            )
            .expect("load");
        expect_ok(&resp);
    };
    load("hub".to_string(), hub_tsv());
    for (i, &a) in SPOKE_ATTRS.iter().enumerate() {
        load(format!("spoke_{a}"), spoke_tsv(i, a));
    }
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;

    let resp = c
        .cmd(
            "compile",
            &[
                ("catalog", Value::str("hub")),
                ("name", Value::str("reduce")),
                ("program", Value::str(program_text())),
                ("scheme", Value::str(scheme_text())),
            ],
        )
        .expect("compile");
    expect_ok(&resp);

    let run_once = |c: &mut Client| {
        let t = Instant::now();
        let resp = c
            .cmd(
                "run",
                &[
                    ("catalog", Value::str("hub")),
                    ("name", Value::str("reduce")),
                    ("tsv", Value::Bool(false)),
                ],
            )
            .expect("run");
        expect_ok(&resp);
        (t.elapsed().as_secs_f64() * 1e3, resp)
    };

    let (cold_ms, cold) = run_once(&mut c);
    let cold_hits = cache_counter(&cold, "hit");
    let cold_misses = cache_counter(&cold, "miss");
    let rows = cold.get("rows").and_then(Value::as_u64).unwrap_or(0);
    let peak = cold
        .get("certified_peak")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    // What a one-shot CLI invocation of the same request pays every time:
    // parse + load + build every index + run.
    let one_shot_ms = load_ms + cold_ms;

    println!("# Experiment S: resident server, hub_fanout reducer over the wire");
    println!(
        "hub {HUB_ROWS} rows, {} spokes x {SPOKE_ROWS} rows, result {rows} rows, certified peak {peak}",
        SPOKE_ATTRS.len()
    );
    println!("cold session: load+parse {load_ms:.1} ms + run {cold_ms:.1} ms ({cold_hits} hits / {cold_misses} misses)");

    // Sessions 2…N: fresh connections against warm state. Best of three
    // requests per session so one scheduler hiccup doesn't skew a point.
    let mut prev_hits = cold_hits;
    let mut warm_ms = Vec::new();
    for s in 0..WARM_SESSIONS {
        let mut w = Client::connect(addr).expect("reconnect");
        let (mut best, mut last) = run_once(&mut w);
        for _ in 0..2 {
            let (ms, resp) = run_once(&mut w);
            best = best.min(ms);
            last = resp;
        }
        let hits = cache_counter(&last, "hit");
        let misses = cache_counter(&last, "miss");
        assert!(
            hits > prev_hits,
            "warm session must add cache hits ({hits} vs {prev_hits})"
        );
        println!(
            "warm session {}: run {best:.2} ms ({} new hits, {misses} cumulative misses)",
            s + 2,
            hits - prev_hits
        );
        prev_hits = hits;
        warm_ms.push(best);
    }
    let best = warm_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "warm request {best:.2} ms vs one-shot equivalent {one_shot_ms:.1} ms — {:.1}x from resident state",
        one_shot_ms / best
    );

    let mut bye = Client::connect(addr).expect("reconnect");
    expect_ok(&bye.cmd("shutdown", &[]).expect("shutdown"));
    server_thread.join().expect("join").expect("server run");
}
