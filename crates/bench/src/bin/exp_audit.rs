//! **Audit — certificate-vs-measured gap distribution.**
//!
//! Every program the pipeline derives carries a per-statement symbolic cost
//! certificate (`|head| ≤ Π |⋈D[S]|`, the Theorem-2 attribution). This
//! experiment audits the exhaustive input-tree corpus over the five small
//! scheme families on random data and tabulates how loose the evaluated
//! bounds are in practice: the distribution of `bound / max(measured, 1)`
//! per statement, plus how many statements carry a tight
//! single-intermediate bound. Any measured head exceeding its bound would
//! be a kernel/scheduler/certificate bug; the run asserts there are none.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_audit
//! ```

use mjoin_analyze::audit;
use mjoin_bench::print_table;
use mjoin_core::derive;
use mjoin_expr::all_trees;
use mjoin_hypergraph::DbScheme;
use mjoin_program::ExecConfig;
use mjoin_relation::Catalog;
use mjoin_workloads::{random_database, schemes, DataGenConfig};

type SchemeBuilder = fn(&mut Catalog) -> DbScheme;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    println!("# Audit: certificate-vs-measured gap distribution\n");
    let builders: [(&str, SchemeBuilder); 5] = [
        ("chain(4)", |c| schemes::chain(c, 4)),
        ("cycle(4)", |c| schemes::cycle(c, 4)),
        ("star(3)", |c| schemes::star(c, 3)),
        ("clique(3)", |c| schemes::clique(c, 3)),
        ("random(5,7)", |c| schemes::random_connected(c, 5, 7, 3, 42)),
    ];
    let mut rows = Vec::new();
    let mut total_programs = 0usize;
    let mut total_stmts = 0usize;
    for (name, build) in builders {
        let mut c = Catalog::new();
        let s = build(&mut c);
        let db = random_database(
            &s,
            &DataGenConfig {
                tuples_per_relation: 200,
                domain: 12,
                seed: 17,
                plant_witness: true,
            },
        );
        let mut gaps: Vec<f64> = Vec::new();
        let mut tight = 0usize;
        let mut stmts = 0usize;
        let mut programs = 0usize;
        for t1 in all_trees(s.all()) {
            let d = derive(&s, &t1).expect("derivation succeeds");
            let report = audit(&d.program, &s, &c, &db, &ExecConfig::default(), None)
                .expect("derived programs validate");
            assert!(
                report.bounds_hold(),
                "{name}: measured cost exceeded a static bound — pipeline bug"
            );
            for row in &report.rows {
                gaps.push(row.gap());
                tight += usize::from(row.tight);
                stmts += 1;
            }
            programs += 1;
        }
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
        total_programs += programs;
        total_stmts += stmts;
        rows.push(vec![
            name.to_string(),
            programs.to_string(),
            stmts.to_string(),
            format!("{:.0}%", 100.0 * tight as f64 / stmts.max(1) as f64),
            format!("{:.2}", percentile(&gaps, 0.5)),
            format!("{:.2}", percentile(&gaps, 0.9)),
            format!("{:.2}", percentile(&gaps, 1.0)),
        ]);
    }
    print_table(
        &[
            "family", "programs", "stmts", "tight", "gap p50", "gap p90", "gap max",
        ],
        &rows,
    );
    println!(
        "\n{total_programs} derived programs audited ({total_stmts} statements); \
         zero measured-exceeds-bound errors."
    );
    println!("gap = evaluated bound / max(measured head tuples, 1), per statement.");
}
