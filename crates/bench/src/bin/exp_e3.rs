//! **E3 — the paper's worked figures: Examples 2, 5 and 6.**
//!
//! Regenerates the paper's structural artifacts:
//!
//! * Figure 1's tree `(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)` and its properties;
//! * Example 5: the **16** CPF trees Algorithm 1 can produce from it
//!   (printed), including Figure 2's tree;
//! * Example 6: the exact program Algorithm 2 derives from Figure 2's tree,
//!   and its measured cost on the Example 3 database
//!   (paper: `< 2·10^(4k)`).
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e3
//! ```

use mjoin_core::{algorithm1_all_outcomes, algorithm2};
use mjoin_expr::parse_join_tree;
use mjoin_program::{display, execute};
use mjoin_relation::Catalog;
use mjoin_workloads::Example3;

fn main() {
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);

    println!("# E3: the paper's worked examples\n");

    // Figure 1.
    let t1 = parse_join_tree(&catalog, &scheme, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
    println!("## Figure 1: T1 = {}", t1.display(&scheme, &catalog));
    println!(
        "   CPF? {}   linear? {}\n",
        t1.is_cpf(&scheme),
        t1.is_linear()
    );

    // Example 5.
    let outcomes = algorithm1_all_outcomes(&scheme, &t1).unwrap();
    println!(
        "## Example 5: Algorithm 1 outcomes across all nondeterministic choices: {} trees (paper: 16)",
        outcomes.len()
    );
    let fig2 = parse_join_tree(&catalog, &scheme, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
    for (i, t) in outcomes.iter().enumerate() {
        let marker = if *t == fig2 { "   <-- Figure 2" } else { "" };
        println!("  {:>2}. {}{}", i + 1, t.display(&scheme, &catalog), marker);
        assert!(t.is_cpf(&scheme));
    }
    assert_eq!(outcomes.len(), 16);
    assert!(outcomes.contains(&fig2));

    // Example 6.
    println!("\n## Example 6: the program derived from Figure 2's tree");
    let program = algorithm2(&scheme, &fig2).unwrap();
    print!("{}", display::render(&program, &scheme, &catalog));
    println!(
        "({} statements; Claim C bound r(a+5) = {})",
        program.len(),
        scheme.quasi_factor()
    );

    println!("\n## Example 6's cost claim on the Example 3 database");
    for m in [5u64, 10, 20] {
        let ex = Example3::new(m);
        let mut c2 = Catalog::new();
        let _ = Example3::scheme(&mut c2);
        let db = ex.database(&mut c2);
        let out = execute(&program, &db);
        assert_eq!(out.result.len(), 1);
        println!(
            "  m = {:>3}: cost(P(D)) = {:>10}   (paper's form 2·m^4 = {:>10}; best CPF expr = {})",
            m,
            out.cost(),
            2 * (m as u128).pow(4),
            ex.min_cpf_cost(&Example3::scheme(&mut Catalog::new())),
        );
    }
}
