//! **E9 — how often does avoiding Cartesian products actually hurt?**
//!
//! The paper's premise is that the CPF heuristic is *usually* harmless —
//! that is why optimizers use it — but can be unboundedly bad (Example 3).
//! This experiment quantifies "usually": across random schemes and
//! databases, how often is the best CPF expression exactly optimal, and
//! what is the penalty distribution when it is not? Same question for the
//! linear heuristic. Example 3 is appended as the adversarial tail.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e9 [samples]
//! ```

use mjoin_bench::print_table;
use mjoin_optimizer::{optimize, ExactOracle, SearchSpace};
use mjoin_relation::Catalog;
use mjoin_workloads::{random_database, schemes, DataGenConfig, Example3};

struct Stats {
    n: usize,
    cpf_optimal: usize,
    lin_optimal: usize,
    worst_cpf: f64,
    worst_lin: f64,
    sum_cpf: f64,
    sum_lin: f64,
}

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);

    println!("# E9: the CPF / linear penalty distribution on random inputs\n");
    let mut rows = Vec::new();
    for (label, family) in [
        ("chain r=5 (acyclic)", 0usize),
        ("cycle r=5 (cyclic)", 1),
        ("cycle r=6 (cyclic)", 2),
        ("random r=5", 3),
        ("grid 3x2 (cyclic)", 4),
        ("sparse cycle r=5", 5),
    ] {
        let mut st = Stats {
            n: 0,
            cpf_optimal: 0,
            lin_optimal: 0,
            worst_cpf: 1.0,
            worst_lin: 1.0,
            sum_cpf: 0.0,
            sum_lin: 0.0,
        };
        for seed in 0..samples {
            let mut catalog = Catalog::new();
            let scheme = match family {
                0 => schemes::chain(&mut catalog, 5),
                1 => schemes::cycle(&mut catalog, 5),
                2 => schemes::cycle(&mut catalog, 6),
                3 => schemes::random_connected(&mut catalog, 5, 7, 3, seed),
                4 => schemes::grid(&mut catalog, 3, 2),
                _ => schemes::cycle(&mut catalog, 5),
            };
            // The "sparse" family uses very selective joins (domain ≫
            // tuples), where a Cartesian product of two tiny reduced inputs
            // can occasionally beat every attribute-sharing order.
            let (tuples, domain) = if family == 5 { (8, 40) } else { (40, 6) };
            let db = random_database(
                &scheme,
                &DataGenConfig {
                    tuples_per_relation: tuples,
                    domain,
                    seed: seed.wrapping_mul(104729),
                    plant_witness: true,
                },
            );
            let mut oracle = ExactOracle::new(&db);
            let all = optimize(&scheme, &mut oracle, SearchSpace::All)
                .unwrap()
                .cost;
            let cpf = optimize(&scheme, &mut oracle, SearchSpace::Cpf)
                .unwrap()
                .cost;
            let lin = optimize(&scheme, &mut oracle, SearchSpace::Linear)
                .unwrap()
                .cost;
            let rc = cpf as f64 / all as f64;
            let rl = lin as f64 / all as f64;
            st.n += 1;
            st.cpf_optimal += (cpf == all) as usize;
            st.lin_optimal += (lin == all) as usize;
            st.worst_cpf = st.worst_cpf.max(rc);
            st.worst_lin = st.worst_lin.max(rl);
            st.sum_cpf += rc;
            st.sum_lin += rl;
        }
        rows.push(vec![
            label.to_string(),
            st.n.to_string(),
            format!("{:.0}%", 100.0 * st.cpf_optimal as f64 / st.n as f64),
            format!("{:.3} / {:.2}", st.sum_cpf / st.n as f64, st.worst_cpf),
            format!("{:.0}%", 100.0 * st.lin_optimal as f64 / st.n as f64),
            format!("{:.3} / {:.2}", st.sum_lin / st.n as f64, st.worst_lin),
        ]);
    }
    print_table(
        &[
            "scheme family",
            "samples",
            "CPF = optimal",
            "CPF mean/worst penalty",
            "linear = optimal",
            "linear mean/worst penalty",
        ],
        &rows,
    );

    println!("\n## The adversarial tail: Example 3's penalties (closed form)\n");
    let mut rows = Vec::new();
    for m in [10u64, 100, 1000] {
        let ex = Example3::new(m);
        let mut catalog = Catalog::new();
        let scheme = Example3::scheme(&mut catalog);
        let opt = ex.min_overall_cost(&scheme) as f64;
        rows.push(vec![
            format!("m = {m}"),
            format!("{:.1}x", ex.min_cpf_cost(&scheme) as f64 / opt),
            format!("{:.1}x", ex.min_linear_cost(&scheme) as f64 / opt),
        ]);
    }
    print_table(&["Example 3", "CPF penalty", "linear penalty"], &rows);
    println!(
        "\n(The random-workload penalties are small and bounded; Example 3's grow as Θ(m) — \
         unbounded. That asymmetry is exactly the paper's point, and its programs close the gap.)"
    );
}
