//! `exp_layout` — storage-layout micro-benchmark: the two primitives the
//! columnar engine rebuilt, measured in isolation, row engine vs column
//! engine.
//!
//! * **hash**: key-hashing throughput. The row path folds
//!   [`Value::stable_hash`] through [`mjoin_relation::fxhash::mix`] one
//!   `Box<[Value]>` row at a time — a pointer chase plus an enum-tag branch
//!   per cell. The columnar path ([`mjoin_relation::ops::key_hashes`]) zips
//!   the key columns' slices; interned columns fold precomputed
//!   per-dictionary-entry hashes, so string keys cost the same as integers.
//!   Both produce bit-identical hashes (asserted below before timing).
//! * **gather**: selection-vector materialization throughput. The row path
//!   clones each selected `Row`; the columnar path gathers each attribute's
//!   slice ([`Column::gather`]) — one contiguous copy per column, no
//!   per-cell `Value` construction for interned data.
//!
//! Numbers go to stdout as a table and to `BENCH_layout_micro.json` (or the
//! path given as the first CLI argument). This is the microscopic view of
//! the `layout_speedup` column `exp_par` measures end-to-end.

use mjoin_bench::print_table;
use mjoin_relation::fxhash::mix;
use mjoin_relation::ops::key_hashes;
use mjoin_relation::{Catalog, Relation, Row, Schema, Value};
use std::time::Instant;

const REPS: usize = 7;

struct Dataset {
    name: &'static str,
    rel: Relation,
    /// Canonical key positions to hash (a 2-attribute join key).
    key_pos: Vec<usize>,
}

/// `rows` tuples over `width` attributes; attribute positions in
/// `string_cols` hold strings from a 1000-value alphabet, the rest values
/// from a 1000-value integer domain — except the last position, a unique
/// measure that keeps the tuples distinct under set semantics. Key columns
/// are always the first two positions.
fn dataset(
    name: &'static str,
    c: &mut Catalog,
    width: usize,
    rows: i64,
    string_cols: &[usize],
) -> Dataset {
    let attrs: Vec<_> = (0..width)
        .map(|i| c.intern(&format!("{name}_a{i}")))
        .collect();
    let schema = Schema::new(attrs.clone());
    let tuples: Vec<Row> = (0..rows)
        .map(|i| {
            (0..width)
                .map(|j| {
                    if j + 1 == width {
                        return Value::Int(i);
                    }
                    let v = (i.wrapping_mul(2654435761 + j as i64)) % 1000;
                    if string_cols.contains(&j) {
                        Value::str(format!("k{v}"))
                    } else {
                        Value::Int(v)
                    }
                })
                .collect::<Vec<_>>()
                .into()
        })
        .collect();
    let rel = Relation::from_rows(schema.clone(), tuples).expect("dataset");
    let key_pos: Vec<usize> = attrs[..2]
        .iter()
        .map(|&id| schema.position(id).expect("interned"))
        .collect();
    Dataset { name, rel, key_pos }
}

/// Best-of-`REPS` wall time of `f`, in milliseconds.
fn best_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The row engine's key hash: the `mix`-fold of per-cell stable hashes, as
/// in `ops::hash_at`.
fn row_hash(row: &Row, positions: &[usize]) -> u64 {
    positions
        .iter()
        .fold(0u64, |acc, &p| mix(acc, row[p].stable_hash()))
}

struct Numbers {
    dataset: &'static str,
    rows: usize,
    hash_row_ms: f64,
    hash_col_ms: f64,
    gather_row_ms: f64,
    gather_col_ms: f64,
}

fn measure(d: &Dataset) -> Numbers {
    let rel = &d.rel;
    let n = rel.len();

    // Warm both physical views before timing, so neither engine pays lazy
    // materialization inside its measured region.
    let rows = rel.rows();
    let cols = rel.columns();

    // The two paths must agree bit-for-bit — that interop is what lets an
    // index built by one engine serve probes from the other.
    let colh = key_hashes(rel, &d.key_pos);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(colh[i], row_hash(row, &d.key_pos), "hash divergence at {i}");
    }

    let hash_row_ms = best_ms(|| {
        let mut acc = 0u64;
        for row in rows {
            acc ^= row_hash(row, &d.key_pos);
        }
        std::hint::black_box(acc);
    });
    let hash_col_ms = best_ms(|| {
        let h = key_hashes(rel, &d.key_pos);
        std::hint::black_box(h.len());
    });

    // Every other id: a 50% selection with no locality the prefetcher could
    // fake its way through.
    let sel: Vec<u32> = (0..n as u32).step_by(2).collect();
    let gather_row_ms = best_ms(|| {
        let picked: Vec<Row> = sel.iter().map(|&i| rows[i as usize].clone()).collect();
        std::hint::black_box(picked.len());
    });
    let gather_col_ms = best_ms(|| {
        let picked: Vec<_> = cols.iter().map(|c| c.gather(&sel)).collect();
        std::hint::black_box(picked.len());
    });

    Numbers {
        dataset: d.name,
        rows: n,
        hash_row_ms,
        hash_col_ms,
        gather_row_ms,
        gather_col_ms,
    }
}

/// Million rows per second at `ms` milliseconds for `rows` rows.
fn mrps(rows: usize, ms: f64) -> f64 {
    rows as f64 / ms / 1e3
}

fn write_json(path: &str, host_parallelism: usize, ns: &[Numbers]) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"layout_micro\",\n");
    j.push_str("  \"command\": \"cargo run --release -p mjoin-bench --bin exp_layout\",\n");
    j.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    j.push_str(&format!("  \"reps_best_of\": {REPS},\n"));
    j.push_str(
        "  \"note\": \"single-threaded primitive throughput; hash = 2-attribute key hash over all rows, gather = 50% selection materialized; row and columnar hashes asserted bit-identical before timing\",\n",
    );
    j.push_str("  \"datasets\": [\n");
    for (i, m) in ns.iter().enumerate() {
        j.push_str("    {\n");
        j.push_str(&format!("      \"name\": \"{}\",\n", m.dataset));
        j.push_str(&format!("      \"rows\": {},\n", m.rows));
        j.push_str(&format!(
            "      \"hash_row_ms\": {:.3}, \"hash_columnar_ms\": {:.3}, \"hash_speedup\": {:.2},\n",
            m.hash_row_ms,
            m.hash_col_ms,
            m.hash_row_ms / m.hash_col_ms
        ));
        j.push_str(&format!(
            "      \"gather_row_ms\": {:.3}, \"gather_columnar_ms\": {:.3}, \"gather_speedup\": {:.2}\n",
            m.gather_row_ms,
            m.gather_col_ms,
            m.gather_row_ms / m.gather_col_ms
        ));
        j.push_str(if i + 1 == ns.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    j.push_str("  ]\n}\n");
    std::fs::write(path, j).expect("write BENCH_layout_micro.json");
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_layout_micro.json".into());
    let host_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("exp_layout: best of {REPS}, single-threaded primitives\n");

    let mut c = Catalog::new();
    let datasets = [
        // The narrow all-int case: the row layout's best footing.
        dataset("narrow_int_w2", &mut c, 2, 1_000_000, &[]),
        // A wide all-int tuple: 12 attributes, key = 2 of them.
        dataset("wide_int_w12", &mut c, 12, 500_000, &[]),
        // Wide with interned string keys: the row path re-hashes string
        // bytes per occurrence, the column path folds dictionary hashes.
        dataset("wide_str_w12", &mut c, 12, 500_000, &[0, 1, 5]),
    ];

    let numbers: Vec<Numbers> = datasets
        .iter()
        .map(|d| {
            println!("running {} ...", d.name);
            measure(d)
        })
        .collect();

    let mut rows = Vec::new();
    for m in &numbers {
        rows.push(vec![
            m.dataset.to_string(),
            m.rows.to_string(),
            format!("{:.1}", mrps(m.rows, m.hash_row_ms)),
            format!("{:.1}", mrps(m.rows, m.hash_col_ms)),
            format!("{:.2}×", m.hash_row_ms / m.hash_col_ms),
            format!("{:.1}", mrps(m.rows / 2, m.gather_row_ms)),
            format!("{:.1}", mrps(m.rows / 2, m.gather_col_ms)),
            format!("{:.2}×", m.gather_row_ms / m.gather_col_ms),
        ]);
    }
    println!();
    print_table(
        &[
            "dataset",
            "rows",
            "hash row Mr/s",
            "hash col Mr/s",
            "hash speedup",
            "gather row Mr/s",
            "gather col Mr/s",
            "gather speedup",
        ],
        &rows,
    );

    write_json(&path, host_parallelism, &numbers);
    println!("\nwrote {path}");
}
