//! `exp_par` — the parallel zero-copy executor benchmark.
//!
//! Runs three program workloads — Example 3, a star schema, and a cycle-gap
//! family member — through:
//!
//! * the **seed baseline**: deep-clone registers + sequential operators
//!   ([`mjoin_bench::baseline::execute_deep_clone`]), i.e. the interpreter
//!   exactly as it stood before this change; and
//! * the **new executor**: `Arc`-shared registers, DAG-levelled statement
//!   scheduling, and pool-partitioned operators
//!   (`mjoin_program::execute_parallel`) at 1, 2, 4 and 8 threads.
//!
//! Every run is checked for result equality against the baseline before its
//! time is accepted. Results land in `BENCH_parallel_exec.json` at the repo
//! root (or the path given as the first CLI argument), with the host's true
//! parallelism recorded so single-core CI numbers read honestly: on a 1-CPU
//! host the speedup is the zero-copy/allocation win, not core scaling.

use mjoin_bench::baseline::execute_deep_clone;
use mjoin_bench::print_table;
use mjoin_core::derive;
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_program::{
    execute_parallel, execute_with, schedule, ExecConfig, Program, ProgramBuilder, Reg,
};
use mjoin_relation::ops::{set_layout, Layout};
use mjoin_relation::{json, Catalog, Database};
use mjoin_workloads::{star_schema, CycleGap, Example3, StarSchemaConfig};
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

struct Workload {
    name: &'static str,
    db: Database,
    program: Program,
}

fn left_deep(n: usize) -> JoinTree {
    let mut t = JoinTree::leaf(0);
    for i in 1..n {
        t = JoinTree::join(t, JoinTree::leaf(i));
    }
    t
}

fn derived(name: &'static str, scheme: &DbScheme, db: Database, t1: &JoinTree) -> Workload {
    let program = derive(scheme, t1).expect("derivation").program;
    Workload { name, db, program }
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();

    // Example 3 (the paper's adversarial cycle), scaled until the derived
    // program moves ~10⁵ tuples per statement.
    {
        let mut c = Catalog::new();
        let ex = Example3::new(30);
        let scheme = Example3::scheme(&mut c);
        let db = ex.database(&mut c);
        out.push(derived(
            "example3_m30",
            &scheme,
            db,
            &Example3::optimal_tree(),
        ));
    }

    // Star schema: acyclic, so Algorithm 2 emits a full-reducer semijoin
    // program — reads of the big fact relation dominate, the worst case for
    // deep-clone registers.
    let star = {
        let mut c = Catalog::new();
        let cfg = StarSchemaConfig {
            dimensions: 6,
            fact_rows: 60_000,
            dim_rows: 2_000,
            key_coverage: 1.0,
            skew: 0.0,
            seed: 42,
        };
        let (scheme, db) = star_schema(&mut c, &cfg);
        let n = scheme.num_relations();
        out.push(derived("star_d6_f60k", &scheme, db.clone(), &left_deep(n)));
        (scheme, db)
    };

    // The wide-tuple star: an 11-dimension star whose fact relation carries
    // 12 attributes. Row-major storage is at its worst here — every key
    // hash walks a 12-cell `Box<[Value]>` of enum tags to reach one cell,
    // while the columnar engine touches exactly the key column's `i64`
    // slice. This is the headline workload for the `layout_speedup` column.
    {
        let mut c = Catalog::new();
        let cfg = StarSchemaConfig {
            dimensions: 11,
            fact_rows: 40_000,
            dim_rows: 1_500,
            key_coverage: 1.0,
            skew: 0.0,
            seed: 7,
        };
        let (scheme, db) = star_schema(&mut c, &cfg);
        let n = scheme.num_relations();
        out.push(derived("star_wide", &scheme, db, &left_deep(n)));
    }

    // Cycle-gap: a cyclic scheme with one weak edge, sized likewise.
    {
        let mut c = Catalog::new();
        let cg = CycleGap::new(6, 40);
        let scheme = cg.scheme(&mut c);
        let db = cg.database(&mut c);
        let n = scheme.num_relations();
        out.push(derived("cycle_gap_n6_m40", &scheme, db, &left_deep(n)));
    }

    // Algorithm 2's programs are serial chains (schedule width 1), so the
    // three workloads above never hand the DAG scheduler an actually-wide
    // level. This hand-built star program does: one independent key
    // projection per dimension (a width-6 level), then the semijoin
    // reductions of the fact by each projected key set.
    {
        let (scheme, db) = star;
        let d = scheme.num_relations() - 1;
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        let keys: Vec<Reg> = (0..d)
            .map(|i| {
                let dim = Reg::Base(1 + i);
                let key_attrs = scheme.attrs_of(0).intersect(scheme.attrs_of(1 + i));
                let x = b.new_temp(format!("K{i}"));
                b.project(x, dim, key_attrs);
                x
            })
            .collect();
        for x in keys {
            b.semijoin(v, x);
        }
        let program = b.finish(v);
        out.push(Workload {
            name: "star_wide_reducer",
            db,
            program,
        });
    }

    // The register-traffic stress: a wide (12-attribute) 150k-row relation
    // swept by ten single-attribute semijoin filters that never shrink it.
    // Each statement's operator work is one cheap probe per tuple, but the
    // seed interpreter also deep-copies all 150k wide rows per read — the
    // access pattern the Arc registers eliminate outright.
    {
        use mjoin_relation::{Relation, Row, Schema, Value};
        let mut c = Catalog::new();
        const WIDTH: usize = 12;
        const ROWS: i64 = 150_000;
        const FILTERS: usize = 10;
        let attrs: Vec<_> = (0..WIDTH).map(|i| c.intern(&format!("a{i}"))).collect();
        let base_schema = Schema::new(attrs.clone());
        let rows: Vec<Row> = (0..ROWS)
            .map(|i| {
                (0..WIDTH as i64)
                    .map(|j| Value::Int(if j == 0 { i } else { (i * 31 + j) % 1000 }))
                    .collect::<Vec<_>>()
                    .into()
            })
            .collect();
        let base = Relation::from_rows(base_schema.clone(), rows).unwrap();
        // Filter i covers attribute a_{1+i}'s full value range, so V's
        // 150k tuples all survive every statement.
        let filters: Vec<Relation> = (0..FILTERS)
            .map(|i| {
                let schema = Schema::new(vec![attrs[1 + i]]);
                let rows: Vec<Row> = (0..1000).map(|v| vec![Value::Int(v)].into()).collect();
                Relation::from_rows(schema, rows).unwrap()
            })
            .collect();
        let mut rels = vec![base];
        rels.extend(filters);
        let scheme =
            DbScheme::from_schemas(&rels.iter().map(|r| r.schema().clone()).collect::<Vec<_>>());
        let db = Database::from_relations(rels);

        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        for i in 0..FILTERS {
            b.semijoin(v, Reg::Base(1 + i));
        }
        let program = b.finish(v);
        out.push(Workload {
            name: "wide_filter_sweep",
            db,
            program,
        });
    }

    // Selective fan-out probes: twelve independent joins of tiny key lists
    // against one wide 300k-row base — the point-lookup access pattern. The
    // outputs are ~100 rows each, so the operator work is one hash-probe
    // miss per base tuple and the seed interpreter's deep clone of the wide
    // base is the dominant cost by far. The twelve probes are mutually
    // independent, giving the scheduler a width-12 level.
    {
        use mjoin_relation::{Relation, Row, Schema, Value};
        let mut c = Catalog::new();
        const WIDTH: usize = 16;
        const ROWS: i64 = 300_000;
        const PROBES: usize = 12;
        const HITS: i64 = 100;
        let attrs: Vec<_> = (0..WIDTH).map(|i| c.intern(&format!("a{i}"))).collect();
        let base_schema = Schema::new(attrs.clone());
        let rows: Vec<Row> = (0..ROWS)
            .map(|i| {
                (0..WIDTH as i64)
                    .map(|j| Value::Int(if j == 0 { i } else { i * 17 + j }))
                    .collect::<Vec<_>>()
                    .into()
            })
            .collect();
        let base = Relation::from_rows(base_schema, rows).unwrap();
        let probes: Vec<Relation> = (0..PROBES as i64)
            .map(|i| {
                let b_attr = c.intern(&format!("b{i}"));
                let schema = Schema::new(vec![attrs[0], b_attr]);
                let rows: Vec<Row> = (0..HITS)
                    .map(|j| vec![Value::Int((i * 1009 + j * 2003) % ROWS), Value::Int(j)].into())
                    .collect();
                Relation::from_rows(schema, rows).unwrap()
            })
            .collect();
        let mut rels = vec![base];
        rels.extend(probes);
        let scheme =
            DbScheme::from_schemas(&rels.iter().map(|r| r.schema().clone()).collect::<Vec<_>>());
        let db = Database::from_relations(rels);

        let mut b = ProgramBuilder::new(&scheme);
        let hits: Vec<Reg> = (0..PROBES)
            .map(|i| {
                let w = b.new_temp(format!("W{i}"));
                b.join(w, Reg::Base(0), Reg::Base(1 + i));
                w
            })
            .collect();
        for i in 1..PROBES {
            b.join(hits[0], hits[0], hits[i]);
        }
        let program = b.finish(hits[0]);
        out.push(Workload {
            name: "selective_probe_fanout",
            db,
            program,
        });
    }

    // The join-index-cache showcase: a full-reducer-style program over a
    // hub-and-spoke scheme. Ten spokes are each reduced by the same 150k-row
    // hub at the same key — one shared hub index serves the whole width-10
    // level — then the spokes' projected keys are intersected down a deep
    // chain and folded back into the hub. Without the cache every spoke
    // reduction rebuilds the hub's build table from scratch.
    {
        use mjoin_relation::{Relation, Row, Schema, Value};
        let mut c = Catalog::new();
        const HUB_ROWS: i64 = 150_000;
        const B_DOMAIN: i64 = 3_000;
        const SPOKES: usize = 10;
        const SPOKE_ROWS: i64 = 6_000;
        let a = c.intern("A");
        let b_attr = c.intern("B");
        let hub_rows: Vec<Row> = (0..HUB_ROWS)
            .map(|i| vec![Value::Int(i), Value::Int(i % B_DOMAIN)].into())
            .collect();
        let hub = Relation::from_rows(Schema::new(vec![a, b_attr]), hub_rows).unwrap();
        let spokes: Vec<Relation> = (0..SPOKES as i64)
            .map(|i| {
                let ci = c.intern(&format!("C{i}"));
                let rows: Vec<Row> = (0..SPOKE_ROWS)
                    .map(|j| vec![Value::Int((j * 97 + i * 13) % B_DOMAIN), Value::Int(j)].into())
                    .collect();
                Relation::from_rows(Schema::new(vec![b_attr, ci]), rows).unwrap()
            })
            .collect();
        let mut rels = vec![hub];
        rels.extend(spokes);
        let scheme =
            DbScheme::from_schemas(&rels.iter().map(|r| r.schema().clone()).collect::<Vec<_>>());
        let db = Database::from_relations(rels);

        let mut b = ProgramBuilder::new(&scheme);
        // Width-10 level: every spoke reduced by the hub — one shared index.
        for i in 0..SPOKES {
            b.semijoin(Reg::Base(1 + i), Reg::Base(0));
        }
        // Each spoke's surviving hub keys…
        let keys: Vec<Reg> = (0..SPOKES)
            .map(|i| {
                let key_attrs = scheme.attrs_of(0).intersect(scheme.attrs_of(1 + i));
                let x = b.new_temp(format!("K{i}"));
                b.project(x, Reg::Base(1 + i), key_attrs);
                x
            })
            .collect();
        // …intersected down a deep chain (same-schema join = intersection)…
        for i in 1..SPOKES {
            b.join(keys[0], keys[0], keys[i]);
        }
        // …and folded back into the hub.
        b.semijoin(Reg::Base(0), keys[0]);
        let program = b.finish(Reg::Base(0));
        out.push(Workload {
            name: "hub_fanout_reducer",
            db,
            program,
        });
    }

    out
}

/// One timed call of `f`, in milliseconds.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

struct Measurement {
    name: &'static str,
    relations: usize,
    input_tuples: usize,
    stmts: usize,
    schedule_depth: usize,
    schedule_width: usize,
    result_tuples: usize,
    baseline_ms: f64,
    /// Parallel executor under the columnar engine (the default layout).
    parallel_ms: Vec<(usize, f64)>,
    /// Same executor, same thread counts, forced onto the row engine
    /// (`Layout::Row`): isolates the storage-layout win from everything else.
    row_layout_ms: Vec<(usize, f64)>,
    /// Same executor with the join-index cache disabled: the pre-cache path.
    parallel_nocache_ms: Vec<(usize, f64)>,
    /// Aggregated spans from one traced (untimed) parallel run: key is
    /// `name[strategy]`, value is `(calls, total_ms)`.
    trace_ops: Vec<(String, u64, f64)>,
    /// Counters from the same traced run (pool and scheduler metrics).
    trace_counters: Vec<(String, u64)>,
}

impl Measurement {
    fn speedup_at(&self, threads: usize) -> f64 {
        let t = self
            .parallel_ms
            .iter()
            .find(|(n, _)| *n == threads)
            .map_or(f64::INFINITY, |(_, ms)| *ms);
        self.baseline_ms / t
    }

    /// row-engine ms / columnar-engine ms at the same thread count: the
    /// storage-layout win in isolation.
    fn layout_speedup_at(&self, threads: usize) -> f64 {
        let row = self
            .row_layout_ms
            .iter()
            .find(|(n, _)| *n == threads)
            .map_or(f64::INFINITY, |(_, ms)| *ms);
        let col = self
            .parallel_ms
            .iter()
            .find(|(n, _)| *n == threads)
            .map_or(f64::INFINITY, |(_, ms)| *ms);
        row / col
    }
}

fn measure(w: &Workload) -> Measurement {
    let program = &w.program;
    let sched = schedule(program);
    let input_tuples: usize =
        w.db.relations()
            .iter()
            .map(mjoin_relation::Relation::len)
            .sum();

    // Correctness gate first: the baseline is the oracle. Both engines must
    // match it before either's time is accepted.
    set_layout(Layout::Columnar);
    let oracle = execute_deep_clone(program, &w.db);
    for threads in THREADS {
        let par = execute_parallel(program, &w.db, threads);
        assert_eq!(
            *par.result, oracle.result,
            "{}: parallel result diverged at {threads} threads",
            w.name
        );
        assert_eq!(
            par.head_sizes, oracle.head_sizes,
            "{}: head sizes diverged",
            w.name
        );
        set_layout(Layout::Row);
        let by_rows = execute_parallel(program, &w.db, threads);
        set_layout(Layout::Columnar);
        assert_eq!(
            *by_rows.result, oracle.result,
            "{}: row-engine result diverged at {threads} threads",
            w.name
        );
        let nocache = execute_with(
            program,
            &w.db,
            &ExecConfig::with_threads(threads).without_cache(),
        );
        assert_eq!(
            *nocache.result, oracle.result,
            "{}: cache-off result diverged at {threads} threads",
            w.name
        );
    }

    // Warm both physical views of every base relation, outside any timed
    // region. The executor hands each run an `Arc`-cheap clone of the bases,
    // and a clone shares exactly the views its source has materialized — so
    // without this, the first engine to touch a view would re-pay the
    // one-time row↔column conversion on a throwaway clone every rep, and
    // the layout comparison would measure conversion, not kernels.
    for rel in w.db.relations() {
        let _ = rel.rows();
        let _ = rel.columns();
    }

    // Interleave configurations round-robin across reps so ambient host
    // slowness (this often runs on shared 1-CPU CI) biases every
    // configuration equally, then keep each configuration's best rep.
    // The seed interpreter ran the row kernels — time it under the row
    // engine, or its deep-copied (row-born) registers would pay a
    // row→column conversion per read that the seed never performed.
    let mut run_base = || {
        set_layout(Layout::Row);
        let out = execute_deep_clone(program, &w.db);
        std::hint::black_box(out.result.len());
        set_layout(Layout::Columnar);
    };
    let mut baseline_ms = f64::INFINITY;
    let mut best_par = vec![f64::INFINITY; THREADS.len()];
    let mut best_row = vec![f64::INFINITY; THREADS.len()];
    let mut best_nocache = vec![f64::INFINITY; THREADS.len()];
    // One engine sweep: every thread count once under `layout`, folding
    // each run into that configuration's best-so-far. Restores the
    // columnar default before returning.
    let time_engine = |layout: Layout, best: &mut [f64]| {
        set_layout(layout);
        for (slot, &threads) in best.iter_mut().zip(THREADS.iter()) {
            let mut run = || {
                let out = execute_parallel(program, &w.db, threads);
                std::hint::black_box(out.result.len());
            };
            *slot = slot.min(time_once(&mut run));
        }
        set_layout(Layout::Columnar);
    };
    for rep in 0..REPS {
        baseline_ms = baseline_ms.min(time_once(&mut run_base));
        // Alternate which engine runs first: the baseline's deep-copy storm
        // leaves the allocator cold, and whichever engine is timed next
        // repays the page faults. Swapping the order per rep gives both
        // engines warm-position reps, so best-of compares warm against warm
        // instead of charging the first engine for the baseline's churn.
        if rep % 2 == 0 {
            time_engine(Layout::Columnar, &mut best_par);
            time_engine(Layout::Row, &mut best_row);
        } else {
            time_engine(Layout::Row, &mut best_row);
            time_engine(Layout::Columnar, &mut best_par);
        }
        for (slot, &threads) in best_nocache.iter_mut().zip(THREADS.iter()) {
            let cfg = ExecConfig::with_threads(threads).without_cache();
            let mut run_nc = || {
                let out = execute_with(program, &w.db, &cfg);
                std::hint::black_box(out.result.len());
            };
            *slot = slot.min(time_once(&mut run_nc));
        }
    }
    let parallel_ms: Vec<(usize, f64)> = THREADS.iter().copied().zip(best_par).collect();
    let row_layout_ms: Vec<(usize, f64)> = THREADS.iter().copied().zip(best_row).collect();
    let parallel_nocache_ms: Vec<(usize, f64)> =
        THREADS.iter().copied().zip(best_nocache).collect();

    // One extra traced run, after timing, so the JSON records which operator
    // strategies actually fired and how the pool behaved. The timed reps run
    // with tracing off, so the recorded milliseconds stay honest.
    mjoin_trace::clear();
    mjoin_trace::set_enabled(true);
    {
        let out = execute_parallel(program, &w.db, 4);
        std::hint::black_box(out.result.len());
    }
    mjoin_trace::set_enabled(false);
    let trace = mjoin_trace::take();
    let trace_ops: Vec<(String, u64, f64)> = trace
        .aggregate()
        .into_iter()
        .filter(|row| row.key.starts_with("op/"))
        .map(|row| {
            (
                row.key.trim_start_matches("op/").to_string(),
                row.count,
                row.total_us as f64 / 1e3,
            )
        })
        .collect();
    let trace_counters: Vec<(String, u64)> = trace
        .counters
        .iter()
        .map(|(n, v)| (n.to_string(), *v))
        .collect();

    Measurement {
        name: w.name,
        relations: w.db.len(),
        input_tuples,
        stmts: program.stmts.len(),
        schedule_depth: sched.depth(),
        schedule_width: sched.width(),
        result_tuples: oracle.result.len(),
        baseline_ms,
        parallel_ms,
        row_layout_ms,
        parallel_nocache_ms,
        trace_ops,
        trace_counters,
    }
}

fn write_json(path: &str, pool_threads: usize, host_parallelism: usize, ms: &[Measurement]) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"parallel_exec\",\n");
    j.push_str("  \"command\": \"cargo run --release -p mjoin-bench --bin exp_par\",\n");
    j.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    j.push_str(&format!("  \"pool_threads\": {pool_threads},\n"));
    j.push_str(&format!("  \"reps_best_of\": {REPS},\n"));
    j.push_str(
        "  \"baseline\": \"seed interpreter: deep-clone registers, sequential operators\",\n",
    );
    j.push_str(
        "  \"note\": \"on a 1-CPU host the speedup measures the zero-copy Arc registers and allocation fixes, not core scaling; results are asserted equal to the baseline before timing\",\n",
    );
    j.push_str("  \"workloads\": [\n");
    for (i, m) in ms.iter().enumerate() {
        j.push_str("    {\n");
        j.push_str(&format!("      \"name\": {},\n", json::string(m.name)));
        j.push_str(&format!("      \"relations\": {},\n", m.relations));
        j.push_str(&format!("      \"input_tuples\": {},\n", m.input_tuples));
        j.push_str(&format!("      \"result_tuples\": {},\n", m.result_tuples));
        j.push_str(&format!("      \"program_stmts\": {},\n", m.stmts));
        j.push_str(&format!(
            "      \"schedule_depth\": {},\n",
            m.schedule_depth
        ));
        j.push_str(&format!(
            "      \"schedule_width\": {},\n",
            m.schedule_width
        ));
        j.push_str(&format!(
            "      \"baseline_deep_clone_ms\": {:.3},\n",
            m.baseline_ms
        ));
        j.push_str("      \"parallel_ms\": {");
        let cells: Vec<String> = m
            .parallel_ms
            .iter()
            .map(|(t, v)| format!("\"{t}\": {v:.3}"))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("},\n");
        // `parallel_ms` runs the default (columnar) engine; re-emit it under
        // the explicit name so the layout columns read side by side.
        j.push_str("      \"columnar_ms\": {");
        let cells: Vec<String> = m
            .parallel_ms
            .iter()
            .map(|(t, v)| format!("\"{t}\": {v:.3}"))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("},\n");
        j.push_str("      \"row_layout_ms\": {");
        let cells: Vec<String> = m
            .row_layout_ms
            .iter()
            .map(|(t, v)| format!("\"{t}\": {v:.3}"))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("},\n");
        // row-engine ms / columnar-engine ms, same executor and threads:
        // the batch-kernel win in isolation.
        j.push_str("      \"layout_speedup\": {");
        let cells: Vec<String> = m
            .row_layout_ms
            .iter()
            .map(|(t, _)| format!("\"{t}\": {:.2}", m.layout_speedup_at(*t)))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("},\n");
        j.push_str("      \"parallel_nocache_ms\": {");
        let cells: Vec<String> = m
            .parallel_nocache_ms
            .iter()
            .map(|(t, v)| format!("\"{t}\": {v:.3}"))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("},\n");
        j.push_str("      \"speedup_vs_baseline\": {");
        let cells: Vec<String> = m
            .parallel_ms
            .iter()
            .map(|(t, _)| format!("\"{t}\": {:.2}", m.speedup_at(*t)))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("},\n");
        // cache-off ms / cache-on ms at the same thread count: the
        // before/after effect of the cross-statement join-index cache alone.
        j.push_str("      \"index_cache_speedup\": {");
        let cells: Vec<String> = m
            .parallel_ms
            .iter()
            .zip(m.parallel_nocache_ms.iter())
            .map(|((t, on), (_, off))| format!("\"{t}\": {:.2}", off / on))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("},\n");
        // From one traced (untimed) run at 4 threads: which operator
        // strategies actually fired, plus the pool counters behind them.
        j.push_str("      \"trace_summary\": {\n");
        j.push_str("        \"ops\": {");
        let cells: Vec<String> = m
            .trace_ops
            .iter()
            .map(|(k, calls, total_ms)| {
                format!(
                    "{}: {{\"calls\": {calls}, \"total_ms\": {total_ms:.3}}}",
                    json::string(k)
                )
            })
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("},\n");
        j.push_str("        \"counters\": {");
        let cells: Vec<String> = m
            .trace_counters
            .iter()
            .map(|(k, v)| format!("{}: {v}", json::string(k)))
            .collect();
        j.push_str(&cells.join(", "));
        j.push_str("}\n");
        j.push_str("      }\n");
        j.push_str(if i + 1 == ms.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    j.push_str("  ]\n}\n");
    std::fs::write(path, j).expect("write BENCH_parallel_exec.json");
}

/// CI regression gate (`--check-strategies`): one traced 4-thread run per
/// workload, asserting that the operator strategies the planner is supposed
/// to pick actually fired. Catches three failure modes silently invisible to
/// correctness tests: wide workloads falling off the partitioned
/// par_join/par_semijoin paths, the join-index cache going cold on the
/// workloads built to exercise it, and the columnar batch kernels never
/// engaging (every workload must record `layout.columnar_batch > 0` — if an
/// operator change quietly reroutes everything to the row path, the numbers
/// in BENCH_parallel_exec.json stop meaning what they claim).
fn check_strategies(ws: &[Workload]) -> bool {
    set_layout(Layout::Columnar);
    // (workload, required `name[strategy]` ops, required minimum counters)
    type Expectation = (
        &'static str,
        &'static [&'static str],
        &'static [(&'static str, u64)],
    );
    let expect: &[Expectation] = &[
        (
            "example3_m30",
            &["join[shared_build_probe]", "semijoin[chunked_probe]"],
            &[],
        ),
        (
            "star_d6_f60k",
            &["join[shared_build_probe]", "semijoin[chunked_probe]"],
            &[],
        ),
        (
            "star_wide",
            &["join[shared_build_probe]", "semijoin[chunked_probe]"],
            &[],
        ),
        ("cycle_gap_n6_m40", &["join[shared_build_probe]"], &[]),
        ("star_wide_reducer", &["semijoin[chunked_probe]"], &[]),
        ("wide_filter_sweep", &["semijoin[chunked_probe]"], &[]),
        (
            "selective_probe_fanout",
            &["join[indexed_probe]"],
            &[("index_cache.hit", 1)],
        ),
        (
            "hub_fanout_reducer",
            &["semijoin[indexed_probe]", "semijoin[chunked_probe]"],
            &[("index_cache.hit", 9), ("index_cache.insert", 1)],
        ),
    ];
    let mut ok = true;
    for w in ws {
        // A workload with no strategy expectations still gets the traced run:
        // the layout gate below applies to every workload.
        let (ops_req, ctr_req): (&[&str], &[(&str, u64)]) = expect
            .iter()
            .find(|(n, _, _)| *n == w.name)
            .map_or((&[], &[]), |(_, o, c)| (o, c));
        mjoin_trace::clear();
        mjoin_trace::set_enabled(true);
        {
            let out = execute_parallel(&w.program, &w.db, 4);
            std::hint::black_box(out.result.len());
        }
        mjoin_trace::set_enabled(false);
        let trace = mjoin_trace::take();
        let seen: Vec<String> = trace
            .aggregate()
            .into_iter()
            .filter(|row| row.key.starts_with("op/"))
            .map(|row| row.key.trim_start_matches("op/").to_string())
            .collect();
        for req in ops_req {
            if seen.iter().any(|k| k == req) {
                println!("  ok   {}: {req}", w.name);
            } else {
                println!("  FAIL {}: expected strategy {req}, saw {:?}", w.name, seen);
                ok = false;
            }
        }
        for (name, min) in ctr_req {
            let got = trace.counter(name).unwrap_or(0);
            if got >= *min {
                println!("  ok   {}: {name} = {got} (>= {min})", w.name);
            } else {
                println!("  FAIL {}: {name} = {got}, expected >= {min}", w.name);
                ok = false;
            }
        }
        // Layout gate: the columnar fast paths must actually have fired.
        let batches = trace.counter("layout.columnar_batch").unwrap_or(0);
        if batches > 0 {
            println!("  ok   {}: layout.columnar_batch = {batches}", w.name);
        } else {
            println!(
                "  FAIL {}: layout.columnar_batch = 0 — columnar kernels never engaged",
                w.name
            );
            ok = false;
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check-strategies") {
        mjoin_pool::ensure_at_least(*THREADS.iter().max().unwrap());
        let ws = workloads();
        println!("exp_par --check-strategies: {} workloads\n", ws.len());
        if check_strategies(&ws) {
            println!("\ncheck-strategies: all strategy expectations held");
            return;
        }
        eprintln!("\ncheck-strategies: strategy mix regressed (see FAIL lines above)");
        std::process::exit(1);
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel_exec.json".into());
    // Fail on an unwritable output path *before* the minutes-long run.
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        eprintln!("exp_par: cannot open output path {path}: {e}");
        std::process::exit(1);
    }
    let host_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    mjoin_pool::ensure_at_least(*THREADS.iter().max().unwrap());
    let pool_threads = mjoin_pool::current_num_threads();
    println!(
        "exp_par: host parallelism {host_parallelism}, pool threads {pool_threads}, best of {REPS}\n"
    );

    let ws = workloads();
    let measurements: Vec<Measurement> = ws
        .iter()
        .map(|w| {
            println!("running {} ...", w.name);
            measure(w)
        })
        .collect();

    let mut rows = Vec::new();
    for m in &measurements {
        let mut row = vec![
            m.name.to_string(),
            m.input_tuples.to_string(),
            m.stmts.to_string(),
            format!("{}×{}", m.schedule_depth, m.schedule_width),
            format!("{:.1}", m.baseline_ms),
        ];
        for (_, ms) in &m.parallel_ms {
            row.push(format!("{ms:.1}"));
        }
        let nc4 = m
            .parallel_nocache_ms
            .iter()
            .find(|(t, _)| *t == 4)
            .map_or(f64::INFINITY, |(_, ms)| *ms);
        row.push(format!("{nc4:.1}"));
        let row4 = m
            .row_layout_ms
            .iter()
            .find(|(t, _)| *t == 4)
            .map_or(f64::INFINITY, |(_, ms)| *ms);
        row.push(format!("{row4:.1}"));
        row.push(format!("{:.2}×", m.layout_speedup_at(4)));
        row.push(format!("{:.2}×", m.speedup_at(4)));
        rows.push(row);
    }
    println!();
    print_table(
        &[
            "workload",
            "input",
            "stmts",
            "depth×width",
            "seed ms",
            "t=1",
            "t=2",
            "t=4",
            "t=8",
            "nocache t=4",
            "rowlay t=4",
            "layout@4",
            "speedup@4",
        ],
        &rows,
    );

    write_json(&path, pool_threads, host_parallelism, &measurements);
    println!("\nwrote {path}");
}
