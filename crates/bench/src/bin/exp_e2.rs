//! **E2 — Theorem 2, empirically.**
//!
//! Sample random connected schemes, random databases with a planted witness
//! (`⋈D ≠ ∅`, the theorem's hypothesis), and random input trees; derive a
//! program from each tree (with randomized Algorithm 1 choices) and check
//! `cost(P(D)) < r(a+5) · cost(T₁(D))`. Report the observed ratio
//! distribution against the bound — the bound is loose by design, so the
//! interesting number is how far below it real ratios sit.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e2 [samples]
//! ```

use mjoin_bench::print_table;
use mjoin_core::{check_theorem2, SeededChoice};
use mjoin_optimizer::random_tree;
use mjoin_relation::Catalog;
use mjoin_workloads::{random_database, schemes, DataGenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    println!("# E2: Theorem 2 — cost(P(D)) < r(a+5)·cost(T1(D)) on random inputs\n");

    let mut rows = Vec::new();
    let mut total_violations = 0u64;
    for (label, r, attrs, arity) in [
        ("small (r=3)", 3usize, 5usize, 3usize),
        ("medium (r=5)", 5, 8, 3),
        ("large (r=7)", 7, 10, 4),
    ] {
        let mut max_ratio = 0.0f64;
        let mut sum_ratio = 0.0f64;
        let mut min_slack = f64::INFINITY;
        let mut violations = 0u64;
        let mut n = 0u64;
        for seed in 0..samples {
            let mut catalog = Catalog::new();
            let scheme = schemes::random_connected(&mut catalog, r, attrs, arity, seed);
            let db = random_database(
                &scheme,
                &DataGenConfig {
                    tuples_per_relation: 30,
                    domain: 5,
                    seed: seed.wrapping_mul(7919),
                    plant_witness: true,
                },
            );
            if db.join_all().is_empty() {
                continue; // theorem hypothesis not met (cannot happen with witness)
            }
            let mut tree_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let t1 = random_tree(&scheme, &mut tree_rng, false);
            let mut policy = SeededChoice::new(seed);
            let report = check_theorem2(&scheme, &t1, &db, &mut policy).expect("pipeline");
            n += 1;
            if !report.holds {
                violations += 1;
            }
            max_ratio = max_ratio.max(report.ratio);
            sum_ratio += report.ratio;
            min_slack = min_slack.min(report.quasi_factor as f64 / report.ratio.max(1e-9));
        }
        total_violations += violations;
        rows.push(vec![
            label.to_string(),
            n.to_string(),
            format!("{max_ratio:.2}"),
            format!("{:.2}", sum_ratio / n.max(1) as f64),
            format!("{:.0}", min_slack),
            violations.to_string(),
        ]);
    }
    print_table(
        &[
            "scheme class",
            "samples",
            "max cost(P)/cost(T1)",
            "mean ratio",
            "min bound/ratio slack",
            "violations",
        ],
        &rows,
    );
    println!(
        "\ntotal violations: {total_violations} (the paper proves this is always 0 when ⋈D ≠ ∅)"
    );
    assert_eq!(total_violations, 0, "Theorem 2 must never be violated");
}
