//! **E8 — cardinality-estimation quality and its effect on planning.**
//!
//! The optimizer baselines can run from exact sub-join sizes (an oracle no
//! real system has) or from statistics. This experiment measures, on random
//! schemes and on Example 3's heavily skewed data:
//!
//! 1. q-error distributions of the uniform-independence estimator vs the
//!    per-bucket histogram estimator, against exact sizes, over every
//!    connected subset;
//! 2. the *planning regret*: actual §2.3 cost of the DP tree chosen under
//!    each estimator, relative to the true optimum.
//!
//! ```text
//! cargo run --release -p mjoin-bench --bin exp_e8
//! ```

use mjoin_bench::print_table;
use mjoin_expr::cost_of;
use mjoin_hypergraph::RelSet;
use mjoin_optimizer::{
    optimize, q_error, CostOracle, EstimateOracle, ExactOracle, HistogramOracle, SearchSpace,
};
use mjoin_relation::Catalog;
use mjoin_workloads::{random_database, schemes, DataGenConfig, Example3};

fn quantiles(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    (xs[n / 2], xs[n * 9 / 10], xs[n - 1])
}

fn main() {
    println!("# E8: estimation quality (q-error) and planning regret\n");

    // Part 1: q-errors over all connected subsets of random cyclic schemes.
    let mut uniform_q = Vec::new();
    let mut hist_q = Vec::new();
    for seed in 0..20u64 {
        let mut catalog = Catalog::new();
        let scheme = schemes::random_connected(&mut catalog, 5, 7, 3, seed);
        let db = random_database(
            &scheme,
            &DataGenConfig {
                tuples_per_relation: 60,
                domain: 8,
                seed,
                plant_witness: true,
            },
        );
        let mut exact = ExactOracle::new(&db);
        let mut unif = EstimateOracle::new(&scheme, &db);
        let mut hist = HistogramOracle::new(&scheme, &db);
        for bits in 1u64..(1 << scheme.num_relations()) {
            let set = RelSet(bits);
            if set.len() < 2 || !scheme.is_connected(set) {
                continue;
            }
            let truth = exact.subjoin_size(set);
            uniform_q.push(q_error(unif.subjoin_size(set), truth));
            hist_q.push(q_error(hist.subjoin_size(set), truth));
        }
    }
    let (um, u9, umax) = quantiles(uniform_q);
    let (hm, h9, hmax) = quantiles(hist_q);
    print_table(
        &["estimator", "median q-error", "p90 q-error", "max q-error"],
        &[
            vec![
                "uniform independence".into(),
                format!("{um:.2}"),
                format!("{u9:.2}"),
                format!("{umax:.1}"),
            ],
            vec![
                "equi-width histograms".into(),
                format!("{hm:.2}"),
                format!("{h9:.2}"),
                format!("{hmax:.1}"),
            ],
        ],
    );

    // Part 2: planning regret on random schemes.
    println!("\n## Planning regret (actual cost of the chosen tree / optimal cost)\n");
    let mut rows = Vec::new();
    for (label, which) in [("uniform", 0usize), ("histogram", 1), ("exact", 2)] {
        let mut worst: f64 = 1.0;
        let mut sum = 0.0;
        let mut n = 0u32;
        for seed in 0..20u64 {
            let mut catalog = Catalog::new();
            let scheme = schemes::random_connected(&mut catalog, 5, 7, 3, seed);
            let db = random_database(
                &scheme,
                &DataGenConfig {
                    tuples_per_relation: 60,
                    domain: 8,
                    seed,
                    plant_witness: true,
                },
            );
            let tree = {
                let pick =
                    |o: &mut dyn CostOracle| optimize(&scheme, o, SearchSpace::All).unwrap().tree;
                match which {
                    0 => pick(&mut EstimateOracle::new(&scheme, &db)),
                    1 => pick(&mut HistogramOracle::new(&scheme, &db)),
                    _ => pick(&mut ExactOracle::new(&db)),
                }
            };
            let actual = cost_of(&tree, &db) as f64;
            let optimal = {
                let mut exact = ExactOracle::new(&db);
                optimize(&scheme, &mut exact, SearchSpace::All)
                    .unwrap()
                    .cost as f64
            };
            let regret = actual / optimal;
            worst = worst.max(regret);
            sum += regret;
            n += 1;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", sum / n as f64),
            format!("{worst:.3}"),
        ]);
    }
    print_table(
        &["planner statistics", "mean regret", "worst regret"],
        &rows,
    );

    // Part 3: Example 3's skew — where uniform estimation falls apart.
    println!("\n## Example 3 (m = 10): estimates of the four adjacent pair joins\n");
    let ex = Example3::new(10);
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);
    let db = ex.database(&mut catalog);
    let mut unif = EstimateOracle::new(&scheme, &db);
    let mut hist = HistogramOracle::new(&scheme, &db);
    let mut rows = Vec::new();
    for (i, j) in [(0usize, 1usize), (1, 2), (2, 3), (0, 3)] {
        let set = RelSet::from_indices([i, j]);
        let truth = u64::try_from(ex.subjoin_size(&scheme, set)).unwrap();
        let u = unif.subjoin_size(set);
        let h = hist.subjoin_size(set);
        rows.push(vec![
            format!("R{i} ⋈ R{j}"),
            truth.to_string(),
            format!("{u} (q {:.1})", q_error(u, truth)),
            format!("{h} (q {:.1})", q_error(h, truth)),
        ]);
    }
    print_table(&["pair", "exact", "uniform", "histogram"], &rows);
}
