//! The seed's interpreter, preserved as the performance baseline.
//!
//! Before the zero-copy executor landed, `Machine` registers held owned
//! `Relation`s and every operand read deep-copied the whole relation
//! (an O(|R|) allocation storm per statement — reproduced here explicitly
//! by [`deep_copy`], since `Relation::clone` itself is `Arc`-cheap now).
//! This module replicates those semantics exactly, on the sequential
//! operators, so `exp_par` can measure what the shared-ownership registers
//! and pooled operators actually buy over the status quo ante — and it
//! doubles as a second correctness oracle for the new executor.

use mjoin_program::{Program, Reg, Stmt};
use mjoin_relation::{ops, CostLedger, Database, Relation, Schema};

/// Outcome of a baseline (deep-clone) execution, mirroring `ExecOutcome`.
pub struct BaselineOutcome {
    /// The relation in the program's declared result register.
    pub result: Relation,
    /// §2.3 cost ledger (inputs + every statement head).
    pub ledger: CostLedger,
    /// `|head|` after each statement, in execution order.
    pub head_sizes: Vec<usize>,
    /// Peak resident tuples across statement boundaries.
    pub peak_resident: u64,
}

struct Machine {
    bases: Vec<Relation>,
    temps: Vec<Option<Relation>>,
}

/// The seed's per-read copy, reproduced explicitly: a fresh row vector with
/// every `Box<[Value]>` reallocated. `Relation::clone` no longer does this —
/// it shares both views by `Arc` — so the baseline must spell the
/// allocation storm out to keep measuring the status quo ante.
fn deep_copy(rel: &Relation) -> Relation {
    Relation::from_distinct_rows(rel.schema().clone(), rel.rows().to_vec())
}

impl Machine {
    /// Read a register *by deep copy*; unwritten variables read through
    /// their alias chain. This copy-per-read is the behaviour under test.
    fn read(&self, program: &Program, reg: Reg) -> Relation {
        let mut cur = reg;
        loop {
            match cur {
                Reg::Base(i) => return deep_copy(&self.bases[i]),
                Reg::Temp(t) => match &self.temps[t] {
                    Some(rel) => return deep_copy(rel),
                    None => {
                        cur = program.temp_init[t]
                            .expect("validated: unwritten variable has an alias");
                    }
                },
            }
        }
    }

    fn write(&mut self, reg: Reg, rel: Relation) {
        match reg {
            Reg::Base(i) => self.bases[i] = rel,
            Reg::Temp(t) => self.temps[t] = Some(rel),
        }
    }
}

/// Execute `program` on `db` with the seed's deep-clone register semantics
/// and strictly sequential operators.
pub fn execute_deep_clone(program: &Program, db: &Database) -> BaselineOutcome {
    assert_eq!(
        program.num_bases,
        db.len(),
        "program and database disagree on the number of relations"
    );
    let mut ledger = CostLedger::new();
    db.charge_inputs(&mut ledger);

    let mut m = Machine {
        bases: db.relations().to_vec(),
        temps: vec![None; program.temp_names.len()],
    };
    let mut head_sizes = Vec::with_capacity(program.stmts.len());
    let resident = |m: &Machine| -> u64 {
        m.bases.iter().map(|r| r.len() as u64).sum::<u64>()
            + m.temps
                .iter()
                .flatten()
                .map(|r| r.len() as u64)
                .sum::<u64>()
    };
    let mut peak_resident = resident(&m);

    for (i, stmt) in program.stmts.iter().enumerate() {
        let (head, value) = match stmt {
            Stmt::Project { dst, src, attrs } => {
                let src_rel = m.read(program, *src);
                let schema = Schema::from_set(attrs);
                let projected = ops::project(&src_rel, schema.attrs())
                    .expect("validated: projection attrs ⊆ source scheme");
                (*dst, projected)
            }
            Stmt::Join { dst, left, right } => {
                let l = m.read(program, *left);
                let r = m.read(program, *right);
                (*dst, ops::join(&l, &r))
            }
            Stmt::Semijoin { target, filter } => {
                let t = m.read(program, *target);
                let f = m.read(program, *filter);
                (*target, ops::semijoin(&t, &f))
            }
        };
        ledger.charge_generated(format!("stmt {i}"), value.len());
        head_sizes.push(value.len());
        m.write(head, value);
        peak_resident = peak_resident.max(resident(&m));
    }

    let result = m.read(program, program.result);
    BaselineOutcome {
        result,
        ledger,
        head_sizes,
        peak_resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_core::FirstChoice;
    use mjoin_expr::JoinTree;
    use mjoin_relation::Catalog;
    use mjoin_workloads::{random_database, schemes, DataGenConfig};

    /// The baseline and both new executors agree on every observable —
    /// making the baseline a trustworthy timing comparison target.
    #[test]
    fn baseline_agrees_with_both_executors() {
        let mut c = Catalog::new();
        let s = schemes::chain(&mut c, 4);
        let db = random_database(
            &s,
            &DataGenConfig {
                tuples_per_relation: 50,
                domain: 6,
                seed: 3,
                plant_witness: true,
            },
        );
        let mut t = JoinTree::leaf(0);
        for i in 1..4 {
            t = JoinTree::join(t, JoinTree::leaf(i));
        }
        let d = mjoin_core::derive_with_policy(&s, &t, &mut FirstChoice).unwrap();
        let base = execute_deep_clone(&d.program, &db);
        let seq = mjoin_program::execute(&d.program, &db);
        let par = mjoin_program::execute_parallel(&d.program, &db, 4);
        assert_eq!(base.result, *seq.result);
        assert_eq!(base.result, *par.result);
        assert_eq!(base.head_sizes, seq.head_sizes);
        assert_eq!(base.ledger, seq.ledger);
        assert_eq!(base.peak_resident, par.peak_resident);
    }
}
