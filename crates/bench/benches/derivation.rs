//! Criterion: Algorithm 1 + Algorithm 2 derivation time vs scheme size.
//!
//! The E4 claim in wall-clock form: deriving a program depends only on the
//! database *scheme* (here: chains and cycles of growing `r`), never on any
//! data — there is no database in sight in this whole file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mjoin_core::derive;
use mjoin_expr::JoinTree;
use mjoin_relation::Catalog;
use mjoin_workloads::schemes;
use std::hint::black_box;

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive");
    for &r in &[4usize, 8, 16, 32] {
        for family in ["chain", "cycle"] {
            let mut catalog = Catalog::new();
            let scheme = match family {
                "chain" => schemes::chain(&mut catalog, r),
                _ => schemes::cycle(&mut catalog, r),
            };
            let t1 = JoinTree::left_deep(&(0..r).collect::<Vec<_>>());
            group.bench_with_input(
                BenchmarkId::new(family, r),
                &(&scheme, &t1),
                |b, (scheme, t1)| {
                    b.iter(|| black_box(derive(scheme, t1).unwrap()));
                },
            );
        }
    }
    group.finish();
}

fn bench_algorithm1_outcomes(c: &mut Criterion) {
    // Exhaustive enumeration of Algorithm 1's nondeterminism on the paper's
    // running example (16 outcomes).
    let mut catalog = Catalog::new();
    let scheme = mjoin_workloads::Example3::scheme(&mut catalog);
    let t1 = mjoin_workloads::Example3::optimal_tree();
    c.bench_function("algorithm1_all_outcomes_paper_cycle", |b| {
        b.iter(|| black_box(mjoin_core::algorithm1_all_outcomes(&scheme, &t1).unwrap()));
    });
}

criterion_group!(benches, bench_derivation, bench_algorithm1_outcomes);
criterion_main!(benches);
