//! Criterion: end-to-end pipeline wall-clock (optimize → Algorithm 1 →
//! Algorithm 2 → execute) against evaluating the chosen tree directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mjoin_core::{run_pipeline, FirstChoice};
use mjoin_expr::cost_of;
use mjoin_optimizer::{optimize, ExactOracle, SearchSpace};
use mjoin_relation::Catalog;
use mjoin_workloads::{random_database, schemes, DataGenConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for &r in &[4usize, 6, 8] {
        let mut catalog = Catalog::new();
        let scheme = schemes::cycle(&mut catalog, r);
        let db = random_database(
            &scheme,
            &DataGenConfig {
                tuples_per_relation: 40,
                domain: 5,
                seed: 11,
                plant_witness: true,
            },
        );
        let mut oracle = ExactOracle::new(&db);
        let t1 = optimize(&scheme, &mut oracle, SearchSpace::All)
            .unwrap()
            .tree;

        group.bench_with_input(BenchmarkId::new("derive_and_execute", r), &r, |b, _| {
            b.iter(|| black_box(run_pipeline(&scheme, &t1, &db, &mut FirstChoice).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("evaluate_tree", r), &r, |b, _| {
            b.iter(|| black_box(cost_of(&t1, &db)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
