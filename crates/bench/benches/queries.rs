//! Criterion: conjunctive-query end-to-end latency (parse + bind + plan +
//! derive + execute) across plan strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mjoin_cq::{execute_query, parse_query, NamedDatabase, PlanStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn graph(n_edges: usize, n_nodes: i64, seed: u64) -> NamedDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = NamedDatabase::new();
    let edges: Vec<Vec<i64>> = (0..n_edges)
        .map(|_| vec![rng.gen_range(0..n_nodes), rng.gen_range(0..n_nodes)])
        .collect();
    let refs: Vec<&[i64]> = edges.iter().map(std::vec::Vec::as_slice).collect();
    db.add_relation("edge", &["src", "dst"], &refs).unwrap();
    db
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq");
    group.sample_size(10);
    let db = graph(800, 60, 3);
    for (name, text) in [
        ("two_hop", "Q(x, z) :- edge(x, y), edge(y, z)."),
        (
            "triangle",
            "Q(x, y, z) :- edge(x, y), edge(y, z), edge(z, x).",
        ),
        (
            "four_cycle",
            "Q(a, c) :- edge(a, b), edge(b, c), edge(c, d), edge(d, a).",
        ),
    ] {
        let q = parse_query(text).unwrap();
        for (sname, strategy) in [
            ("greedy", PlanStrategy::Greedy),
            ("dp", PlanStrategy::DpOptimal),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/{sname}"), 800),
                &q,
                |b, q| {
                    b.iter(|| black_box(execute_query(&db, q, strategy).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
