//! Criterion: wall-clock of the three evaluation strategies on Example 3.
//!
//! The W experiment: confirm that the §2.3 tuple-count separation (program ≪
//! CPF expression) is visible in real time, not just in the cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mjoin_core::derive;
use mjoin_expr::{cost_of, cpf_trees};
use mjoin_program::execute;
use mjoin_relation::{Catalog, Database};
use mjoin_workloads::Example3;
use std::hint::black_box;

struct Setup {
    db: Database,
    program: mjoin_program::Program,
    bowtie: mjoin_expr::JoinTree,
    best_cpf: mjoin_expr::JoinTree,
}

fn setup(m: u64) -> Setup {
    let ex = Example3::new(m);
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);
    let db = ex.database(&mut catalog);
    let bowtie = Example3::optimal_tree();
    let derivation = derive(&scheme, &bowtie).unwrap();
    let best_cpf = cpf_trees(&scheme, scheme.all())
        .into_iter()
        .min_by_key(|t| ex.tree_cost(&scheme, t))
        .unwrap();
    Setup {
        db,
        program: derivation.program,
        bowtie,
        best_cpf,
    }
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("example3_execution");
    group.sample_size(10);
    for &m in &[5u64, 10] {
        let s = setup(m);
        group.bench_with_input(BenchmarkId::new("program", m), &s, |b, s| {
            b.iter(|| black_box(execute(&s.program, &s.db)));
        });
        group.bench_with_input(BenchmarkId::new("bowtie_expr", m), &s, |b, s| {
            b.iter(|| black_box(cost_of(&s.bowtie, &s.db)));
        });
        group.bench_with_input(BenchmarkId::new("best_cpf_expr", m), &s, |b, s| {
            b.iter(|| black_box(cost_of(&s.best_cpf, &s.db)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
