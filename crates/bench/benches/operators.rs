//! Criterion: raw operator throughput (hash join, semijoin, projection).
//!
//! Wall-clock sanity check behind the paper's §2.3 claim that tuple-count
//! cost `n` corresponds to an `O(n log n)` best implementation — our
//! hash-based operators are `O(n)` expected, so wall-clock should track the
//! tuple counts the experiments report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mjoin_relation::{ops, Catalog, Relation, Schema, Value};
use std::hint::black_box;

/// `R(A,B)` with `n` tuples: `A = i % keys`, `B = i` — so joining on `A`
/// against a similar `S(A,C)` fans out `n/keys` ways.
fn table(catalog: &mut Catalog, scheme: &str, n: usize, keys: usize) -> Relation {
    let schema = Schema::from_chars(catalog, scheme);
    let rows = (0..n)
        .map(|i| vec![Value::Int((i % keys) as i64), Value::Int(i as i64)].into())
        .collect();
    Relation::from_rows(schema, rows).unwrap()
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 50_000] {
        let mut catalog = Catalog::new();
        let r = table(&mut catalog, "AB", n, n / 4);
        let s = table(&mut catalog, "AC", n, n / 4);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ops::join(&r, &s)));
        });
    }
    group.finish();
}

fn bench_semijoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("semijoin");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 50_000] {
        let mut catalog = Catalog::new();
        let r = table(&mut catalog, "AB", n, n / 4);
        let s = table(&mut catalog, "AC", n / 2, n / 8);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ops::semijoin(&r, &s)));
        });
    }
    group.finish();
}

fn bench_project(c: &mut Criterion) {
    let mut group = c.benchmark_group("project");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 50_000] {
        let mut catalog = Catalog::new();
        let r = table(&mut catalog, "AB", n, 64);
        let a = catalog.lookup("A").unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ops::project(&r, &[a]).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join, bench_semijoin, bench_project);
criterion_main!(benches);
