//! Criterion: optimizer strategies on a random cyclic scheme (E5's timing
//! companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mjoin_optimizer::{
    greedy, iterative_improvement, optimize, ExactOracle, IiConfig, SearchSpace,
};
use mjoin_relation::{Catalog, Database};
use mjoin_workloads::{random_database, schemes, DataGenConfig};
use std::hint::black_box;

fn setup(r: usize) -> (mjoin_hypergraph::DbScheme, Database) {
    let mut catalog = Catalog::new();
    let scheme = schemes::cycle(&mut catalog, r);
    let db = random_database(
        &scheme,
        &DataGenConfig {
            tuples_per_relation: 20,
            domain: 4,
            seed: 5,
            plant_witness: true,
        },
    );
    (scheme, db)
}

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizers");
    group.sample_size(10);
    for &r in &[6usize, 8] {
        let (scheme, db) = setup(r);
        for (name, space) in [
            ("dp_all", SearchSpace::All),
            ("dp_cpf", SearchSpace::Cpf),
            ("dp_linear", SearchSpace::Linear),
        ] {
            group.bench_with_input(BenchmarkId::new(name, r), &(&scheme, &db), |b, (s, d)| {
                b.iter(|| {
                    let mut oracle = ExactOracle::new(d);
                    black_box(optimize(s, &mut oracle, space))
                });
            });
        }
        group.bench_with_input(
            BenchmarkId::new("greedy", r),
            &(&scheme, &db),
            |b, (s, d)| {
                b.iter(|| {
                    let mut oracle = ExactOracle::new(d);
                    black_box(greedy(s, &mut oracle, true))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("ii", r), &(&scheme, &db), |b, (s, d)| {
            b.iter(|| {
                let mut oracle = ExactOracle::new(d);
                let cfg = IiConfig {
                    restarts: 3,
                    patience: 20,
                    cpf_only: false,
                    seed: 1,
                };
                black_box(iterative_improvement(s, &mut oracle, &cfg))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
