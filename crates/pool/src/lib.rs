//! `mjoin-pool` — a single shared thread pool for every heavy operator in
//! the workspace.
//!
//! The parallel operators (`par_join`, `par_semijoin`, `par_project`) and the
//! DAG-scheduled program executor all submit work here instead of spawning
//! ad-hoc scoped threads per call. Workers are started once and reused, so
//! the per-call cost of going parallel is a queue push, not a `clone(2)`.
//! Like the in-tree `fxhash`, this is implemented on `std` alone to stay
//! within the sanctioned dependency set (the container image has no cargo
//! registry access); the API is a deliberately small rayon-style surface:
//! [`scope`], [`par_map`], and [`par_map_slices`].
//!
//! Deadlock freedom: a thread that waits for a scope to finish *helps* — it
//! pops and runs queued tasks while it waits — so nested parallelism (a
//! parallel operator inside a parallel executor level) always makes
//! progress, even on a single-core host.
//!
//! Determinism: all helpers return results in submission order, regardless
//! of which worker ran what, so parallel operators built on them produce
//! bit-identical output across runs and thread counts.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// A queued unit of work: a lifetime-erased closure plus the scope that is
/// waiting on it. See the safety argument on [`Scope::spawn`].
struct Task {
    run: Box<dyn FnOnce() + Send>,
    scope: Arc<ScopeState>,
    /// Enqueue time, recorded only while tracing is enabled (queue wait =
    /// dequeue − enqueue).
    queued_at: Option<std::time::Instant>,
}

/// Completion tracking for one [`scope`] call.
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    /// First panic payload from any task, re-thrown at scope exit.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    /// Signaled when the queue gains a task or any task completes. Only
    /// scope waiters ([`wait_scope`]) block on this; idle workers park on
    /// [`Shared::park`] instead, so task completions never wake the whole
    /// worker herd.
    cv: Condvar,
    /// Parked workers block here; [`Scope::spawn`] notifies it once per
    /// push while any worker is parked.
    park: Condvar,
    /// Workers currently parked. Incremented under the queue lock before
    /// waiting (and the spawner reads it under the same lock), so a push
    /// can never miss a parking worker.
    parked: AtomicUsize,
    /// Lifetime count of park events (a worker going to sleep).
    parks: AtomicU64,
    /// Lifetime count of productive unparks (woke up and found work).
    unparks: AtomicU64,
    /// Lifetime count of unproductive wakeups (woke up to an empty queue —
    /// a spurious wakeup or a lost race for the task). A quiescent pool
    /// must not accumulate these; the regression test checks it.
    empty_wakeups: AtomicU64,
    /// Number of worker threads started so far.
    workers: AtomicUsize,
    /// Serializes pool growth: [`ThreadPool::ensure_at_least`] must read
    /// `workers` and spawn the difference atomically, or two concurrent
    /// callers both see the old count and over-spawn.
    grow: Mutex<()>,
}

/// The process-wide pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
}

/// Default worker count: `MJOIN_THREADS` if set, else the host parallelism.
fn default_workers() -> usize {
    if let Ok(v) = std::env::var("MJOIN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The global pool, started on first use.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let pool = ThreadPool::empty();
        pool.add_workers(default_workers());
        pool
    })
}

/// Number of workers in the global pool (the caller thread helps too, so
/// effective parallelism is one more than this while a scope waits).
pub fn current_num_threads() -> usize {
    global().shared.workers.load(Ordering::Relaxed)
}

/// Grow the global pool to at least `n` workers (used by benchmarks sweeping
/// thread counts above the host parallelism). Never shrinks.
pub fn ensure_at_least(n: usize) {
    global().ensure_at_least(n);
}

/// Block until every worker of the global pool is parked (fully idle,
/// burning no CPU) or `timeout` elapses; returns whether it quiesced. A
/// graceful server shutdown calls this after draining in-flight requests so
/// the process exits with workers asleep instead of mid-spin.
pub fn quiesce(timeout: std::time::Duration) -> bool {
    global().quiesce(timeout)
}

impl ThreadPool {
    fn empty() -> Self {
        ThreadPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                park: Condvar::new(),
                parked: AtomicUsize::new(0),
                parks: AtomicU64::new(0),
                unparks: AtomicU64::new(0),
                empty_wakeups: AtomicU64::new(0),
                workers: AtomicUsize::new(0),
                grow: Mutex::new(()),
            }),
        }
    }

    /// Grow this pool to at least `n` workers; never shrinks. The
    /// read-and-grow is serialized under a lock so concurrent callers can
    /// never over-spawn past the largest request.
    pub fn ensure_at_least(&self, n: usize) {
        let _g = self.shared.grow.lock().expect("pool grow lock poisoned");
        let have = self.shared.workers.load(Ordering::Relaxed);
        if n > have {
            self.add_workers(n - have);
        }
    }

    fn add_workers(&self, n: usize) {
        for _ in 0..n {
            let shared = Arc::clone(&self.shared);
            let idx = self.shared.workers.fetch_add(1, Ordering::Relaxed);
            thread::Builder::new()
                .name(format!("mjoin-pool-{idx}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
    }

    /// Run `f` with a [`Scope`] that submits to *this* pool; returns once
    /// every spawned task has finished. The free function [`scope`] is the
    /// same thing against the global pool.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        scope_on(&self.shared, f)
    }

    /// Workers of this pool currently parked (asleep, burning no CPU).
    pub fn parked_workers(&self) -> usize {
        self.shared.parked.load(Ordering::SeqCst)
    }

    /// Lifetime `(parks, unparks, empty_wakeups)` counters: sleep events,
    /// wakeups that found work, and wakeups that found the queue empty. A
    /// quiescent pool accumulates none of the three.
    pub fn park_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.parks.load(Ordering::Relaxed),
            self.shared.unparks.load(Ordering::Relaxed),
            self.shared.empty_wakeups.load(Ordering::Relaxed),
        )
    }

    /// Block until every worker of this pool is parked or `timeout`
    /// elapses; returns whether the pool fully quiesced. Workers park on
    /// their own within microseconds of the queue draining ([`SPIN_POPS`]);
    /// this just waits for that to have happened.
    pub fn quiesce(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let workers = self.shared.workers.load(Ordering::Relaxed);
            if self.parked_workers() >= workers {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

/// Empty pop attempts (with a `yield_now` between each) before an idle
/// worker parks. Short on purpose: a stream of submissions keeps workers
/// hot, while a quiescent pool goes fully to sleep within microseconds
/// instead of spinning or thundering awake on every task completion.
const SPIN_POPS: usize = 16;

fn worker_loop(shared: &Shared) {
    loop {
        let mut task = None;
        for _ in 0..SPIN_POPS {
            if let Some(t) = shared
                .queue
                .lock()
                .expect("pool queue poisoned")
                .pop_front()
            {
                task = Some(t);
                break;
            }
            thread::yield_now();
        }
        let task = task.unwrap_or_else(|| park_until_task(shared));
        run_task(shared, task, false);
    }
}

/// Park on [`Shared::park`] until a task arrives. Workers never block on
/// the completion condvar, so "quiescent pool" deterministically means
/// "every worker parked here, burning no CPU".
fn park_until_task(shared: &Shared) -> Task {
    let mut q = shared.queue.lock().expect("pool queue poisoned");
    loop {
        if let Some(t) = q.pop_front() {
            return t;
        }
        shared.parked.fetch_add(1, Ordering::SeqCst);
        shared.parks.fetch_add(1, Ordering::Relaxed);
        mjoin_trace::add("pool.parks", 1);
        q = shared.park.wait(q).expect("pool queue poisoned");
        shared.parked.fetch_sub(1, Ordering::SeqCst);
        if q.is_empty() {
            shared.empty_wakeups.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.unparks.fetch_add(1, Ordering::Relaxed);
            mjoin_trace::add("pool.unparks", 1);
        }
    }
}

/// Run one dequeued task; `helper` marks a waiting scope stealing work
/// instead of a dedicated worker (the distinction matters for trace data:
/// a high steal count means the workers were outnumbered by the load).
fn run_task(shared: &Shared, task: Task, helper: bool) {
    let Task {
        run,
        scope,
        queued_at,
    } = task;
    let mut sp = mjoin_trace::span("pool", "task");
    if sp.is_active() {
        let wait_us = queued_at.map_or(0, |t| t.elapsed().as_micros() as u64);
        sp.arg("wait_us", wait_us);
        sp.arg("helper", i64::from(helper));
        mjoin_trace::add("pool.tasks", 1);
        mjoin_trace::add("pool.task_wait_us", wait_us);
        if helper {
            mjoin_trace::add("pool.helper_steals", 1);
        }
    }
    let result = panic::catch_unwind(AssertUnwindSafe(run));
    drop(sp);
    if let Err(payload) = result {
        let mut slot = scope.panic.lock().expect("panic slot poisoned");
        slot.get_or_insert(payload);
    }
    // Decrement under the queue lock so a waiter that just checked `pending`
    // cannot miss the notification.
    let _guard = shared.queue.lock().expect("pool queue poisoned");
    scope.pending.fetch_sub(1, Ordering::SeqCst);
    shared.cv.notify_all();
}

/// A handle for spawning tasks that may borrow from the enclosing stack
/// frame; all tasks are complete when [`scope`] returns.
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    shared: &'env Shared,
    /// Invariant over `'env`, as in `std::thread::scope`.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queue `f` on the pool. It may borrow anything that outlives the
    /// `scope` call.
    // The workspace denies unsafe_code; this is the one sanctioned site —
    // the lifetime erasure below, justified by the SAFETY comment.
    #[allow(unsafe_code)]
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `scope` does not return (and therefore `'env` borrows stay
        // live) until `pending` drops to zero, i.e. until this closure has
        // finished running. Erasing the lifetime is the standard scoped-pool
        // technique; the wait in `wait_scope` is unconditional (it runs even
        // if the scope body panics).
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let task = Task {
            run: boxed,
            scope: Arc::clone(&self.state),
            queued_at: mjoin_trace::enabled().then(std::time::Instant::now),
        };
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        q.push_back(task);
        if mjoin_trace::enabled() {
            mjoin_trace::record_max("pool.max_queue_depth", q.len() as u64);
        }
        // `parked` is read under the same lock the parker incremented it
        // under, so this push either wakes a parked worker or is already
        // visible to a worker still spinning toward its pop.
        if self.shared.parked.load(Ordering::SeqCst) > 0 {
            self.shared.park.notify_one();
        }
        self.shared.cv.notify_one();
    }
}

/// Wait for every task of `state` to finish, helping with queued work (ours
/// or anyone's) while waiting.
fn wait_scope(shared: &Shared, state: &Arc<ScopeState>) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if state.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break Some(t);
                }
                q = shared.cv.wait(q).expect("pool queue poisoned");
            }
        };
        if let Some(t) = task {
            run_task(shared, t, true);
        }
    }
}

/// Run `f` with a [`Scope`] on the global pool; returns once every spawned
/// task has finished. The first panic from any task (or from `f` itself) is
/// propagated.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    scope_on(&global().shared, f)
}

/// [`scope`] against an explicit pool's shared state.
fn scope_on<'env, F, R>(shared: &'env Shared, f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let state = Arc::new(ScopeState::new());
    let s = Scope {
        state: Arc::clone(&state),
        shared,
        _marker: PhantomData,
    };
    let body = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    wait_scope(shared, &state);
    let task_panic = state.panic.lock().expect("panic slot poisoned").take();
    match body {
        Ok(r) => {
            if let Some(p) = task_panic {
                panic::resume_unwind(p);
            }
            r
        }
        Err(p) => panic::resume_unwind(p),
    }
}

/// Apply `f` to each item of `items` in parallel (one task per item),
/// returning results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Mutex<Option<R>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || Mutex::new(None));
    {
        let slots = &slots;
        let f = &f;
        scope(|s| {
            for (i, item) in items.into_iter().enumerate() {
                s.spawn(move || {
                    let r = f(item);
                    *slots[i].lock().expect("slot poisoned") = Some(r);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("task completed")
        })
        .collect()
}

/// Split `items` into at most `pieces` contiguous slices and apply `f` to
/// each in parallel. `f` receives the piece index and the slice; results
/// come back in slice order. With `pieces <= 1` (or a single-item input)
/// everything runs inline on the caller.
pub fn par_map_slices<T, R, F>(items: &[T], pieces: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let pieces = pieces.clamp(1, items.len().max(1));
    let chunk = items.len().div_ceil(pieces).max(1);
    if pieces <= 1 {
        return items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
    }
    let n_chunks = items.len().div_ceil(chunk);
    let mut slots: Vec<Mutex<Option<R>>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || Mutex::new(None));
    {
        let slots = &slots;
        let f = &f;
        scope(|s| {
            for (i, piece) in items.chunks(chunk).enumerate() {
                s.spawn(move || {
                    let r = f(i, piece);
                    *slots[i].lock().expect("slot poisoned") = Some(r);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("task completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_slices_covers_everything_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        for pieces in [1, 2, 3, 7, 16, 1000, 5000] {
            let sums = par_map_slices(&items, pieces, |_, s| s.iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
        }
        let idx = par_map_slices(&items, 4, |i, _| i);
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let data: Vec<u64> = (0..64).collect();
        let total = AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(8) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), data.iter().sum::<u64>());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let out = par_map((0..8).collect::<Vec<u64>>(), |x| {
            par_map((0..8).collect::<Vec<u64>>(), move |y| x * y)
                .into_iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..8).map(|x| x * 28).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn task_panic_propagates() {
        let r = panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        });
        assert!(r.is_err());
        // Pool is still usable afterwards.
        assert_eq!(par_map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn ensure_at_least_grows() {
        let before = current_num_threads();
        ensure_at_least(before + 1);
        assert!(current_num_threads() > before);
    }

    /// Regression: `ensure_at_least` used to read `workers` outside any lock
    /// and then spawn the difference, so N concurrent callers each saw the
    /// old count and the pool over-spawned up to N times the request. The
    /// read-and-grow must be atomic. Uses a standalone pool because other
    /// tests grow the global one concurrently.
    #[test]
    fn concurrent_ensure_at_least_never_over_spawns() {
        let pool = ThreadPool::empty();
        let target = 6;
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| pool.ensure_at_least(target));
            }
        });
        assert_eq!(pool.shared.workers.load(Ordering::Relaxed), target);
    }

    /// `quiesce` observes the pool going fully idle after a burst of work.
    #[test]
    fn quiesce_waits_for_all_workers_to_park() {
        let pool = ThreadPool::empty();
        pool.ensure_at_least(2);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    std::hint::black_box(42);
                });
            }
        });
        assert!(
            pool.quiesce(std::time::Duration::from_secs(5)),
            "pool never quiesced after its queue drained"
        );
        assert_eq!(pool.parked_workers(), 2);
    }

    /// Regression: workers used to block on the completion condvar, so every
    /// finished task thundered the whole herd awake (and before that, an
    /// idle pool could spin). A quiescent pool must have every worker parked
    /// and accumulate zero wakeups while nothing is submitted — then wake
    /// and run new work. Uses a standalone pool so activity on the global
    /// pool from other tests can't interfere.
    #[test]
    fn quiescent_pool_parks_and_burns_no_wakeups() {
        let pool = ThreadPool::empty();
        pool.ensure_at_least(3);
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);

        // All workers go to sleep once the burst drains.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.parked_workers() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "workers never parked: {} of 3 after burst",
                pool.parked_workers()
            );
            thread::yield_now();
        }

        // And stay asleep: no wakeups of any kind while the pool is idle.
        let (parks_before, unparks_before, empty_before) = pool.park_stats();
        thread::sleep(std::time::Duration::from_millis(150));
        assert_eq!(pool.parked_workers(), 3, "a parked worker woke unprompted");
        let (parks_after, unparks_after, empty_after) = pool.park_stats();
        assert_eq!(parks_after, parks_before, "idle pool re-parked");
        assert_eq!(unparks_after, unparks_before, "idle pool unparked");
        assert_eq!(empty_after, empty_before, "idle pool had empty wakeups");

        // A new submission unparks a worker, which must run the task while
        // the submitting thread is still inside the scope body — the
        // helping-waiter path hasn't started yet, so only a woken worker
        // can complete it.
        pool.scope(|s| {
            let hits = &hits;
            s.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while hits.load(Ordering::Relaxed) < 65 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "parked workers never picked up the new task"
                );
                thread::yield_now();
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 65);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7], |x| x * 3), vec![21]);
        let empty: Vec<u32> = vec![];
        assert_eq!(
            par_map_slices(&empty, 4, |_, s| s.len()),
            Vec::<usize>::new()
        );
    }
}
