//! `mjoin-bencher` — an in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no cargo registry access, so external crates
//! can never resolve; this crate keeps the `benches/` files compiling and
//! running by reimplementing the slice of the criterion API they use. It is
//! wired into the bench crate under the package rename
//! `criterion = { package = "mjoin-bencher" }`.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples; the mean, median, and min per-iteration times are
//! printed as a table row. There is no statistical regression analysis or
//! HTML report — the workspace's real perf trajectory lives in the
//! `exp_par` binary's `BENCH_parallel_exec.json`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and report sink.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Create a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record input magnitude so the report can show throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group, id.0);
        run_one(&name, self.sample_size, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.group, id.0);
        run_one(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    /// End the group (report flushing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Input magnitude for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u64,
}

impl Bencher {
    /// Time `f`, recording one sample per configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: aim for samples of at
        // least ~2ms so Instant resolution noise stays below 0.1%.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(2).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;
        self.per_sample_iters = iters;
        let samples = self.samples.capacity();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample_iters: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.per_sample_iters as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let tp = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / median),
        None => String::new(),
    };
    println!(
        "{name:<40} min {}  median {}  mean {}{tp}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>8.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>8.2}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>8.2}ms", secs * 1e3)
    } else {
        format!("{secs:>8.3}s ")
    }
}

/// Declare a benchmark group: `criterion_group!(benches, f1, f2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        assert!(calls > 0);
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains('s'));
    }
}
