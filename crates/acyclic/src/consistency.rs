//! Local (pairwise) and global consistency, and semijoin fixpoints.
//!
//! Example 3 of the paper hinges on the distinction: its database is
//! *locally consistent* — every pairwise semijoin is a no-op — yet wildly
//! globally inconsistent (`⋈D` has a single tuple), so "it is useless to
//! apply a semijoin program to this database". These predicates make that
//! statement executable.

use mjoin_relation::{ops, CostLedger, Database};

/// Whether every pair of relations is consistent: for all `i, j`,
/// `π_{Xᵢ}(Rᵢ ⋈ Rⱼ) = Rᵢ` — equivalently `Rᵢ ⋉ Rⱼ = Rᵢ`.
pub fn pairwise_consistent(db: &Database) -> bool {
    for i in 0..db.len() {
        for j in 0..db.len() {
            if i == j {
                continue;
            }
            let reduced = ops::semijoin(db.relation(i), db.relation(j));
            if reduced.len() != db.relation(i).len() {
                return false;
            }
        }
    }
    true
}

/// Whether the database is globally consistent: every relation equals the
/// projection of `⋈D` onto its scheme (no dangling tuples at all).
pub fn globally_consistent(db: &Database) -> bool {
    let full = db.join_all();
    for rel in db.relations() {
        let proj =
            ops::project(&full, rel.schema().attrs()).expect("relation scheme ⊆ join scheme");
        if proj != *rel {
            return false;
        }
    }
    true
}

/// Apply pairwise semijoins until fixpoint (a "semijoin program" in the
/// classical sense, run to completion), charging each executed semijoin's
/// head to `ledger`. Returns the reduced database and the number of
/// semijoins that actually removed tuples.
///
/// On acyclic schemes this reaches global consistency; on cyclic schemes it
/// reaches only pairwise consistency — which, per Example 3, may remove
/// nothing at all.
pub fn semijoin_fixpoint(db: &Database, ledger: &mut CostLedger) -> (Database, usize) {
    let mut rels: Vec<_> = db.relations().to_vec();
    let mut effective = 0;
    loop {
        let mut changed = false;
        for i in 0..rels.len() {
            for j in 0..rels.len() {
                if i == j {
                    continue;
                }
                let before = rels[i].len();
                let reduced = ops::semijoin(&rels[i], &rels[j]);
                ledger.charge_generated(format!("R{i} ⋉ R{j}"), reduced.len());
                if reduced.len() != before {
                    changed = true;
                    effective += 1;
                    rels[i] = reduced;
                }
            }
        }
        if !changed {
            return (Database::from_relations(rels), effective);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::{relation_of_ints, Catalog};

    /// Acyclic chain with a dangling tuple in AB.
    fn dangling_chain() -> Database {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[9, 9]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 3]]).unwrap();
        Database::from_relations(vec![r, s])
    }

    #[test]
    fn dangling_tuple_breaks_both_consistencies() {
        let db = dangling_chain();
        assert!(!pairwise_consistent(&db));
        assert!(!globally_consistent(&db));
    }

    #[test]
    fn fixpoint_restores_consistency_on_acyclic() {
        let db = dangling_chain();
        let mut ledger = CostLedger::new();
        let (reduced, effective) = semijoin_fixpoint(&db, &mut ledger);
        assert!(effective >= 1);
        assert!(pairwise_consistent(&reduced));
        assert!(globally_consistent(&reduced));
        assert_eq!(reduced.relation(0).len(), 1);
        assert!(ledger.total() > 0);
    }

    #[test]
    fn triangle_pairwise_but_not_global() {
        // Classic 3-cycle: each pair joins consistently, but no tuple
        // survives the triangle.
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[0, 0], &[1, 1]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[0, 1], &[1, 0]]).unwrap();
        let t = relation_of_ints(&mut c, "CA", &[&[0, 0], &[1, 1]]).unwrap();
        let db = Database::from_relations(vec![r, s, t]);
        assert!(pairwise_consistent(&db));
        assert!(!globally_consistent(&db));
        // The fixpoint removes nothing: semijoins are useless here.
        let mut ledger = CostLedger::new();
        let (reduced, effective) = semijoin_fixpoint(&db, &mut ledger);
        assert_eq!(effective, 0);
        assert_eq!(reduced, db);
    }

    #[test]
    fn consistent_database_is_a_fixpoint() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 3]]).unwrap();
        let db = Database::from_relations(vec![r, s]);
        assert!(pairwise_consistent(&db));
        assert!(globally_consistent(&db));
    }
}
