//! `mjoin-acyclic` — the classical polynomial-time machinery for *acyclic*
//! database schemes that the paper's introduction builds on.
//!
//! * [`pairwise_consistent`] / [`globally_consistent`] /
//!   [`semijoin_fixpoint`]: the consistency notions behind Example 3's
//!   "semijoin programs are useless on this database" observation;
//! * [`full_reducer_program`] / [`fully_reduce`]: Bernstein–Goodman full
//!   reducers over the GYO join forest;
//! * [`monotone_join_tree`]: monotone join expressions (no intermediate
//!   larger than the final join, once globally consistent);
//! * [`yannakakis`]: Yannakakis' project-join algorithm.

#![warn(missing_docs)]

pub mod consistency;
pub mod full_reducer;
pub mod monotone;
pub mod yannakakis;

pub use consistency::{globally_consistent, pairwise_consistent, semijoin_fixpoint};
pub use full_reducer::{full_reducer_program, fully_reduce, CyclicSchemeError};
pub use monotone::monotone_join_tree;
pub use yannakakis::yannakakis;
