//! Yannakakis' algorithm for project-join queries over acyclic schemes.
//!
//! The paper's intro cites Yannakakis (VLDB '81) as the extension of the
//! full-reducer method to *project-join* expressions: compute
//! `π_out(⋈D)` in time polynomial in input + output. The algorithm:
//! (1) fully reduce; (2) sweep the join forest bottom-up, joining each node
//! into its parent and immediately projecting onto the attributes still
//! needed — the output attributes plus any attribute shared with the rest of
//! the forest.

use crate::full_reducer::{fully_reduce, CyclicSchemeError};
use mjoin_hypergraph::{gyo, DbScheme};
use mjoin_relation::{ops, AttrSet, CostLedger, Database, Relation, Schema};

/// Compute `π_out(⋈ D)` over an acyclic scheme, with §2.3-style cost
/// accounting (inputs + every intermediate, including the reduction phase).
///
/// `out` may be any subset of the scheme's attributes; pass
/// `scheme.all_attrs()` for the full join.
pub fn yannakakis(
    scheme: &DbScheme,
    db: &Database,
    out: &AttrSet,
) -> Result<(Relation, CostLedger), CyclicSchemeError> {
    let g = gyo(scheme);
    if !g.acyclic {
        return Err(CyclicSchemeError);
    }
    let mut ledger = CostLedger::new();
    db.charge_inputs(&mut ledger);

    // Phase 1: full reduction.
    let (reduced, red_ledger) = fully_reduce(scheme, db)?;
    ledger.absorb(red_ledger);

    // Phase 2: bottom-up join-and-project along the elimination order.
    // `acc[p]` is the partial result accumulated at node `p`.
    let mut acc: Vec<Relation> = reduced.relations().to_vec();
    // Attributes needed "above" each node: out ∪ attributes of nodes not yet
    // merged. We recompute lazily: when merging ear e into parent p, the
    // attributes worth keeping are out ∪ attrs of every relation other than
    // the ones already folded into p's accumulator. Track folded sets.
    let n = scheme.num_relations();
    let mut folded: Vec<AttrSet> = (0..n).map(|i| scheme.attrs_of(i).clone()).collect();
    let mut alive: Vec<bool> = vec![true; n];

    let mut roots: Vec<usize> = Vec::new();
    for &(ear, parent) in &g.elimination {
        match parent {
            Some(p) => {
                let joined = ops::join(&acc[p], &acc[ear]);
                // Attributes still relevant: the output, plus anything shared
                // with relations not yet folded into this accumulator.
                let merged_attrs = folded[p].union(&folded[ear]);
                let mut needed = out.intersect(&merged_attrs);
                for i in 0..n {
                    if alive[i] && i != p && i != ear {
                        needed.union_with(&folded[i].intersect(&merged_attrs));
                    }
                }
                let schema = Schema::from_set(&needed);
                let projected =
                    ops::project(&joined, schema.attrs()).expect("needed ⊆ joined scheme");
                ledger.charge_generated(format!("merge R{ear} into R{p}"), joined.len());
                ledger.charge_generated(format!("project at R{p}"), projected.len());
                acc[p] = projected;
                folded[p] = merged_attrs;
                alive[ear] = false;
            }
            None => roots.push(ear),
        }
    }

    // Join the per-component results (Cartesian across components, as the
    // schemes share nothing) and take the final projection.
    let mut result = Relation::nullary_unit();
    for r in roots {
        result = ops::join(&result, &acc[r]);
    }
    let final_schema = Schema::from_set(&out.intersect(&scheme.all_attrs()));
    let result = ops::project(&result, final_schema.attrs()).expect("out ⊆ scheme");
    ledger.charge_generated("final projection", result.len());
    Ok((result, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn chain_db() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 2], &[5, 2], &[9, 9]]).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &[&[2, 3], &[2, 4]]).unwrap();
        let r3 = relation_of_ints(&mut c, "CD", &[&[3, 6], &[4, 6]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3]))
    }

    #[test]
    fn full_join_matches_naive() {
        let (_c, s, db) = chain_db();
        let (rel, ledger) = yannakakis(&s, &db, &s.all_attrs()).unwrap();
        assert_eq!(rel, db.join_all());
        assert!(ledger.total() > 0);
    }

    #[test]
    fn projection_matches_naive_projection() {
        let (c, s, db) = chain_db();
        let a = c.lookup("A").unwrap();
        let d = c.lookup("D").unwrap();
        let out = AttrSet::from_iter_ids([a, d]);
        let (rel, _) = yannakakis(&s, &db, &out).unwrap();
        let naive = ops::project(&db.join_all(), Schema::from_set(&out).attrs()).unwrap();
        assert_eq!(rel, naive);
    }

    #[test]
    fn intermediates_polynomial_no_blowup() {
        // On a globally inconsistent chain, the reduction phase kills
        // dangling tuples before any join, so no intermediate exceeds
        // |input| + |output| here.
        let (_c, s, db) = chain_db();
        let (rel, ledger) = yannakakis(&s, &db, &s.all_attrs()).unwrap();
        let bound = db.total_tuples() + rel.len() as u64;
        assert!(ledger.peak_generated() <= bound);
    }

    #[test]
    fn cyclic_scheme_rejected() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CA"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[0, 0]]).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &[&[0, 0]]).unwrap();
        let r3 = relation_of_ints(&mut c, "CA", &[&[0, 0]]).unwrap();
        let db = Database::from_relations(vec![r1, r2, r3]);
        assert!(yannakakis(&s, &db, &s.all_attrs()).is_err());
    }

    #[test]
    fn disconnected_forest_handled() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "XY"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let r2 = relation_of_ints(&mut c, "XY", &[&[7, 8], &[7, 9]]).unwrap();
        let db = Database::from_relations(vec![r1, r2]);
        let (rel, _) = yannakakis(&s, &db, &s.all_attrs()).unwrap();
        assert_eq!(rel, db.join_all());
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn empty_output_projection() {
        let (_c, s, db) = chain_db();
        let (rel, _) = yannakakis(&s, &db, &AttrSet::new()).unwrap();
        // Nonempty join projects to the nullary unit.
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.schema().arity(), 0);
    }
}
