//! Monotone join expressions for acyclic schemes.
//!
//! After a full reducer has made an acyclic database globally consistent,
//! joining the relations along the join forest — each new relation adjacent
//! (in the forest) to the already-joined set — guarantees every intermediate
//! result is a projection-extension of the final join restricted to the
//! covered schemes, so no intermediate exceeds the final size (Beeri–Fagin–
//! Maier–Yannakakis). This is the paper's "polynomial for acyclic schemes"
//! baseline.

use crate::full_reducer::CyclicSchemeError;
use mjoin_expr::JoinTree;
use mjoin_hypergraph::{gyo, DbScheme};

/// A monotone (left-deep) join order for a **connected, acyclic** scheme:
/// the reverse GYO elimination order, in which every prefix is connected in
/// the join tree.
pub fn monotone_join_tree(scheme: &DbScheme) -> Result<JoinTree, CyclicSchemeError> {
    let g = gyo(scheme);
    if !g.acyclic {
        return Err(CyclicSchemeError);
    }
    // Reverse elimination order: the root first, then each ear after its
    // parent (elimination lists children before parents, so the reverse
    // lists every parent before its children).
    let order: Vec<usize> = g.elimination.iter().rev().map(|&(e, _)| e).collect();
    Ok(JoinTree::left_deep(&order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_reducer::fully_reduce;
    use mjoin_expr::evaluate;
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn chain_db() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD", "DE"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 2], &[5, 2]]).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &[&[2, 3], &[2, 4]]).unwrap();
        let r3 = relation_of_ints(&mut c, "CD", &[&[3, 6], &[4, 6], &[9, 9]]).unwrap();
        let r4 = relation_of_ints(&mut c, "DE", &[&[6, 7]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3, r4]))
    }

    #[test]
    fn monotone_tree_is_cpf_linear_and_exact() {
        let (_c, s, _db) = chain_db();
        let t = monotone_join_tree(&s).unwrap();
        assert!(t.is_linear());
        assert!(t.is_cpf(&s));
        assert!(t.is_exactly_over(&s));
    }

    #[test]
    fn intermediates_bounded_after_full_reduction() {
        let (_c, s, db) = chain_db();
        let (reduced, _) = fully_reduce(&s, &db).unwrap();
        let t = monotone_join_tree(&s).unwrap();
        let res = evaluate(&t, &reduced);
        let final_size = res.relation.len() as u64;
        assert!(final_size > 0);
        for entry in res.ledger.entries() {
            if matches!(entry.kind, mjoin_relation::CostKind::Generated) {
                assert!(
                    entry.tuples <= final_size,
                    "monotone: intermediate {} > final {final_size}",
                    entry.tuples
                );
            }
        }
        // And the result is the true join.
        assert_eq!(res.relation, db.join_all());
    }

    #[test]
    fn cyclic_rejected() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CA"]);
        assert_eq!(monotone_join_tree(&s), Err(CyclicSchemeError));
    }

    #[test]
    fn star_monotone_order() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["XA", "XB", "XC"]);
        let t = monotone_join_tree(&s).unwrap();
        assert!(t.is_cpf(&s));
        assert!(t.is_exactly_over(&s));
    }
}
