//! Bernstein–Goodman full reducers for acyclic schemes.
//!
//! A *full reducer* is a sequence of semijoins that makes an acyclic
//! database globally consistent (removes every dangling tuple). It follows
//! the GYO join forest: one upward pass (each parent reduced by each child,
//! in elimination order) and one downward pass (each child reduced by its
//! parent, in reverse). The paper's intro: acyclic schemes are solved by a
//! full reducer followed by a monotone join expression.

use mjoin_hypergraph::{gyo, DbScheme};
use mjoin_program::{Program, ProgramBuilder, Reg};
use mjoin_relation::{ops, CostLedger, Database};
use std::fmt;

/// Error: the scheme is cyclic, so no full reducer exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclicSchemeError;

impl fmt::Display for CyclicSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "full reducers exist only for acyclic database schemes")
    }
}

impl std::error::Error for CyclicSchemeError {}

/// Build the full-reducer *program* for an acyclic scheme: pure semijoin
/// statements over the base relations (legal per §2.2, where a semijoin head
/// may be a relation scheme of 𝒟). The program's result register is the
/// root of the (first) join-forest component; what matters is the side
/// effect of reducing every base register.
pub fn full_reducer_program(scheme: &DbScheme) -> Result<Program, CyclicSchemeError> {
    let g = gyo(scheme);
    if !g.acyclic {
        return Err(CyclicSchemeError);
    }
    let mut b = ProgramBuilder::new(scheme);
    // Upward pass: in elimination order, the ear reduces its parent
    // (children are eliminated before parents, so by the time a node is
    // consumed it has absorbed all its children's constraints).
    for &(ear, parent) in &g.elimination {
        if let Some(p) = parent {
            b.semijoin(Reg::Base(p), Reg::Base(ear));
        }
    }
    // Downward pass: in reverse order, each parent reduces its ear.
    for &(ear, parent) in g.elimination.iter().rev() {
        if let Some(p) = parent {
            b.semijoin(Reg::Base(ear), Reg::Base(p));
        }
    }
    let root = g.roots().first().copied().unwrap_or(0);
    Ok(b.finish(Reg::Base(root)))
}

/// Apply the full reducer directly to a database, returning the reduced
/// database and the cost of the semijoin sequence (each executed semijoin's
/// head, per §2.3 program costing — inputs are *not* charged here so the
/// ledger composes with a subsequent join phase).
pub fn fully_reduce(
    scheme: &DbScheme,
    db: &Database,
) -> Result<(Database, CostLedger), CyclicSchemeError> {
    let g = gyo(scheme);
    if !g.acyclic {
        return Err(CyclicSchemeError);
    }
    let mut rels: Vec<_> = db.relations().to_vec();
    let mut ledger = CostLedger::new();
    let mut reduce = |rels: &mut Vec<mjoin_relation::Relation>, target: usize, by: usize| {
        let reduced = ops::semijoin(&rels[target], &rels[by]);
        ledger.charge_generated(format!("R{target} ⋉ R{by}"), reduced.len());
        rels[target] = reduced;
    };
    for &(ear, parent) in &g.elimination {
        if let Some(p) = parent {
            reduce(&mut rels, p, ear);
        }
    }
    for &(ear, parent) in g.elimination.iter().rev() {
        if let Some(p) = parent {
            reduce(&mut rels, ear, p);
        }
    }
    Ok((Database::from_relations(rels), ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::globally_consistent;
    use mjoin_program::{execute, validate};
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn chain() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        // Dangling tuples at both ends.
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 2], &[7, 7]]).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &[&[2, 3], &[8, 8]]).unwrap();
        let r3 = relation_of_ints(&mut c, "CD", &[&[3, 4], &[9, 9]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3]))
    }

    /// Execute the reducer and return the reduced database.
    fn run_reducer(scheme: &DbScheme, db: &Database) -> Database {
        fully_reduce(scheme, db).unwrap().0
    }

    #[test]
    fn reducer_yields_global_consistency() {
        let (_c, s, db) = chain();
        assert!(!globally_consistent(&db));
        let (reduced, ledger) = fully_reduce(&s, &db).unwrap();
        assert!(globally_consistent(&reduced));
        // The join is unchanged by reduction.
        assert_eq!(reduced.join_all(), db.join_all());
        for i in 0..db.len() {
            assert_eq!(reduced.relation(i).len(), 1, "relation {i}");
        }
        // 4 semijoins charged.
        assert_eq!(ledger.entries().len(), 4);
    }

    #[test]
    fn reducer_program_agrees_with_direct_execution() {
        let (_c, s, db) = chain();
        let p = full_reducer_program(&s).unwrap();
        validate(&p, &s).unwrap();
        let (reduced, _) = fully_reduce(&s, &db).unwrap();
        // Check one register's final value through the interpreter.
        for i in 0..db.len() {
            let mut p2 = p.clone();
            p2.result = Reg::Base(i);
            assert_eq!(*execute(&p2, &db).result, *reduced.relation(i));
        }
    }

    #[test]
    fn reducer_statement_count_is_linear() {
        let (_c, s, _db) = chain();
        let p = full_reducer_program(&s).unwrap();
        // 2 · (r − roots) semijoins for a connected acyclic scheme.
        assert_eq!(p.len(), 4);
        let (projects, joins, semijoins) = p.kind_counts();
        assert_eq!((projects, joins), (0, 0));
        assert_eq!(semijoins, 4);
    }

    #[test]
    fn cyclic_scheme_rejected() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CA"]);
        assert_eq!(full_reducer_program(&s), Err(CyclicSchemeError));
    }

    #[test]
    fn star_scheme_reduction() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABX", "XC", "XD"]);
        let r1 = relation_of_ints(&mut c, "ABX", &[&[1, 2, 5], &[1, 2, 6]]).unwrap();
        let r2 = relation_of_ints(&mut c, "XC", &[&[5, 3], &[7, 3]]).unwrap();
        let r3 = relation_of_ints(&mut c, "XD", &[&[5, 4]]).unwrap();
        let db = Database::from_relations(vec![r1, r2, r3]);
        let reduced = run_reducer(&s, &db);
        assert!(globally_consistent(&reduced));
        assert_eq!(reduced.join_all(), db.join_all());
    }

    #[test]
    fn disconnected_forest_reduces_each_component() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "XY"]);
        let r1 = relation_of_ints(&mut c, "AB", &[&[1, 2], &[5, 5]]).unwrap();
        let r2 = relation_of_ints(&mut c, "BC", &[&[2, 3]]).unwrap();
        let r3 = relation_of_ints(&mut c, "XY", &[&[0, 0]]).unwrap();
        let db = Database::from_relations(vec![r1, r2, r3]);
        let reduced = run_reducer(&s, &db);
        assert_eq!(reduced.relation(0).len(), 1);
        assert_eq!(reduced.relation(2).len(), 1);
    }
}
