//! Human-readable pipeline reports: what `EXPLAIN ANALYZE` is to a SQL
//! engine, for the paper's tree → CPF tree → program pipeline.

use crate::choice::ChoicePolicy;
use crate::pipeline::{run_pipeline, PipelineError, PipelineRun};
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_program::display;
use mjoin_relation::{Catalog, Database};
use std::fmt::Write as _;

/// Run the pipeline and render a full report: the input tree with per-node
/// sub-join sizes, the CPF tree, the program with per-statement head sizes,
/// and the two cost totals against the Theorem 2 bound.
pub fn explain(
    scheme: &DbScheme,
    t1: &JoinTree,
    db: &Database,
    policy: &mut dyn ChoicePolicy,
    catalog: &Catalog,
) -> Result<String, PipelineError> {
    let run = run_pipeline(scheme, t1, db, policy)?;
    Ok(render_report(scheme, t1, db, &run, catalog))
}

fn render_report(
    scheme: &DbScheme,
    t1: &JoinTree,
    db: &Database,
    run: &PipelineRun,
    catalog: &Catalog,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== input join expression T1 ==");
    let _ = writeln!(out, "{}", t1.display(scheme, catalog));
    let _ = writeln!(
        out,
        "CPF: {}   linear: {}   cost(T1(D)) = {}",
        t1.is_cpf(scheme),
        t1.is_linear(),
        run.tree_cost
    );
    let _ = writeln!(out, "per-node sub-join sizes:");
    for set in t1.node_sets() {
        let size = db.join_of(&set.to_vec()).len();
        let _ = writeln!(out, "  |⋈D{set}| = {size}");
    }

    let _ = writeln!(out, "\n== Algorithm 1: CPF tree T2 ==");
    let _ = writeln!(out, "{}", run.derivation.cpf_tree.display(scheme, catalog));

    let _ = writeln!(out, "\n== Algorithm 2: program P ==");
    let text = display::render(&run.derivation.program, scheme, catalog);
    for (line, size) in text.lines().zip(&run.exec.head_sizes) {
        let _ = writeln!(out, "  {line:<50} -- |head| = {size}");
    }

    let _ = writeln!(out, "\n== costs ==");
    let _ = writeln!(out, "cost(T1(D))   = {}", run.tree_cost);
    let _ = writeln!(out, "cost(P(D))    = {}", run.program_cost());
    let _ = writeln!(out, "peak resident = {}", run.exec.peak_resident);
    let _ = writeln!(
        out,
        "Theorem 2: {} < {} x {} = {}  [{}]",
        run.program_cost(),
        run.quasi_factor,
        run.tree_cost,
        run.quasi_factor as u128 * run.tree_cost as u128,
        if run.bound_holds() {
            "holds"
        } else {
            "VIOLATED"
        }
    );
    let _ = writeln!(out, "result tuples = {}", run.exec.result.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::FirstChoice;
    use mjoin_expr::parse_join_tree;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn setup() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        let db = Database::from_relations(vec![
            relation_of_ints(&mut c, "ABC", &[&[1, 2, 3]]).unwrap(),
            relation_of_ints(&mut c, "CDE", &[&[3, 4, 5]]).unwrap(),
            relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap(),
            relation_of_ints(&mut c, "GHA", &[&[7, 8, 1]]).unwrap(),
        ]);
        (c, s, db)
    }

    #[test]
    fn report_contains_all_sections() {
        let (c, s, db) = setup();
        let t1 = parse_join_tree(&c, &s, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
        let report = explain(&s, &t1, &db, &mut FirstChoice, &c).unwrap();
        assert!(report.contains("== input join expression T1 =="));
        assert!(report.contains("== Algorithm 1: CPF tree T2 =="));
        assert!(report.contains("== Algorithm 2: program P =="));
        assert!(report.contains("-- |head| ="));
        assert!(report.contains("[holds]"));
        assert!(report.contains("result tuples = 1"));
    }

    #[test]
    fn per_statement_sizes_align() {
        let (c, s, db) = setup();
        let t1 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
        let report = explain(&s, &t1, &db, &mut FirstChoice, &c).unwrap();
        // One annotated line per statement.
        let annotated = report.lines().filter(|l| l.contains("-- |head|")).count();
        let d = crate::pipeline::derive(&s, &t1).unwrap();
        assert_eq!(annotated, d.program.len());
    }

    #[test]
    fn errors_propagate() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "CD"]);
        let db = Database::from_relations(vec![
            relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap(),
            relation_of_ints(&mut c, "CD", &[&[3, 4]]).unwrap(),
        ]);
        let t = JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1));
        assert!(explain(&s, &t, &db, &mut FirstChoice, &c).is_err());
    }
}
