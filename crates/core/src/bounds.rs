//! Executable forms of the paper's theorems, used by tests and experiments.

use crate::choice::ChoicePolicy;
use crate::pipeline::{run_pipeline, PipelineError};
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_relation::Database;

/// A Theorem 2 measurement on one `(T₁, D)` pair.
#[derive(Debug, Clone)]
pub struct BoundReport {
    /// `cost(T₁(D))`.
    pub tree_cost: u64,
    /// `cost(P(D))` for the derived program.
    pub program_cost: u64,
    /// `r(a+5)`.
    pub quasi_factor: u64,
    /// Observed ratio `cost(P)/cost(T₁)` (0 when `tree_cost` is 0, which
    /// cannot happen for nonempty inputs).
    pub ratio: f64,
    /// Whether `cost(P(D)) < r(a+5) · cost(T₁(D))`.
    pub holds: bool,
    /// Number of statements in the program (Claim C bounds it by `r(a+5)`).
    pub num_statements: usize,
}

/// Run the pipeline and check Theorem 2's inequality and Claim C.
///
/// The caller is responsible for `⋈D ≠ ∅` — the theorem's hypothesis. (On an
/// empty join the bound can genuinely fail; Example 3's construction relies
/// on nonemptiness.)
pub fn check_theorem2(
    scheme: &DbScheme,
    t1: &JoinTree,
    db: &Database,
    policy: &mut dyn ChoicePolicy,
) -> Result<BoundReport, PipelineError> {
    let run = run_pipeline(scheme, t1, db, policy)?;
    let tree_cost = run.tree_cost;
    let program_cost = run.program_cost();
    let num_statements = run.derivation.program.len();
    Ok(BoundReport {
        tree_cost,
        program_cost,
        quasi_factor: run.quasi_factor,
        ratio: if tree_cost == 0 {
            0.0
        } else {
            program_cost as f64 / tree_cost as f64
        },
        holds: run.bound_holds(),
        num_statements,
    })
}

/// Theorem 1 as a predicate: the program derived from `t1` computes `⋈D`.
pub fn check_theorem1(
    scheme: &DbScheme,
    t1: &JoinTree,
    db: &Database,
    policy: &mut dyn ChoicePolicy,
) -> Result<bool, PipelineError> {
    let run = run_pipeline(scheme, t1, db, policy)?;
    Ok(*run.exec.result == db.join_all())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::{FirstChoice, SeededChoice};
    use mjoin_expr::parse_join_tree;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn setup() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        let r1 = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CDE", &[&[3, 4, 5], &[3, 4, 6]]).unwrap();
        let r3 = relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap();
        let r4 = relation_of_ints(&mut c, "GHA", &[&[7, 8, 1]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3, r4]))
    }

    #[test]
    fn theorems_hold_on_paper_scheme() {
        let (c, s, db) = setup();
        assert!(!db.join_all().is_empty(), "test needs ⋈D ≠ ∅");
        for text in [
            "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)",
            "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA",
            "ABC ⋈ (CDE ⋈ (EFG ⋈ GHA))",
            "(ABC ⋈ GHA) ⋈ (CDE ⋈ EFG)",
        ] {
            let t1 = parse_join_tree(&c, &s, text).unwrap();
            assert!(
                check_theorem1(&s, &t1, &db, &mut FirstChoice).unwrap(),
                "{text}"
            );
            let report = check_theorem2(&s, &t1, &db, &mut FirstChoice).unwrap();
            assert!(report.holds, "{text}: {report:?}");
            assert!((report.num_statements as u64) < report.quasi_factor);
        }
    }

    #[test]
    fn bound_holds_across_policies() {
        let (c, s, db) = setup();
        let t1 = parse_join_tree(&c, &s, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
        for seed in 0..20 {
            let mut p = SeededChoice::new(seed);
            let report = check_theorem2(&s, &t1, &db, &mut p).unwrap();
            assert!(report.holds, "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn report_ratio_is_consistent() {
        let (c, s, db) = setup();
        let t1 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
        let r = check_theorem2(&s, &t1, &db, &mut FirstChoice).unwrap();
        let expect = r.program_cost as f64 / r.tree_cost as f64;
        assert!((r.ratio - expect).abs() < 1e-12);
        assert!(r.ratio < r.quasi_factor as f64);
    }
}
