//! `mjoin-core` — the contribution of Morishita's PODS '92 paper *"Avoiding
//! Cartesian Products in Programs for Multiple Joins"*.
//!
//! * [`algorithm1`]: rewrite any join expression tree over a connected
//!   database scheme into a Cartesian-product-free tree (with pluggable
//!   [`ChoicePolicy`] for its nondeterminism, and exhaustive enumeration of
//!   all outcomes for small inputs);
//! * [`algorithm2`]: derive a join/semijoin/projection program from a CPF
//!   tree;
//! * [`pipeline`]: the composition — from an optimal join expression it
//!   yields a *quasi-optimal program*, whose cost is within the
//!   data-independent factor `r(a+5)` of the optimal join expression's cost
//!   (Theorem 2), while computing exactly `⋈D` (Theorem 1);
//! * [`bounds`]: the theorems as executable checks.

#![warn(missing_docs)]

pub mod ablate;
pub mod alg1;
pub mod alg2;
pub mod bounds;
pub mod choice;
pub mod explain;
pub mod pipeline;

pub use ablate::{ablate_program, Ablation};
pub use alg1::{algorithm1, algorithm1_all_outcomes, algorithm1_with_policy, Alg1Error};
pub use alg2::{algorithm2, algorithm2_with_provenance, Alg2Error, Alg2Provenance, StmtOrigin};
pub use bounds::{check_theorem1, check_theorem2, BoundReport};
pub use choice::{ChoicePolicy, CostAwareChoice, FirstChoice, ScriptedChoice, SeededChoice};
pub use explain::explain;
pub use pipeline::{
    derive, derive_with_policy, run_pipeline, run_pipeline_parallel, run_pipeline_with, Derivation,
    PipelineError, PipelineRun,
};
