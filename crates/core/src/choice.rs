//! Choice policies for Algorithm 1's nondeterminism.
//!
//! Steps 1 and 3 of Algorithm 1 "may have many choices to select a database
//! scheme from Γ" (Example 5 derives 16 different CPF trees from one input).
//! A [`ChoicePolicy`] resolves those choices; the theorems hold for *every*
//! policy, which the property tests exercise via [`enumerate`]-style
//! exhaustion in `alg1`.

use mjoin_hypergraph::RelSet;

/// Resolves a nondeterministic choice among candidate components.
///
/// Candidates are always presented in a canonical (sorted) order, so a policy
/// is reproducible given its own state.
pub trait ChoicePolicy {
    /// Pick an index into `candidates` (guaranteed nonempty).
    fn choose(&mut self, candidates: &[RelSet]) -> usize;

    /// Step 3's variant: pick which candidate to merge into the current set
    /// `x`. Defaults to [`ChoicePolicy::choose`]; cost-aware policies
    /// override it to look at the merged result.
    fn choose_merge(&mut self, _x: RelSet, candidates: &[RelSet]) -> usize {
        self.choose(candidates)
    }
}

/// Greedy cost-aware choices: at each nondeterministic step, pick the
/// candidate minimizing (an estimate of) the resulting sub-join size, as
/// supplied by `size_of`. This is the natural "extension" policy: Theorem 2
/// holds for *any* policy, but a good policy tightens the constants (see
/// experiment E7.3).
pub struct CostAwareChoice<F: FnMut(RelSet) -> u64> {
    size_of: F,
}

impl<F: FnMut(RelSet) -> u64> CostAwareChoice<F> {
    /// A policy asking `size_of(set)` for `|⋈ D[set]|` (exact or estimated).
    pub fn new(size_of: F) -> Self {
        CostAwareChoice { size_of }
    }

    fn argmin(&mut self, sets: impl Iterator<Item = RelSet>) -> usize {
        let mut best = 0;
        let mut best_size = u64::MAX;
        for (i, s) in sets.enumerate() {
            let size = (self.size_of)(s);
            if size < best_size {
                best = i;
                best_size = size;
            }
        }
        best
    }
}

impl<F: FnMut(RelSet) -> u64> ChoicePolicy for CostAwareChoice<F> {
    fn choose(&mut self, candidates: &[RelSet]) -> usize {
        self.argmin(candidates.iter().copied())
    }

    fn choose_merge(&mut self, x: RelSet, candidates: &[RelSet]) -> usize {
        self.argmin(candidates.iter().map(|&w| x.union(w)))
    }
}

/// Always picks the first (smallest) candidate — fully deterministic.
#[derive(Debug, Clone, Default)]
pub struct FirstChoice;

impl ChoicePolicy for FirstChoice {
    fn choose(&mut self, _candidates: &[RelSet]) -> usize {
        0
    }
}

/// Seeded pseudo-random choices (SplitMix64; implemented inline so the core
/// crate stays dependency-free).
#[derive(Debug, Clone)]
pub struct SeededChoice {
    state: u64,
}

impl SeededChoice {
    /// A policy with the given seed.
    pub fn new(seed: u64) -> Self {
        SeededChoice { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (public domain, Vigna).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl ChoicePolicy for SeededChoice {
    fn choose(&mut self, candidates: &[RelSet]) -> usize {
        (self.next_u64() % candidates.len() as u64) as usize
    }
}

/// Replays a recorded choice script, then falls back to first-choice. Used
/// by the exhaustive enumeration of Algorithm 1 outcomes.
#[derive(Debug, Clone, Default)]
pub struct ScriptedChoice {
    script: Vec<usize>,
    cursor: usize,
    /// Records `(index chosen, number of candidates)` for every decision —
    /// including the fallback ones — so the enumerator can extend the script.
    pub taken: Vec<(usize, usize)>,
}

impl ScriptedChoice {
    /// A policy that replays `script`.
    pub fn new(script: Vec<usize>) -> Self {
        ScriptedChoice {
            script,
            cursor: 0,
            taken: Vec::new(),
        }
    }
}

impl ChoicePolicy for ScriptedChoice {
    fn choose(&mut self, candidates: &[RelSet]) -> usize {
        let pick = if self.cursor < self.script.len() {
            self.script[self.cursor].min(candidates.len() - 1)
        } else {
            0
        };
        self.cursor += 1;
        self.taken.push((pick, candidates.len()));
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(n: usize) -> Vec<RelSet> {
        (0..n).map(RelSet::singleton).collect()
    }

    #[test]
    fn first_choice_is_zero() {
        let mut p = FirstChoice;
        assert_eq!(p.choose(&cands(5)), 0);
        assert_eq!(p.choose(&cands(1)), 0);
    }

    #[test]
    fn seeded_choice_is_reproducible_and_in_range() {
        let mut a = SeededChoice::new(42);
        let mut b = SeededChoice::new(42);
        for n in [1usize, 2, 3, 7, 10] {
            let ca = a.choose(&cands(n));
            let cb = b.choose(&cands(n));
            assert_eq!(ca, cb);
            assert!(ca < n);
        }
        // Different seeds eventually diverge.
        let mut c = SeededChoice::new(43);
        let picks_a: Vec<_> = (0..20).map(|_| a.choose(&cands(10))).collect();
        let picks_c: Vec<_> = (0..20).map(|_| c.choose(&cands(10))).collect();
        assert_ne!(picks_a, picks_c);
    }

    #[test]
    fn scripted_choice_replays_and_records() {
        let mut p = ScriptedChoice::new(vec![2, 0]);
        assert_eq!(p.choose(&cands(4)), 2);
        assert_eq!(p.choose(&cands(3)), 0);
        assert_eq!(p.choose(&cands(2)), 0); // past script: fallback
        assert_eq!(p.taken, vec![(2, 4), (0, 3), (0, 2)]);
    }

    #[test]
    fn scripted_choice_clamps_out_of_range() {
        let mut p = ScriptedChoice::new(vec![9]);
        assert_eq!(p.choose(&cands(3)), 2);
    }
}
