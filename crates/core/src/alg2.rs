//! **Algorithm 2** — deriving a join/semijoin/projection program from a CPF
//! join expression tree.
//!
//! The algorithm attaches a register to every leaf, then visits the set `S`
//! of the root and all internal nodes that are right children, bottom-up.
//! For each `𝒱 ∈ S` it walks the left spine `𝒱₀, 𝒱₁, …, 𝒱ₙ = 𝒱` (with `𝒲ᵢ`
//! the right child of `𝒱ᵢ`) and emits statements per steps 1–18 of the
//! paper. The "complicated" interleaving of joins, projections and semijoins
//! is exactly what bounds every statement's head by the size of some
//! `⋈ D[𝒰]` for a node `𝒰` of the *original* tree `T₁` (Theorem 2).

use mjoin_expr::JoinTree;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_program::{Program, ProgramBuilder, Reg};
use mjoin_relation::AttrSet;
use std::fmt;

/// Where one statement of a derived program came from: the paper step of
/// Algorithm 2 that emitted it, and the S-node `𝒱` being processed at the
/// time (as its set of base relations). One entry per statement, in
/// statement order — the raw material for the analyzer's tree-node
/// attribution of Theorem-2 bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtOrigin {
    /// The step number in the paper's Algorithm 2 listing (1–18).
    pub step: u8,
    /// The relation set of the S-node whose spine walk emitted this
    /// statement.
    pub node: RelSet,
}

/// Per-statement provenance for a whole derived program.
pub type Alg2Provenance = Vec<StmtOrigin>;

/// Errors from Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Alg2Error {
    /// The database scheme is not connected.
    SchemeNotConnected,
    /// The input tree is not exactly over the scheme.
    TreeNotExactlyOver,
    /// The input tree is not Cartesian-product-free; Algorithm 2 is only
    /// defined (and its cost bound only holds) for CPF trees.
    TreeNotCpf,
}

impl fmt::Display for Alg2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alg2Error::SchemeNotConnected => {
                write!(f, "Algorithm 2 requires a connected database scheme")
            }
            Alg2Error::TreeNotExactlyOver => {
                write!(f, "input tree must be exactly over the database scheme")
            }
            Alg2Error::TreeNotCpf => {
                write!(f, "Algorithm 2 requires a Cartesian-product-free tree")
            }
        }
    }
}

impl std::error::Error for Alg2Error {}

struct Deriver<'a> {
    builder: ProgramBuilder,
    scheme: &'a DbScheme,
    next_v: usize,
    next_f: usize,
    origins: Alg2Provenance,
}

impl Deriver<'_> {
    /// Record the origin of the statement the builder just emitted.
    fn mark(&mut self, step: u8, node: RelSet) {
        self.origins.push(StmtOrigin { step, node });
        debug_assert_eq!(self.origins.len(), self.builder.len());
    }

    /// Process a node of `S` (the root, or any right child): returns the
    /// register attached to it, holding `⋈ D[𝒱]` at runtime.
    fn process(&mut self, node: &JoinTree) -> Reg {
        // Leaves were "visited first" in the paper; attaching is just using
        // the base register.
        let JoinTree::Join(_, _) = node else {
            let JoinTree::Leaf(i) = node else {
                unreachable!()
            };
            return Reg::Base(*i);
        };

        // Walk down the left branch collecting right children 𝒲ₙ … 𝒲₁.
        let mut ws_rev: Vec<&JoinTree> = Vec::new();
        let mut cur = node;
        while let JoinTree::Join(l, r) = cur {
            ws_rev.push(r);
            cur = l;
        }
        let JoinTree::Leaf(v0) = cur else {
            unreachable!()
        };

        // Visit the 𝒲ᵢ (members of S or leaves) bottom-up first.
        let node_set = node.rel_set();
        let w_regs: Vec<Reg> = ws_rev.iter().rev().map(|w| self.process(w)).collect();
        let w_attrs: Vec<AttrSet> = w_regs
            .iter()
            .map(|&r| self.builder.scheme_of(r).clone())
            .collect();
        let n = w_regs.len();

        // Step 1: create V, initialized to R(𝒱₀).
        self.next_v += 1;
        let v = self
            .builder
            .new_temp_alias(format!("V{}", self.next_v), Reg::Base(*v0));

        // Steps 2–16: the outer for-loop over i = 1..n.
        for i in 1..=n {
            let wi = &w_attrs[i - 1];
            let v_attrs = self.builder.scheme_of(v).clone();

            // Step 3: ℱ = { 𝒲ⱼ | 1 ≤ j < i, 𝒲ⱼ ∩ 𝒲ᵢ ⊄ V }.
            let f_members: Vec<usize> = (1..i)
                .filter(|&j| {
                    let shared = w_attrs[j - 1].intersect(wi);
                    !shared.is_subset(&v_attrs)
                })
                .collect();

            if v_attrs.intersects(wi) {
                // Steps 5–6.
                for &j in &f_members {
                    self.builder.join(v, v, w_regs[j - 1]);
                    self.mark(5, node_set);
                }
                self.builder.semijoin(v, w_regs[i - 1]);
                self.mark(6, node_set);
            } else {
                // Steps 9–14. For a CPF tree ℱ is nonempty here: 𝒱ᵢ₋₁ and
                // 𝒲ᵢ share an attribute, and since 𝒱₀'s attributes always
                // stay inside V the shared attribute lives in some earlier
                // 𝒲ⱼ not yet absorbed into V.
                debug_assert!(
                    !f_members.is_empty(),
                    "CPF input guarantees a nonempty ℱ in the disjoint case"
                );
                let f_union: AttrSet = f_members
                    .iter()
                    .fold(AttrSet::new(), |acc, &j| acc.union(&w_attrs[j - 1]));
                self.next_f += 1;
                let f = self.builder.new_temp(format!("F{}", self.next_f));
                // Step 10: R(F) := π_{(∪ℱ) ∩ V} R(V).
                self.builder.project(f, v, f_union.intersect(&v_attrs));
                self.mark(10, node_set);
                // Step 11: join every 𝒲 ∈ ℱ into F.
                for &j in &f_members {
                    self.builder.join(f, f, w_regs[j - 1]);
                    self.mark(11, node_set);
                }
                // Step 12: R(F) := π_{(V ∪ 𝒲ᵢ) ∩ (∪ℱ)} R(F).
                self.builder
                    .project(f, f, v_attrs.union(wi).intersect(&f_union));
                self.mark(12, node_set);
                // Step 13: R(F) := R(F) ⋉ R(𝒲ᵢ).
                self.builder.semijoin(f, w_regs[i - 1]);
                self.mark(13, node_set);
                // Step 14: R(V) := R(V) ⋈ R(F).
                self.builder.join(v, v, f);
                self.mark(14, node_set);
            }
        }

        // Step 17: join in every 𝒲ᵢ whose attributes are not yet all in V.
        for i in 1..=n {
            let wi = &w_attrs[i - 1];
            if !wi.is_subset(self.builder.scheme_of(v)) {
                self.builder.join(v, v, w_regs[i - 1]);
                self.mark(17, node_set);
            }
        }

        debug_assert_eq!(
            *self.builder.scheme_of(v),
            self.scheme.attrs_of_set(node.rel_set()),
            "after step 17, V covers ∪𝒱"
        );
        v
    }
}

/// Run Algorithm 2: derive a program from the CPF tree `t2`.
///
/// The resulting program, applied to any database `D` over the scheme,
/// computes `⋈ D` in its result register (Theorem 1).
///
/// ```
/// use mjoin_core::algorithm2;
/// use mjoin_expr::parse_join_tree;
/// use mjoin_hypergraph::DbScheme;
/// use mjoin_program::{display, validate};
/// use mjoin_relation::Catalog;
///
/// let mut catalog = Catalog::new();
/// let scheme = DbScheme::parse(&mut catalog, &["ABC", "CDE", "EFG", "GHA"]);
/// // Figure 2's CPF tree yields the paper's Example 6 program verbatim.
/// let t2 = parse_join_tree(&catalog, &scheme, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
/// let program = algorithm2(&scheme, &t2).unwrap();
/// assert_eq!(program.len(), 10);
/// validate(&program, &scheme).unwrap();
/// let text = display::render(&program, &scheme, &catalog);
/// assert!(text.starts_with("R(V1) := R(ABC) ⋉ R(CDE)\n"));
/// ```
pub fn algorithm2(scheme: &DbScheme, t2: &JoinTree) -> Result<Program, Alg2Error> {
    algorithm2_with_provenance(scheme, t2).map(|(p, _)| p)
}

/// Algorithm 2 with per-statement provenance: which paper step emitted
/// each statement, processing which S-node. The provenance vector is in
/// statement order and exactly as long as the program.
pub fn algorithm2_with_provenance(
    scheme: &DbScheme,
    t2: &JoinTree,
) -> Result<(Program, Alg2Provenance), Alg2Error> {
    if !scheme.fully_connected() {
        return Err(Alg2Error::SchemeNotConnected);
    }
    if !t2.is_exactly_over(scheme) {
        return Err(Alg2Error::TreeNotExactlyOver);
    }
    if !t2.is_cpf(scheme) {
        return Err(Alg2Error::TreeNotCpf);
    }
    let mut d = Deriver {
        builder: ProgramBuilder::new(scheme),
        scheme,
        next_v: 0,
        next_f: 0,
        origins: Vec::new(),
    };
    let result = d.process(t2);
    let program = d.builder.finish(result);
    debug_assert_eq!(d.origins.len(), program.stmts.len());
    Ok((program, d.origins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_expr::parse_join_tree;
    use mjoin_program::{display, execute, validate};
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn paper() -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        (c, s)
    }

    /// Figure 2's CPF tree.
    fn fig2(c: &Catalog, s: &DbScheme) -> JoinTree {
        parse_join_tree(c, s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap()
    }

    #[test]
    fn example6_program_shape() {
        // The paper's Example 6 derives exactly 10 statements from Figure 2's
        // tree: ⋉CDE (i=1), then [π_C, ⋈CDE, π_CE, ⋉EFG, ⋈F] (i=2), then
        // [⋈EFG, ⋉GHA] (i=3), then [⋈CDE, ⋈GHA] from step 17. (GHA renders
        // as AGH in canonical attribute order.)
        let (c, s) = paper();
        let t2 = fig2(&c, &s);
        let p = algorithm2(&s, &t2).unwrap();
        let text = display::render(&p, &s, &c);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10, "Example 6 has 10 statements:\n{text}");
        // The alias-aware renderer prints V1's first read through its
        // alias, matching the paper's Example 6 verbatim.
        assert_eq!(lines[0], "R(V1) := R(ABC) ⋉ R(CDE)");
        assert_eq!(lines[1], "R(F1) := π_C R(V1)");
        assert_eq!(lines[2], "R(F1) := R(F1) ⋈ R(CDE)");
        assert_eq!(lines[3], "R(F1) := π_CE R(F1)");
        assert_eq!(lines[4], "R(F1) := R(F1) ⋉ R(EFG)");
        assert_eq!(lines[5], "R(V1) := R(V1) ⋈ R(F1)");
        assert_eq!(lines[6], "R(V1) := R(V1) ⋈ R(EFG)");
        assert_eq!(lines[7], "R(V1) := R(V1) ⋉ R(AGH)");
        assert_eq!(lines[8], "R(V1) := R(V1) ⋈ R(CDE)");
        assert_eq!(lines[9], "R(V1) := R(V1) ⋈ R(AGH)");
    }

    #[test]
    fn derived_program_is_valid_and_computes_join() {
        let (mut c, s) = paper();
        let t2 = fig2(&c, &s);
        let p = algorithm2(&s, &t2).unwrap();
        let info = validate(&p, &s).unwrap();
        assert_eq!(info.result_scheme, s.all_attrs());

        // A small consistent database over the 4-cycle.
        let r1 = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3], &[9, 9, 9]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CDE", &[&[3, 4, 5]]).unwrap();
        let r3 = relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap();
        let r4 = relation_of_ints(&mut c, "GHA", &[&[7, 8, 1]]).unwrap();
        let db = Database::from_relations(vec![r1, r2, r3, r4]);
        let out = execute(&p, &db);
        assert_eq!(*out.result, db.join_all());
        assert_eq!(out.result.len(), 1);
    }

    #[test]
    fn statement_count_bound_claim_c() {
        // Claim C: the number of statements is < r(a+5).
        let (c, s) = paper();
        let t2 = fig2(&c, &s);
        let p = algorithm2(&s, &t2).unwrap();
        assert!((p.len() as u64) < s.quasi_factor());
    }

    #[test]
    fn works_for_every_cpf_tree_of_the_cycle() {
        let (mut c, s) = paper();
        let all_cpf = mjoin_expr::cpf_trees(&s, s.all());
        assert!(!all_cpf.is_empty());

        let r1 = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CDE", &[&[3, 4, 5], &[3, 0, 5]]).unwrap();
        let r3 = relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap();
        let r4 = relation_of_ints(&mut c, "GHA", &[&[7, 8, 1], &[7, 8, 2]]).unwrap();
        let db = Database::from_relations(vec![r1, r2, r3, r4]);
        let expected = db.join_all();

        for t2 in &all_cpf {
            let p = algorithm2(&s, t2).unwrap();
            validate(&p, &s).unwrap();
            let out = execute(&p, &db);
            assert_eq!(*out.result, expected, "tree {}", t2.display(&s, &c));
            assert!((p.len() as u64) < s.quasi_factor());
        }
    }

    #[test]
    fn example6_provenance_steps_and_nodes() {
        let (c, s) = paper();
        let t2 = fig2(&c, &s);
        let (p, prov) = algorithm2_with_provenance(&s, &t2).unwrap();
        assert_eq!(prov.len(), p.stmts.len());
        // The whole spine belongs to the root node {ABC,CDE,EFG,GHA}.
        let root = t2.rel_set();
        assert!(prov.iter().all(|o| o.node == root));
        // Example 6's step sequence: ⋉ (6), the F-block (10,11,12,13,14),
        // i=3's join+semijoin (5,6), then two step-17 cleanup joins.
        let steps: Vec<u8> = prov.iter().map(|o| o.step).collect();
        assert_eq!(steps, vec![6, 10, 11, 12, 13, 14, 5, 6, 17, 17]);
    }

    #[test]
    fn right_deep_provenance_tracks_inner_nodes() {
        let (c, s) = paper();
        let t = parse_join_tree(&c, &s, "GHA ⋈ (EFG ⋈ (CDE ⋈ ABC))").unwrap();
        let (p, prov) = algorithm2_with_provenance(&s, &t).unwrap();
        assert_eq!(prov.len(), p.stmts.len());
        // Inner S-nodes are processed before the root, so their sets must
        // appear in the provenance and differ from the root's.
        let root = t.rel_set();
        assert!(prov.iter().any(|o| o.node != root));
        assert!(prov.iter().any(|o| o.node == root));
    }

    #[test]
    fn rejects_non_cpf_tree() {
        let (c, s) = paper();
        let t = parse_join_tree(&c, &s, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
        assert_eq!(algorithm2(&s, &t), Err(Alg2Error::TreeNotCpf));
    }

    #[test]
    fn rejects_disconnected_scheme_and_partial_tree() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "CD"]);
        let t = JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1));
        assert_eq!(algorithm2(&s, &t), Err(Alg2Error::SchemeNotConnected));

        let (c2, s2) = paper();
        let partial = parse_join_tree(&c2, &s2, "ABC ⋈ CDE").unwrap();
        assert_eq!(
            algorithm2(&s2, &partial),
            Err(Alg2Error::TreeNotExactlyOver)
        );
    }

    #[test]
    fn single_leaf_scheme_yields_empty_program() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB"]);
        let p = algorithm2(&s, &JoinTree::leaf(0)).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.result, Reg::Base(0));
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let db = Database::from_relations(vec![r]);
        let out = execute(&p, &db);
        assert_eq!(*out.result, *db.relation(0));
    }

    #[test]
    fn right_deep_tree_recursion() {
        // GHA ⋈ (EFG ⋈ (CDE ⋈ ABC)) — nested right children exercise the
        // recursive processing of S-nodes.
        let (mut c, s) = paper();
        let t = parse_join_tree(&c, &s, "GHA ⋈ (EFG ⋈ (CDE ⋈ ABC))").unwrap();
        assert!(t.is_cpf(&s));
        let p = algorithm2(&s, &t).unwrap();
        validate(&p, &s).unwrap();
        let r1 = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CDE", &[&[3, 4, 5]]).unwrap();
        let r3 = relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap();
        let r4 = relation_of_ints(&mut c, "GHA", &[&[7, 8, 1]]).unwrap();
        let db = Database::from_relations(vec![r1, r2, r3, r4]);
        assert_eq!(*execute(&p, &db).result, db.join_all());
    }

    use mjoin_expr::JoinTree;
}
