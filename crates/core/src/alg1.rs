//! **Algorithm 1** — rewriting an arbitrary join expression tree over a
//! connected database scheme into a Cartesian-product-free tree.
//!
//! The algorithm walks the input tree `T₁` bottom-up keeping a *table* of CPF
//! trees, one per connected component seen at any node. At an internal node
//! `𝒰 = ℒ ∪ ℛ`, every component `𝒞` of `𝒰` is a component of `ℒ`, a component
//! of `ℛ`, or the union of a set `Γ` of such components; in the last case the
//! components in `Γ` are merged one at a time, always keeping the merged set
//! connected (step 3), which is possible precisely because `𝒞` is connected.
//! When the root is processed the table holds a CPF tree over the whole
//! (connected) scheme.

use crate::choice::{ChoicePolicy, FirstChoice, ScriptedChoice};
use mjoin_expr::JoinTree;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::fxhash::{FxHashMap, FxHashSet};
use std::fmt;

/// Errors from Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Alg1Error {
    /// The database scheme is not connected — the paper's precondition.
    SchemeNotConnected,
    /// The input tree is not exactly over the scheme (a leaf per occurrence).
    TreeNotExactlyOver,
}

impl fmt::Display for Alg1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alg1Error::SchemeNotConnected => {
                write!(f, "Algorithm 1 requires a connected database scheme")
            }
            Alg1Error::TreeNotExactlyOver => {
                write!(f, "input tree must be exactly over the database scheme")
            }
        }
    }
}

impl std::error::Error for Alg1Error {}

fn check_preconditions(scheme: &DbScheme, t1: &JoinTree) -> Result<(), Alg1Error> {
    if !scheme.fully_connected() {
        return Err(Alg1Error::SchemeNotConnected);
    }
    if !t1.is_exactly_over(scheme) {
        return Err(Alg1Error::TreeNotExactlyOver);
    }
    Ok(())
}

/// Steps 1–5: merge the components in `gamma` (each present in `table`) into
/// one CPF tree over their union, consulting `policy` at the two choice
/// points.
fn merge_gamma(
    scheme: &DbScheme,
    table: &FxHashMap<RelSet, JoinTree>,
    gamma: &[RelSet],
    policy: &mut dyn ChoicePolicy,
) -> JoinTree {
    debug_assert!(gamma.len() >= 2);
    let mut remaining: Vec<RelSet> = gamma.to_vec();
    remaining.sort_unstable();

    // Step 1: delete an arbitrary scheme 𝒳 from Γ.
    let first = policy.choose(&remaining);
    let mut x = remaining.remove(first);
    let mut t = table[&x].clone();

    // Steps 2–5: repeatedly attach a 𝒲 keeping 𝒳 ∪ 𝒲 connected.
    while !remaining.is_empty() {
        let candidates: Vec<RelSet> = remaining
            .iter()
            .copied()
            .filter(|&w| scheme.is_connected(x.union(w)))
            .collect();
        debug_assert!(
            !candidates.is_empty(),
            "a connectable 𝒲 always exists, else ∪Γ would be disconnected"
        );
        let pick = candidates[policy.choose_merge(x, &candidates)];
        let pos = remaining.iter().position(|&w| w == pick).unwrap();
        remaining.remove(pos);
        t = JoinTree::join(t, table[&pick].clone());
        x = x.union(pick);
    }
    t
}

/// Visit the nodes of `t1` bottom-up, filling `table` with a CPF tree per
/// component encountered. Returns the node's `RelSet`.
fn visit(
    scheme: &DbScheme,
    node: &JoinTree,
    table: &mut FxHashMap<RelSet, JoinTree>,
    policy: &mut dyn ChoicePolicy,
) -> RelSet {
    match node {
        JoinTree::Leaf(i) => {
            let set = RelSet::singleton(*i);
            table.entry(set).or_insert_with(|| JoinTree::leaf(*i));
            set
        }
        JoinTree::Join(l, r) => {
            let lset = visit(scheme, l, table, policy);
            let rset = visit(scheme, r, table, policy);
            let uset = lset.union(rset);
            let comps_l = scheme.components(lset);
            let comps_r = scheme.components(rset);
            for comp in scheme.components(uset) {
                if table.contains_key(&comp) {
                    continue;
                }
                // Γ: the components of ℒ and ℛ inside this component.
                let gamma: Vec<RelSet> = comps_l
                    .iter()
                    .chain(comps_r.iter())
                    .copied()
                    .filter(|c| c.is_subset(comp))
                    .collect();
                debug_assert_eq!(gamma.iter().fold(RelSet::EMPTY, |a, &b| a.union(b)), comp);
                let tree = merge_gamma(scheme, table, &gamma, policy);
                table.insert(comp, tree);
            }
            uset
        }
    }
}

/// Run Algorithm 1 with an explicit choice policy.
pub fn algorithm1_with_policy(
    scheme: &DbScheme,
    t1: &JoinTree,
    policy: &mut dyn ChoicePolicy,
) -> Result<JoinTree, Alg1Error> {
    check_preconditions(scheme, t1)?;
    let mut table: FxHashMap<RelSet, JoinTree> = FxHashMap::default();
    let root = visit(scheme, t1, &mut table, policy);
    debug_assert_eq!(root, scheme.all());
    Ok(table
        .remove(&scheme.all())
        .expect("connected scheme: root component is the whole scheme"))
}

/// Run Algorithm 1 with the deterministic first-choice policy.
///
/// ```
/// use mjoin_core::algorithm1;
/// use mjoin_expr::parse_join_tree;
/// use mjoin_hypergraph::DbScheme;
/// use mjoin_relation::Catalog;
///
/// let mut catalog = Catalog::new();
/// let scheme = DbScheme::parse(&mut catalog, &["ABC", "CDE", "EFG", "GHA"]);
/// // Example 2's expression starts with the Cartesian product ABC × EFG…
/// let t1 = parse_join_tree(&catalog, &scheme, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
/// assert!(!t1.is_cpf(&scheme));
/// // …and Algorithm 1 rewrites it Cartesian-product-free.
/// let t2 = algorithm1(&scheme, &t1).unwrap();
/// assert!(t2.is_cpf(&scheme));
/// assert!(t2.is_exactly_over(&scheme));
/// ```
pub fn algorithm1(scheme: &DbScheme, t1: &JoinTree) -> Result<JoinTree, Alg1Error> {
    algorithm1_with_policy(scheme, t1, &mut FirstChoice)
}

/// Exhaustively enumerate **every** CPF tree Algorithm 1 can produce from
/// `t1` across all nondeterministic choices (deduplicated).
///
/// Exponential in the number of choice points — intended for paper-sized
/// schemes (Example 5's input yields 16 trees).
pub fn algorithm1_all_outcomes(
    scheme: &DbScheme,
    t1: &JoinTree,
) -> Result<Vec<JoinTree>, Alg1Error> {
    check_preconditions(scheme, t1)?;
    let mut results: FxHashSet<JoinTree> = FxHashSet::default();
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(script) = stack.pop() {
        let mut policy = ScriptedChoice::new(script.clone());
        let tree =
            algorithm1_with_policy(scheme, t1, &mut policy).expect("preconditions already checked");
        // Extend the script at the first decision that still has unexplored
        // alternatives beyond what this run took.
        for (depth, &(pick, n)) in policy.taken.iter().enumerate() {
            if depth >= script.len() {
                // This decision used the fallback (0); queue alternatives.
                for alt in 1..n {
                    let mut next = policy.taken[..depth]
                        .iter()
                        .map(|&(p, _)| p)
                        .collect::<Vec<_>>();
                    next.push(alt);
                    stack.push(next);
                }
            } else {
                debug_assert_eq!(pick, script[depth]);
            }
        }
        results.insert(tree);
    }
    let mut out: Vec<JoinTree> = results.into_iter().collect();
    out.sort_by_key(|t| format!("{t:?}"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_expr::parse_join_tree;
    use mjoin_relation::Catalog;

    fn paper() -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        (c, s)
    }

    fn fig1_tree(c: &Catalog, s: &DbScheme) -> JoinTree {
        parse_join_tree(c, s, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap()
    }

    #[test]
    fn output_is_cpf_and_exactly_over() {
        let (c, s) = paper();
        let t1 = fig1_tree(&c, &s);
        assert!(!t1.is_cpf(&s));
        let t2 = algorithm1(&s, &t1).unwrap();
        assert!(t2.is_cpf(&s), "got {}", t2.display(&s, &c));
        assert!(t2.is_exactly_over(&s));
    }

    #[test]
    fn cpf_input_passes_through_cpf() {
        let (c, s) = paper();
        let t1 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
        assert!(t1.is_cpf(&s));
        let t2 = algorithm1(&s, &t1).unwrap();
        assert!(t2.is_cpf(&s));
        assert!(t2.is_exactly_over(&s));
    }

    #[test]
    fn example5_produces_16_trees() {
        let (c, s) = paper();
        let t1 = fig1_tree(&c, &s);
        let all = algorithm1_all_outcomes(&s, &t1).unwrap();
        assert_eq!(all.len(), 16, "Example 5: 16 different CPF trees");
        for t in &all {
            assert!(t.is_cpf(&s));
            assert!(t.is_exactly_over(&s));
        }
    }

    #[test]
    fn example5_specific_outcome_reachable() {
        // Figure 2's tree: ((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA — select ABC first,
        // then CDE, EFG, GHA.
        let (c, s) = paper();
        let t1 = fig1_tree(&c, &s);
        let target = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
        let all = algorithm1_all_outcomes(&s, &t1).unwrap();
        assert!(all.contains(&target), "Figure 2's tree must be reachable");
    }

    #[test]
    fn deterministic_policy_is_stable() {
        let (c, s) = paper();
        let t1 = fig1_tree(&c, &s);
        let a = algorithm1(&s, &t1).unwrap();
        let b = algorithm1(&s, &t1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_policies_stay_cpf() {
        use crate::choice::SeededChoice;
        let (c, s) = paper();
        let t1 = fig1_tree(&c, &s);
        for seed in 0..25 {
            let mut p = SeededChoice::new(seed);
            let t2 = algorithm1_with_policy(&s, &t1, &mut p).unwrap();
            assert!(t2.is_cpf(&s), "seed {seed}");
            assert!(t2.is_exactly_over(&s), "seed {seed}");
        }
    }

    #[test]
    fn cost_aware_policy_picks_a_cheap_outcome() {
        use crate::choice::CostAwareChoice;
        let (c, s) = paper();
        let t1 = fig1_tree(&c, &s);
        // Example 3 closed-form sizes as the estimator.
        let ex = mjoin_workloads::Example3::new(10);
        let scheme2 = {
            let mut c2 = Catalog::new();
            mjoin_workloads::Example3::scheme(&mut c2)
        };
        let mut policy =
            CostAwareChoice::new(|set| u64::try_from(ex.subjoin_size(&scheme2, set)).unwrap());
        let t2 = algorithm1_with_policy(&s, &t1, &mut policy).unwrap();
        assert!(t2.is_cpf(&s));
        // It must be one of the 16 enumerable outcomes, and among the
        // cheapest by the same size function.
        let all = algorithm1_all_outcomes(&s, &t1).unwrap();
        assert!(all.contains(&t2));
        let cost = |t: &JoinTree| ex.tree_cost(&scheme2, t);
        let min = all.iter().map(&cost).min().unwrap();
        assert_eq!(cost(&t2), min, "greedy-by-size is optimal on this instance");
    }

    #[test]
    fn disconnected_scheme_rejected() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "CD"]);
        let t1 = JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1));
        assert_eq!(algorithm1(&s, &t1), Err(Alg1Error::SchemeNotConnected));
    }

    #[test]
    fn non_exact_tree_rejected() {
        let (c, s) = paper();
        let t1 = parse_join_tree(&c, &s, "ABC ⋈ CDE").unwrap();
        assert_eq!(algorithm1(&s, &t1), Err(Alg1Error::TreeNotExactlyOver));
    }

    #[test]
    fn single_relation_scheme() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB"]);
        let t1 = JoinTree::leaf(0);
        let t2 = algorithm1(&s, &t1).unwrap();
        assert_eq!(t2, JoinTree::leaf(0));
    }

    #[test]
    fn two_relation_chain() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC"]);
        let t1 = JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1));
        let t2 = algorithm1(&s, &t1).unwrap();
        assert!(t2.is_cpf(&s));
        assert_eq!(t2.num_leaves(), 2);
        let outcomes = algorithm1_all_outcomes(&s, &t1).unwrap();
        // Only one component merge with two symmetric members: X=AB then
        // W=BC, or X=BC then W=AB — two distinct (ordered) trees.
        assert_eq!(outcomes.len(), 2);
    }
}
