//! The end-to-end pipeline: arbitrary join tree → Algorithm 1 → CPF tree →
//! Algorithm 2 → program, plus execution and cost comparison.
//!
//! This is the paper's main construction: *"for every join expression, there
//! exists an equivalent CPF join expression from which we can derive a
//! program whose cost is within a constant factor of the cost of an optimal
//! join expression."* Feed an optimal (or any good) tree `T₁` in; the program
//! out is quasi-optimal relative to it.

use crate::alg1::{algorithm1_with_policy, Alg1Error};
use crate::alg2::{algorithm2_with_provenance, Alg2Error, Alg2Provenance};
use crate::choice::{ChoicePolicy, FirstChoice};
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_program::{execute, execute_parallel, execute_with, ExecConfig, ExecOutcome, Program};
use mjoin_relation::Database;
use std::fmt;

/// Errors from the pipeline (either algorithm's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Algorithm 1 failed.
    Alg1(Alg1Error),
    /// Algorithm 2 failed (should not happen on Algorithm 1 output).
    Alg2(Alg2Error),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Alg1(e) => write!(f, "{e}"),
            PipelineError::Alg2(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<Alg1Error> for PipelineError {
    fn from(e: Alg1Error) -> Self {
        PipelineError::Alg1(e)
    }
}

impl From<Alg2Error> for PipelineError {
    fn from(e: Alg2Error) -> Self {
        PipelineError::Alg2(e)
    }
}

/// The derived artifacts: the CPF tree from Algorithm 1 and the program from
/// Algorithm 2.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// Algorithm 1's CPF tree `T₂`.
    pub cpf_tree: JoinTree,
    /// Algorithm 2's program `P`.
    pub program: Program,
    /// Per-statement provenance: which Algorithm 2 step emitted each
    /// statement, processing which node of `T₂`.
    pub provenance: Alg2Provenance,
}

/// Derive a program from an arbitrary join tree over a connected scheme,
/// using `policy` for Algorithm 1's choices.
pub fn derive_with_policy(
    scheme: &DbScheme,
    t1: &JoinTree,
    policy: &mut dyn ChoicePolicy,
) -> Result<Derivation, PipelineError> {
    let cpf_tree = algorithm1_with_policy(scheme, t1, policy)?;
    let (program, provenance) = algorithm2_with_provenance(scheme, &cpf_tree)?;
    Ok(Derivation {
        cpf_tree,
        program,
        provenance,
    })
}

/// Derive with the deterministic first-choice policy.
pub fn derive(scheme: &DbScheme, t1: &JoinTree) -> Result<Derivation, PipelineError> {
    derive_with_policy(scheme, t1, &mut FirstChoice)
}

/// A full pipeline run on concrete data: derivation plus both cost accounts.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The derived CPF tree and program.
    pub derivation: Derivation,
    /// `cost(T₁(D))` — the input tree's own evaluation cost.
    pub tree_cost: u64,
    /// Execution outcome of the program, with `cost(P(D))` in its ledger.
    pub exec: ExecOutcome,
    /// Theorem 2's factor `r(a+5)` for the scheme.
    pub quasi_factor: u64,
}

impl PipelineRun {
    /// `cost(P(D))`.
    pub fn program_cost(&self) -> u64 {
        self.exec.cost()
    }

    /// Theorem 2's inequality `cost(P(D)) < r(a+5) · cost(T₁(D))`, which
    /// holds whenever `⋈D ≠ ∅`.
    pub fn bound_holds(&self) -> bool {
        (self.program_cost() as u128) < self.quasi_factor as u128 * self.tree_cost as u128
    }
}

/// Run the whole pipeline on a database: derive from `t1`, execute, and
/// report both costs.
pub fn run_pipeline(
    scheme: &DbScheme,
    t1: &JoinTree,
    db: &Database,
    policy: &mut dyn ChoicePolicy,
) -> Result<PipelineRun, PipelineError> {
    let derivation = derive_with_policy(scheme, t1, policy)?;
    let tree_cost = mjoin_expr::cost_of(t1, db);
    let exec = execute(&derivation.program, db);
    Ok(PipelineRun {
        derivation,
        tree_cost,
        exec,
        quasi_factor: scheme.quasi_factor(),
    })
}

/// [`run_pipeline`], but executing the derived program on the parallel
/// DAG-scheduled executor with `threads` partitions per operator. The
/// outcome (result relation, ledger, head sizes, peak resident) is
/// byte-identical to the sequential run's — only wall-clock time differs.
pub fn run_pipeline_parallel(
    scheme: &DbScheme,
    t1: &JoinTree,
    db: &Database,
    policy: &mut dyn ChoicePolicy,
    threads: usize,
) -> Result<PipelineRun, PipelineError> {
    let derivation = derive_with_policy(scheme, t1, policy)?;
    let tree_cost = mjoin_expr::cost_of(t1, db);
    let exec = execute_parallel(&derivation.program, db, threads);
    Ok(PipelineRun {
        derivation,
        tree_cost,
        exec,
        quasi_factor: scheme.quasi_factor(),
    })
}

/// [`run_pipeline`], but executing under a caller-built [`ExecConfig`].
///
/// The config is built by a closure *over the finished derivation*, so
/// callers can run static analysis on the derived program — compute a
/// memory certificate, turn it into a spill plan, pick a thread count —
/// before a single tuple moves. This is how `mjoin_cli run --mem-budget`
/// and the CQ compiler wire certificate-gated Grace-hash spilling in
/// without this crate depending on the analyzer (the dependency points the
/// other way).
pub fn run_pipeline_with(
    scheme: &DbScheme,
    t1: &JoinTree,
    db: &Database,
    policy: &mut dyn ChoicePolicy,
    cfg_of: impl FnOnce(&Derivation) -> ExecConfig,
) -> Result<PipelineRun, PipelineError> {
    let derivation = derive_with_policy(scheme, t1, policy)?;
    let tree_cost = mjoin_expr::cost_of(t1, db);
    let cfg = cfg_of(&derivation);
    let exec = execute_with(&derivation.program, db, &cfg);
    Ok(PipelineRun {
        derivation,
        tree_cost,
        exec,
        quasi_factor: scheme.quasi_factor(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_expr::parse_join_tree;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn setup() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        let r1 = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3], &[1, 9, 3]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CDE", &[&[3, 4, 5]]).unwrap();
        let r3 = relation_of_ints(&mut c, "EFG", &[&[5, 6, 7], &[5, 6, 8]]).unwrap();
        let r4 = relation_of_ints(&mut c, "GHA", &[&[7, 8, 1]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3, r4]))
    }

    #[test]
    fn pipeline_from_non_cpf_tree() {
        let (c, s, db) = setup();
        let t1 = parse_join_tree(&c, &s, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
        let run = run_pipeline(&s, &t1, &db, &mut FirstChoice).unwrap();
        assert!(run.derivation.cpf_tree.is_cpf(&s));
        assert_eq!(*run.exec.result, db.join_all());
        assert!(run.bound_holds());
        assert_eq!(run.quasi_factor, 52);
    }

    #[test]
    fn pipeline_from_cpf_tree() {
        let (c, s, db) = setup();
        let t1 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
        let run = run_pipeline(&s, &t1, &db, &mut FirstChoice).unwrap();
        assert_eq!(*run.exec.result, db.join_all());
        assert!(run.bound_holds());
    }

    #[test]
    fn derive_alone() {
        let (c, s, _db) = setup();
        let t1 = parse_join_tree(&c, &s, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
        let d = derive(&s, &t1).unwrap();
        assert!(d.cpf_tree.is_cpf(&s));
        assert!(!d.program.is_empty());
    }

    #[test]
    fn pipeline_with_config_closure_sees_the_derivation() {
        let (c, s, db) = setup();
        let t1 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
        let mut saw_stmts = 0;
        let run = run_pipeline_with(&s, &t1, &db, &mut FirstChoice, |d| {
            saw_stmts = d.program.stmts.len();
            ExecConfig::with_threads(2)
        })
        .unwrap();
        assert!(saw_stmts > 0, "closure ran over the derived program");
        assert_eq!(*run.exec.result, db.join_all());
        let seq = run_pipeline(&s, &t1, &db, &mut FirstChoice).unwrap();
        assert_eq!(run.exec.head_sizes, seq.exec.head_sizes);
        assert_eq!(run.program_cost(), seq.program_cost());
    }

    #[test]
    fn error_propagation() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "CD"]);
        let t = JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(1));
        assert!(matches!(
            derive(&s, &t),
            Err(PipelineError::Alg1(Alg1Error::SchemeNotConnected))
        ));
    }

    use mjoin_expr::JoinTree;
}
