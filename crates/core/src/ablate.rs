//! Ablations of Algorithm 2's output, for the E7 experiments.
//!
//! Algorithm 2 interleaves three statement kinds; the ablations quantify
//! what each buys. Both transformations preserve Theorem 1 (the result is
//! still `⋈D`) but forfeit the Theorem 2 cost bound:
//!
//! * **semijoins → joins**: every `V := V ⋉ W` becomes `V := V ⋈ W`. The
//!   filter constraint is still applied (as a full join), so the final
//!   result is unchanged, but heads now carry `W`'s attributes and grow.
//! * **projections → copies**: every `F := π_U V` becomes the identity
//!   projection `F := π_{scheme(V)} V`. `F` then drags every attribute
//!   along, losing the size reduction projections exist for.

use mjoin_hypergraph::DbScheme;
use mjoin_program::{Program, Reg, Stmt};
use mjoin_relation::AttrSet;

/// Which statements to weaken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Replace semijoins with joins.
    NoSemijoins,
    /// Replace projections with full-scheme copies.
    NoProjections,
    /// Both weakenings at once.
    Neither,
}

/// Apply `ablation` to a program derived by Algorithm 2.
///
/// Panics if a semijoin with a base-relation head must be converted (its
/// head cannot legally become a join head); Algorithm 2 never emits those.
pub fn ablate_program(program: &Program, scheme: &DbScheme, ablation: Ablation) -> Program {
    let drop_semijoins = matches!(ablation, Ablation::NoSemijoins | Ablation::Neither);
    let drop_projections = matches!(ablation, Ablation::NoProjections | Ablation::Neither);

    // Re-simulate register schemes so identity projections know the source's
    // current scheme, mirroring the validator's bookkeeping.
    let mut base_schemes: Vec<AttrSet> = scheme.edges().to_vec();
    let mut temp_schemes: Vec<Option<AttrSet>> = vec![None; program.temp_names.len()];
    let resolve = |base_schemes: &[AttrSet],
                   temp_schemes: &[Option<AttrSet>],
                   program: &Program,
                   reg: Reg|
     -> AttrSet {
        let mut cur = reg;
        loop {
            match cur {
                Reg::Base(i) => return base_schemes[i].clone(),
                Reg::Temp(t) => match &temp_schemes[t] {
                    Some(s) => return s.clone(),
                    None => {
                        cur = program.temp_init[t].expect("valid program: alias exists");
                    }
                },
            }
        }
    };

    let mut stmts = Vec::with_capacity(program.stmts.len());
    for stmt in &program.stmts {
        let new_stmt = match stmt {
            Stmt::Project { dst, src, attrs } => {
                let attrs = if drop_projections {
                    resolve(&base_schemes, &temp_schemes, program, *src)
                } else {
                    attrs.clone()
                };
                Stmt::Project {
                    dst: *dst,
                    src: *src,
                    attrs,
                }
            }
            Stmt::Join { .. } => stmt.clone(),
            Stmt::Semijoin { target, filter } => {
                if drop_semijoins {
                    assert!(
                        target.is_temp(),
                        "cannot convert a base-head semijoin to a join"
                    );
                    Stmt::Join {
                        dst: *target,
                        left: *target,
                        right: *filter,
                    }
                } else {
                    stmt.clone()
                }
            }
        };
        // Update the scheme simulation.
        match &new_stmt {
            Stmt::Project { dst, attrs, .. } => {
                if let Reg::Temp(t) = dst {
                    temp_schemes[*t] = Some(attrs.clone());
                }
            }
            Stmt::Join { dst, left, right } => {
                let s = resolve(&base_schemes, &temp_schemes, program, *left).union(&resolve(
                    &base_schemes,
                    &temp_schemes,
                    program,
                    *right,
                ));
                match dst {
                    Reg::Temp(t) => temp_schemes[*t] = Some(s),
                    Reg::Base(i) => base_schemes[*i] = s,
                }
            }
            Stmt::Semijoin { .. } => {}
        }
        stmts.push(new_stmt);
    }

    Program {
        num_bases: program.num_bases,
        temp_names: program.temp_names.clone(),
        temp_init: program.temp_init.clone(),
        stmts,
        result: program.result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg2::algorithm2;
    use mjoin_expr::parse_join_tree;
    use mjoin_program::{execute, validate};
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn setup() -> (Catalog, DbScheme, Database, Program) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        let t2 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
        let p = algorithm2(&s, &t2).unwrap();
        let r1 = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3], &[1, 2, 9]]).unwrap();
        let r2 = relation_of_ints(&mut c, "CDE", &[&[3, 4, 5], &[9, 9, 9]]).unwrap();
        let r3 = relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap();
        let r4 = relation_of_ints(&mut c, "GHA", &[&[7, 8, 1]]).unwrap();
        (c, s, Database::from_relations(vec![r1, r2, r3, r4]), p)
    }

    #[test]
    fn ablated_programs_remain_correct() {
        let (_c, s, db, p) = setup();
        let expected = db.join_all();
        for ab in [
            Ablation::NoSemijoins,
            Ablation::NoProjections,
            Ablation::Neither,
        ] {
            let q = ablate_program(&p, &s, ab);
            validate(&q, &s).unwrap_or_else(|e| panic!("{ab:?}: {e}"));
            let out = execute(&q, &db);
            assert_eq!(*out.result, expected, "{ab:?}");
        }
    }

    #[test]
    fn ablation_does_not_cheapen() {
        // On Example 3 data the full algorithm must be at least as cheap as
        // each ablation (semijoins and projections only ever shrink heads).
        let ex = mjoin_workloads::Example3::new(5);
        let mut c = Catalog::new();
        let s = mjoin_workloads::Example3::scheme(&mut c);
        let db = ex.database(&mut c);
        let t2 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
        let p = algorithm2(&s, &t2).unwrap();
        let full_cost = execute(&p, &db).cost();
        for ab in [
            Ablation::NoSemijoins,
            Ablation::NoProjections,
            Ablation::Neither,
        ] {
            let q = ablate_program(&p, &s, ab);
            let cost = execute(&q, &db).cost();
            assert!(cost >= full_cost, "{ab:?}: {cost} < {full_cost}");
        }
    }

    #[test]
    fn statement_kinds_change_as_expected() {
        let (_c, s, _db, p) = setup();
        let (pr, jo, se) = p.kind_counts();
        assert!(se > 0 && pr > 0);
        let no_semi = ablate_program(&p, &s, Ablation::NoSemijoins);
        assert_eq!(no_semi.kind_counts(), (pr, jo + se, 0));
        let no_proj = ablate_program(&p, &s, Ablation::NoProjections);
        assert_eq!(no_proj.kind_counts(), (pr, jo, se));
        assert_eq!(no_proj.len(), p.len());
    }
}
