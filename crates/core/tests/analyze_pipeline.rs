//! The analyzer as a pipeline oracle: every program Algorithm 2 derives
//! must be lint-clean (the passes check exactly the invariants the
//! derivation guarantees), hand-ablated programs must trip the expected
//! lints, and the `dead-store` lint must agree statement-for-statement
//! with `eliminate_dead_code`.

use mjoin_analyze::{analyze, Severity};
use mjoin_core::{ablate_program, algorithm2, derive, Ablation};
use mjoin_expr::{all_trees, parse_join_tree};
use mjoin_hypergraph::DbScheme;
use mjoin_program::{eliminate_dead_code, validate, Program, ProgramBuilder, Reg};
use mjoin_relation::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn running_example() -> (Catalog, DbScheme) {
    let mut c = Catalog::new();
    let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
    (c, s)
}

#[test]
fn example6_program_is_lint_clean() {
    let (c, s) = running_example();
    let t2 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
    let p = algorithm2(&s, &t2).unwrap();
    let report = analyze(&p, &s, &c);
    assert!(
        report.diagnostics.is_empty(),
        "Example 6 must be diagnostic-free, got:\n{}",
        report.render_text()
    );
}

#[test]
fn derived_programs_are_clean_for_every_tree_shape() {
    // Exhaustive over input trees on the named small families: Algorithm 1
    // may reshape the tree arbitrarily, and every derived program must
    // still carry zero diagnostics (notes included — the result always
    // covers the full scheme).
    let mut families: Vec<(Catalog, DbScheme)> = Vec::new();
    for build in [
        (|c: &mut Catalog| mjoin_workloads::schemes::chain(c, 4)) as fn(&mut Catalog) -> DbScheme,
        |c| mjoin_workloads::schemes::cycle(c, 4),
        |c| mjoin_workloads::schemes::star(c, 3),
        |c| mjoin_workloads::schemes::clique(c, 3),
        |c| mjoin_workloads::schemes::random_connected(c, 5, 7, 3, 42),
    ] {
        let mut c = Catalog::new();
        let s = build(&mut c);
        families.push((c, s));
    }
    let mut checked = 0usize;
    for (c, s) in &families {
        for t1 in all_trees(s.all()) {
            let d = derive(s, &t1).expect("derivation succeeds");
            let report = analyze(&d.program, s, c);
            assert!(
                report.is_clean(),
                "derived program must be free of errors and warnings for tree {} over {}, \
                 got:\n{}",
                t1.display(s, c),
                s.display(c),
                report.render_text()
            );
            // The only benign note Algorithm 2 emits is the identity
            // self-projection its Steps 10/12 occasionally produce.
            for diag in &report.diagnostics {
                assert_eq!(diag.lint, "noop-project", "{}", report.render_text());
            }
            checked += 1;
        }
    }
    assert!(checked > 100, "only {checked} derivations checked");
}

#[test]
fn ablated_programs_trip_the_expected_lints() {
    let (c, s) = running_example();
    let t2 = parse_join_tree(&c, &s, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
    let p = algorithm2(&s, &t2).unwrap();
    let (projections, _, semijoins) = p.kind_counts();
    assert!(projections > 0 && semijoins > 0);

    // projections → identity copies: every projection becomes a noop.
    // (noop-project is a note — Algorithm 2 can emit identity projections
    // legitimately — so the ablation shows up as `projections` notes.)
    let no_proj = ablate_program(&p, &s, Ablation::NoProjections);
    let report = analyze(&no_proj, &s, &c);
    assert_eq!(
        report.by_lint("noop-project").len(),
        projections,
        "every ablated projection must be flagged:\n{}",
        report.render_text()
    );
    assert_eq!(report.count(Severity::Note), projections);
    assert!(!report.clean_at(Severity::Note));

    // semijoins → joins: still a valid, error-free program (the cost bound
    // is forfeited, not correctness), and no schedule or validity errors.
    let no_semi = ablate_program(&p, &s, Ablation::NoSemijoins);
    let report = analyze(&no_semi, &s, &c);
    assert_eq!(report.count(Severity::Error), 0, "{}", report.render_text());

    // Both at once trips at least the projection lints.
    let neither = ablate_program(&p, &s, Ablation::Neither);
    let report = analyze(&neither, &s, &c);
    assert_eq!(report.by_lint("noop-project").len(), projections);
    assert_eq!(report.count(Severity::Error), 0);
}

/// A random valid program over a 5-relation chain: joins, semijoins and
/// projections over a mutating register file, with alias temps, so dead
/// statements arise naturally from overwrites.
fn random_program(scheme: &DbScheme, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(scheme);
    let mut regs: Vec<Reg> = (0..scheme.num_relations()).map(Reg::Base).collect();
    for i in 0..3 {
        let src = regs[rng.gen_range(0..regs.len())];
        regs.push(b.new_temp_alias(format!("T{i}"), src));
    }
    let n = rng.gen_range(4..25);
    for i in 0..n {
        let a = regs[rng.gen_range(0..regs.len())];
        let d = regs[rng.gen_range(0..regs.len())];
        match rng.gen_range(0..4usize) {
            0 if d.is_temp() => b.join(d, a, regs[rng.gen_range(0..regs.len())]),
            1 => b.semijoin(a, regs[rng.gen_range(0..regs.len())]),
            2 if d.is_temp() => {
                // Project onto a nonempty prefix of the source's attributes.
                let attrs = b.scheme_of(a).clone();
                let keep = rng.gen_range(1..=attrs.len());
                let sub: mjoin_relation::AttrSet =
                    mjoin_relation::AttrSet::from_iter_ids(attrs.iter().take(keep));
                b.project(d, a, sub);
            }
            _ => {
                let t = b.new_temp(format!("J{i}"));
                b.join(t, a, regs[rng.gen_range(0..regs.len())]);
                regs.push(t);
            }
        }
    }
    let result = regs[rng.gen_range(0..regs.len())];
    b.finish(result)
}

#[test]
fn dead_store_lint_matches_eliminate_dead_code_exactly() {
    let mut c = Catalog::new();
    let s = mjoin_workloads::schemes::chain(&mut c, 5);
    for seed in 0..60u64 {
        let p = random_program(&s, seed);
        validate(&p, &s).expect("generator only builds valid programs");
        let report = analyze(&p, &s, &c);
        let dead: Vec<usize> = report
            .by_lint("dead-store")
            .iter()
            .map(|d| d.stmt.expect("dead-store names a statement"))
            .collect();
        // The optimizer must drop exactly the flagged statements, in order.
        let kept: Vec<_> = p
            .stmts
            .iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .map(|(_, st)| st.clone())
            .collect();
        let optimized = eliminate_dead_code(&p);
        assert_eq!(
            optimized.stmts, kept,
            "seed {seed}: lint and optimizer disagree on dead statements"
        );
    }
}

#[test]
fn optimized_programs_stay_clean_of_dead_stores() {
    // After eliminate_dead_code, the dead-store lint must have nothing
    // left to say (other lints may still fire on these random programs).
    let mut c = Catalog::new();
    let s = mjoin_workloads::schemes::chain(&mut c, 5);
    for seed in 0..30u64 {
        let p = eliminate_dead_code(&random_program(&s, seed));
        let report = analyze(&p, &s, &c);
        assert!(
            report.by_lint("dead-store").is_empty(),
            "seed {seed}:\n{}",
            report.render_text()
        );
    }
}
