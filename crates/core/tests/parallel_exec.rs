//! Differential oracle: the parallel DAG-scheduled executor must be
//! observably identical to the sequential interpreter — same result
//! relation, same cost ledger entry-for-entry, same per-statement head
//! sizes, same peak-resident footprint — on randomized databases, across
//! thread counts, including Cartesian-product and empty-relation edge cases.

use mjoin_core::{run_pipeline, run_pipeline_parallel, FirstChoice};
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_program::{execute, execute_parallel, ProgramBuilder, Reg};
use mjoin_relation::{Catalog, Database, Relation, Schema};
use mjoin_workloads::{random_database, DataGenConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn left_deep(n: usize) -> JoinTree {
    let mut t = JoinTree::leaf(0);
    for i in 1..n {
        t = JoinTree::join(t, JoinTree::leaf(i));
    }
    t
}

/// Assert every observable of the two executions matches.
fn assert_outcomes_match(scheme: &DbScheme, t1: &JoinTree, db: &Database, label: &str) {
    let seq = run_pipeline(scheme, t1, db, &mut FirstChoice).expect("sequential pipeline");
    for threads in THREADS {
        let par = run_pipeline_parallel(scheme, t1, db, &mut FirstChoice, threads)
            .expect("parallel pipeline");
        assert_eq!(
            *par.exec.result, *seq.exec.result,
            "{label}: result differs at {threads} threads"
        );
        assert_eq!(
            par.exec.head_sizes, seq.exec.head_sizes,
            "{label}: head sizes differ at {threads} threads"
        );
        assert_eq!(
            par.exec.ledger, seq.exec.ledger,
            "{label}: ledger differs at {threads} threads"
        );
        assert_eq!(
            par.exec.peak_resident, seq.exec.peak_resident,
            "{label}: peak resident differs at {threads} threads"
        );
    }
}

#[test]
fn chain_workloads_agree() {
    let mut c = Catalog::new();
    let s = mjoin_workloads::schemes::chain(&mut c, 5);
    for seed in 0..4 {
        let db = random_database(
            &s,
            &DataGenConfig {
                tuples_per_relation: 60,
                domain: 7,
                seed,
                plant_witness: true,
            },
        );
        assert_outcomes_match(&s, &left_deep(5), &db, &format!("chain seed {seed}"));
    }
}

#[test]
fn cycle_workloads_agree() {
    let mut c = Catalog::new();
    let s = mjoin_workloads::schemes::cycle(&mut c, 4);
    for seed in 0..4 {
        let db = random_database(
            &s,
            &DataGenConfig {
                tuples_per_relation: 40,
                domain: 6,
                seed,
                plant_witness: true,
            },
        );
        assert_outcomes_match(&s, &left_deep(4), &db, &format!("cycle seed {seed}"));
    }
}

#[test]
fn star_workloads_agree() {
    let mut c = Catalog::new();
    let s = mjoin_workloads::schemes::star(&mut c, 4);
    for seed in 0..3 {
        let db = random_database(
            &s,
            &DataGenConfig {
                tuples_per_relation: 50,
                domain: 8,
                seed,
                plant_witness: true,
            },
        );
        assert_outcomes_match(
            &s,
            &left_deep(s.num_relations()),
            &db,
            &format!("star seed {seed}"),
        );
    }
}

#[test]
fn unplanted_sparse_cycles_agree_even_when_join_is_empty() {
    // Without a planted witness, sparse cyclic data usually joins to ∅ — the
    // executors must agree on the empty outcome (and on every intermediate).
    let mut c = Catalog::new();
    let s = mjoin_workloads::schemes::cycle(&mut c, 5);
    for seed in 0..4 {
        let db = random_database(
            &s,
            &DataGenConfig {
                tuples_per_relation: 6,
                domain: 40,
                seed,
                plant_witness: false,
            },
        );
        assert_outcomes_match(&s, &left_deep(5), &db, &format!("sparse cycle seed {seed}"));
    }
}

#[test]
fn empty_input_relation_agrees() {
    let mut c = Catalog::new();
    let s = mjoin_workloads::schemes::chain(&mut c, 3);
    let cfg = DataGenConfig {
        tuples_per_relation: 30,
        domain: 5,
        seed: 11,
        plant_witness: true,
    };
    let db = random_database(&s, &cfg);
    // Empty out the middle relation: every semijoin/join touching it
    // collapses, exercising the empty paths of all three operators.
    let mut rels: Vec<Relation> = db.relations().to_vec();
    rels[1] = Relation::empty(rels[1].schema().clone());
    let db = Database::from_relations(rels);
    assert_outcomes_match(&s, &left_deep(3), &db, "chain with empty middle");
}

#[test]
fn cartesian_product_program_agrees() {
    // A hand-built program whose join statement has no shared attributes:
    // the executor must route through the chunked parallel Cartesian path
    // and still match the sequential interpreter exactly.
    let mut c = Catalog::new();
    let scheme = DbScheme::parse(&mut c, &["AB", "CD"]);
    let a_rows: Vec<Vec<i64>> = (0..40).map(|i| vec![i, i + 100]).collect();
    let a_slices: Vec<&[i64]> = a_rows.iter().map(|v| &v[..]).collect();
    let ra = mjoin_relation::relation_of_ints(&mut c, "AB", &a_slices).unwrap();
    let b_rows: Vec<Vec<i64>> = (0..25).map(|i| vec![i, i + 200]).collect();
    let b_slices: Vec<&[i64]> = b_rows.iter().map(|v| &v[..]).collect();
    let rb = mjoin_relation::relation_of_ints(&mut c, "CD", &b_slices).unwrap();
    let db = Database::from_relations(vec![ra, rb]);

    let mut b = ProgramBuilder::new(&scheme);
    let v = b.new_temp_alias("V", Reg::Base(0));
    b.join(v, v, Reg::Base(1));
    let p = b.finish(v);

    let seq = execute(&p, &db);
    assert_eq!(seq.result.len(), 40 * 25);
    for threads in THREADS {
        let par = execute_parallel(&p, &db, threads);
        assert_eq!(*par.result, *seq.result, "{threads} threads");
        assert_eq!(par.head_sizes, seq.head_sizes);
        assert_eq!(par.ledger, seq.ledger);
        assert_eq!(par.peak_resident, seq.peak_resident);
    }
}

#[test]
fn projection_statements_agree() {
    // A program that projects a wide base down to each of its attributes,
    // with independent heads — the levels run concurrently.
    let mut c = Catalog::new();
    let scheme = DbScheme::parse(&mut c, &["ABC"]);
    let rows: Vec<Vec<i64>> = (0..300).map(|i| vec![i % 9, i % 13, i % 7]).collect();
    let slices: Vec<&[i64]> = rows.iter().map(|v| &v[..]).collect();
    let r = mjoin_relation::relation_of_ints(&mut c, "ABC", &slices).unwrap();
    let db = Database::from_relations(vec![r]);
    let schema_ab = Schema::from_chars(&mut c, "AB");
    let schema_bc = Schema::from_chars(&mut c, "BC");

    let mut b = ProgramBuilder::new(&scheme);
    let x = b.new_temp("X");
    let y = b.new_temp("Y");
    b.project(x, Reg::Base(0), schema_ab.to_set());
    b.project(y, Reg::Base(0), schema_bc.to_set());
    b.join(x, x, y);
    let p = b.finish(x);

    let seq = execute(&p, &db);
    for threads in THREADS {
        let par = execute_parallel(&p, &db, threads);
        assert_eq!(*par.result, *seq.result, "{threads} threads");
        assert_eq!(par.ledger, seq.ledger);
        assert_eq!(par.peak_resident, seq.peak_resident);
    }
}
