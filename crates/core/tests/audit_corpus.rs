//! The audit as a pipeline oracle: every program Algorithm 2 derives, over
//! every input-tree shape of the small scheme families, must execute within
//! its own static cost certificate and abstract intervals on concrete data.
//! A deliberately corrupted certificate must be caught (the ablation that
//! proves the differential has teeth), and the per-statement ledger must
//! sum exactly to `ExecOutcome::cost()`.

use mjoin_analyze::{audit, audit_with_certificate, AnalysisCx, Certificate, Severity};
use mjoin_core::derive;
use mjoin_expr::all_trees;
use mjoin_hypergraph::DbScheme;
use mjoin_program::{execute_with, ExecConfig};
use mjoin_relation::{Catalog, Database};
use mjoin_workloads::{random_database, DataGenConfig};

fn families() -> Vec<(Catalog, DbScheme)> {
    let builders: [fn(&mut Catalog) -> DbScheme; 5] = [
        |c| mjoin_workloads::schemes::chain(c, 4),
        |c| mjoin_workloads::schemes::cycle(c, 4),
        |c| mjoin_workloads::schemes::star(c, 3),
        |c| mjoin_workloads::schemes::clique(c, 3),
        |c| mjoin_workloads::schemes::random_connected(c, 5, 7, 3, 42),
    ];
    builders
        .iter()
        .map(|build| {
            let mut c = Catalog::new();
            let s = build(&mut c);
            (c, s)
        })
        .collect()
}

/// Exhaustive over input trees on the five scheme families: every derived
/// program's measured per-statement head counts stay within the evaluated
/// Theorem-2 certificate and the abstract intervals (zero `error`
/// diagnostics), provenance attributes every statement to a tree node, and
/// the audit's ledger agrees with the executor's.
#[test]
fn every_derived_program_audits_clean_over_the_corpus() {
    let mut checked = 0usize;
    for (c, s) in &families() {
        let db = random_database(
            s,
            &DataGenConfig {
                tuples_per_relation: 40,
                domain: 6,
                seed: 9,
                plant_witness: true,
            },
        );
        for t1 in all_trees(s.all()) {
            let d = derive(s, &t1).expect("derivation succeeds");
            let report = audit(&d.program, s, c, &db, &ExecConfig::default(), None)
                .expect("derived programs validate");
            let cx = AnalysisCx::new(&d.program, s, c).unwrap();
            assert!(
                report.bounds_hold(),
                "measured cost exceeded a static bound for tree {} over {}:\n{}",
                t1.display(s, c),
                s.display(c),
                report.render_text(&cx)
            );
            assert_eq!(
                report.report.count(Severity::Error),
                0,
                "{}",
                report.render_text(&cx)
            );
            // The ledger closes: inputs + Σ measured heads = cost(P(D)).
            let heads: u64 = report.rows.iter().map(|r| r.measured).sum();
            assert_eq!(report.inputs + heads, report.cost);
            // Provenance covers every statement with a tree node.
            assert_eq!(d.provenance.len(), d.program.stmts.len());
            let mut cert = report.certificate.clone();
            let nodes: Vec<_> = d.provenance.iter().map(|o| o.node).collect();
            cert.attribute(&nodes);
            assert!(cert.stmts.iter().all(|b| b.node.is_some()));
            checked += 1;
        }
    }
    assert!(checked > 100, "only {checked} derivations checked");
}

/// Two disjoint witness cycles for the running example, so the final head
/// has 2 tuples — strictly more than a corrupted bound of 1 can allow.
fn doubled_running_example() -> (Catalog, DbScheme, Database) {
    let mut c = Catalog::new();
    let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
    // TSV headers carry the column order, so values land on the right
    // attributes regardless of canonical schema order.
    let files = [
        "A\tB\tC\n1\t2\t3\n11\t12\t13\n",
        "C\tD\tE\n3\t4\t5\n13\t14\t15\n",
        "E\tF\tG\n5\t6\t7\n15\t16\t17\n",
        "G\tH\tA\n7\t8\t1\n17\t18\t11\n",
    ];
    let relations = files
        .iter()
        .map(|text| mjoin_relation::tsv::relation_from_tsv(&mut c, text).unwrap())
        .collect();
    (c, s, Database::from_relations(relations))
}

/// Ablation: corrupting any statement's certificate down to a trivial
/// bound of 1 must surface as an `audit-bound` error at exactly that
/// statement — on a database where every head has ≥ 2 tuples.
#[test]
fn corrupted_certificate_is_caught_at_every_statement() {
    let (c, s, db) = doubled_running_example();
    let t1 = all_trees(s.all()).into_iter().next().unwrap();
    let d = derive(&s, &t1).expect("derivation succeeds");
    let cx = AnalysisCx::new(&d.program, &s, &c).unwrap();

    // Sanity: the honest certificate audits clean on this data.
    let honest = audit_with_certificate(
        &cx,
        &db,
        &ExecConfig::default(),
        Certificate::compute(&cx),
        None,
    )
    .unwrap();
    assert!(honest.bounds_hold(), "{}", honest.render_text(&cx));

    for victim in 0..d.program.stmts.len() {
        if honest.rows[victim].measured < 2 {
            continue;
        }
        let mut cert = Certificate::compute(&cx);
        cert.stmts[victim].factors.clear(); // Π over no factors = 1
        let report = audit_with_certificate(&cx, &db, &ExecConfig::default(), cert, None).unwrap();
        assert!(!report.bounds_hold(), "corruption at stmt {victim} missed");
        let flagged = report.report.by_lint("audit-bound");
        assert_eq!(flagged.len(), 1, "stmt {victim}");
        assert_eq!(flagged[0].stmt, Some(victim));
        assert_eq!(flagged[0].severity, Severity::Error);
    }
    // The guard above must not have skipped everything.
    assert!(
        honest.rows.iter().filter(|r| r.measured >= 2).count() >= 2,
        "doubled witness data should make most heads ≥ 2 tuples"
    );
}

/// Differential: the audit's ledger numbers are exactly the executor's —
/// per-statement measured heads are `ExecOutcome::head_sizes`, and
/// inputs + heads sum to `ExecOutcome::cost()`.
#[test]
fn audit_ledger_matches_executor_exactly() {
    for (c, s) in &families() {
        let db = random_database(
            s,
            &DataGenConfig {
                tuples_per_relation: 50,
                domain: 7,
                seed: 3,
                plant_witness: true,
            },
        );
        let t1 = all_trees(s.all()).into_iter().next().unwrap();
        let d = derive(s, &t1).unwrap();
        let cfg = ExecConfig::default();
        let exec = execute_with(&d.program, &db, &cfg);
        let report = audit(&d.program, s, c, &db, &cfg, None).unwrap();
        assert_eq!(report.cost, exec.cost());
        assert_eq!(report.inputs, exec.ledger.input_total());
        let measured: Vec<u64> = report.rows.iter().map(|r| r.measured).collect();
        let head_sizes: Vec<u64> = exec.head_sizes.iter().map(|&h| h as u64).collect();
        assert_eq!(measured, head_sizes);
        assert_eq!(
            report.inputs + measured.iter().sum::<u64>(),
            exec.cost(),
            "ledger must close for {}",
            s.display(c)
        );
    }
}
