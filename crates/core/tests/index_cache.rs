//! Differential oracle for the join-index cache: cached execution must be
//! observably identical to uncached execution — same result relation, cost
//! ledger, head sizes, and peak-resident footprint — sequentially and in
//! parallel across thread counts. Includes programs that rewrite a register
//! between reads (exercising invalidation), fan-out levels that share one
//! prebuilt index, and budgets small enough to force eviction.

use mjoin_core::derive;
use mjoin_expr::JoinTree;
use mjoin_hypergraph::DbScheme;
use mjoin_program::{execute_with, ExecConfig, Program, ProgramBuilder, Reg};
use mjoin_relation::{Catalog, Database};
use mjoin_workloads::{random_database, DataGenConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn left_deep(n: usize) -> JoinTree {
    let mut t = JoinTree::leaf(0);
    for i in 1..n {
        t = JoinTree::join(t, JoinTree::leaf(i));
    }
    t
}

/// Run `p` uncached sequentially (the oracle), then assert that every
/// cached and uncached execution at every thread count observes the same
/// outcome.
fn assert_cache_transparent(p: &Program, db: &Database, label: &str) {
    let oracle = execute_with(p, db, &ExecConfig::default().without_cache());
    for threads in THREADS {
        for cached in [false, true] {
            let mut cfg = ExecConfig::with_threads(threads);
            if !cached {
                cfg = cfg.without_cache();
            }
            let out = execute_with(p, db, &cfg);
            assert_eq!(
                *out.result, *oracle.result,
                "{label}: result differs (threads={threads}, cached={cached})"
            );
            assert_eq!(
                out.head_sizes, oracle.head_sizes,
                "{label}: head sizes differ (threads={threads}, cached={cached})"
            );
            assert_eq!(
                out.ledger, oracle.ledger,
                "{label}: ledger differs (threads={threads}, cached={cached})"
            );
            assert_eq!(
                out.peak_resident, oracle.peak_resident,
                "{label}: peak resident differs (threads={threads}, cached={cached})"
            );
        }
    }
}

/// A program that joins through a register, rewrites that register, then
/// joins through it again: any index cached over the old value must not
/// leak into the re-read.
#[test]
fn register_rewrite_between_reads_is_transparent() {
    let mut c = Catalog::new();
    let scheme = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
    for seed in 0..4 {
        let db = random_database(
            &scheme,
            &DataGenConfig {
                tuples_per_relation: 80,
                domain: 9,
                seed,
                plant_witness: true,
            },
        );
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1)); // caches an index over BC
        b.semijoin(Reg::Base(1), Reg::Base(2)); // rewrites BC → invalidate
        b.join(v, v, Reg::Base(1)); // must read the reduced BC
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        assert_cache_transparent(&p, &db, &format!("rewrite-between-reads seed {seed}"));
    }
}

/// The same filter relation reduced into repeatedly — every write to the
/// target register invalidates the previous value's indices.
#[test]
fn repeated_reduction_of_one_register_is_transparent() {
    let mut c = Catalog::new();
    let scheme = DbScheme::parse(&mut c, &["AB", "BC", "AC"]);
    let db = random_database(
        &scheme,
        &DataGenConfig {
            tuples_per_relation: 120,
            domain: 10,
            seed: 7,
            plant_witness: true,
        },
    );
    let mut b = ProgramBuilder::new(&scheme);
    b.semijoin(Reg::Base(0), Reg::Base(1));
    b.semijoin(Reg::Base(0), Reg::Base(2));
    b.semijoin(Reg::Base(1), Reg::Base(0));
    b.semijoin(Reg::Base(2), Reg::Base(0));
    let v = b.new_temp_alias("V", Reg::Base(0));
    b.join(v, v, Reg::Base(1));
    b.join(v, v, Reg::Base(2));
    let p = b.finish(v);
    assert_cache_transparent(&p, &db, "repeated reduction");
}

/// Derived (Algorithm 2) programs over the standard scheme families.
#[test]
fn derived_programs_are_cache_transparent() {
    for (family, name) in [(0usize, "chain"), (1, "cycle"), (2, "star")] {
        let mut c = Catalog::new();
        let scheme = match family {
            0 => mjoin_workloads::schemes::chain(&mut c, 5),
            1 => mjoin_workloads::schemes::cycle(&mut c, 4),
            _ => mjoin_workloads::schemes::star(&mut c, 4),
        };
        for seed in 0..3 {
            let db = random_database(
                &scheme,
                &DataGenConfig {
                    tuples_per_relation: 60,
                    domain: 7,
                    seed,
                    plant_witness: true,
                },
            );
            let d = derive(&scheme, &left_deep(scheme.num_relations())).unwrap();
            assert_cache_transparent(&d.program, &db, &format!("{name} seed {seed}"));
        }
    }
}

/// A hub fan-out: three independent semijoins filter through the same
/// relation at the same key, so one parallel level wants one shared index.
fn hub_fanout(c: &mut Catalog) -> (DbScheme, Program) {
    let scheme = DbScheme::parse(c, &["AB", "BC", "BD", "BE"]);
    let mut b = ProgramBuilder::new(&scheme);
    b.semijoin(Reg::Base(1), Reg::Base(0));
    b.semijoin(Reg::Base(2), Reg::Base(0));
    b.semijoin(Reg::Base(3), Reg::Base(0));
    let v = b.new_temp_alias("V", Reg::Base(1));
    b.join(v, v, Reg::Base(2));
    b.join(v, v, Reg::Base(3));
    b.join(v, v, Reg::Base(0));
    (scheme.clone(), b.finish(v))
}

#[test]
fn fanout_program_is_cache_transparent() {
    let mut c = Catalog::new();
    let (scheme, p) = hub_fanout(&mut c);
    for seed in 0..3 {
        let db = random_database(
            &scheme,
            &DataGenConfig {
                tuples_per_relation: 200,
                domain: 16,
                seed,
                plant_witness: true,
            },
        );
        assert_cache_transparent(&p, &db, &format!("hub fanout seed {seed}"));
    }
}

/// The fan-out actually hits: with tracing on, the cached run records
/// index-cache hits (the hub's index is built once and reused) and at
/// least one insert.
#[test]
fn fanout_records_cache_hits() {
    let mut c = Catalog::new();
    let (scheme, p) = hub_fanout(&mut c);
    let db = random_database(
        &scheme,
        &DataGenConfig {
            tuples_per_relation: 300,
            domain: 20,
            seed: 1,
            plant_witness: true,
        },
    );
    for threads in [1, 4] {
        mjoin_trace::set_enabled(true);
        mjoin_trace::clear();
        let _ = execute_with(&p, &db, &ExecConfig::with_threads(threads));
        let t = mjoin_trace::take();
        mjoin_trace::set_enabled(false);
        assert!(
            t.counter("index_cache.hit").unwrap_or(0) >= 2,
            "expected ≥2 hub-index hits at {threads} threads"
        );
        assert!(
            t.counter("index_cache.insert").unwrap_or(0) >= 1,
            "expected an index insert at {threads} threads"
        );
        assert!(
            t.counter("index_cache.bytes_not_allocated").unwrap_or(0) > 0,
            "hits must account bytes not allocated at {threads} threads"
        );
    }
}

/// Tiny budgets force the cache to refuse or evict entries; execution must
/// stay correct either way.
#[test]
fn tiny_budget_evicts_but_stays_correct() {
    let mut c = Catalog::new();
    let (scheme, p) = hub_fanout(&mut c);
    let db = random_database(
        &scheme,
        &DataGenConfig {
            tuples_per_relation: 150,
            domain: 12,
            seed: 3,
            plant_witness: true,
        },
    );
    let oracle = execute_with(&p, &db, &ExecConfig::default().without_cache());
    for budget in [0, 1, 40, 10_000] {
        for threads in [1, 4] {
            let cfg = ExecConfig {
                threads,
                index_cache: true,
                cache_budget_tuples: budget,
                ..ExecConfig::default()
            };
            let out = execute_with(&p, &db, &cfg);
            assert_eq!(
                *out.result, *oracle.result,
                "budget={budget} threads={threads}"
            );
            assert_eq!(out.head_sizes, oracle.head_sizes);
        }
    }
}
