//! `mjoin-wcoj` — a worst-case-optimal multiway join executor.
//!
//! Morishita's §2.2 programs avoid Cartesian products but remain
//! binary-join-shaped: every statement joins two operands, so on cyclic
//! schemes (the paper's Example 3 territory) even the best-ordered program
//! materializes an intermediate that can be asymptotically larger than the
//! output. Worst-case-optimal joins (Ngo–Porat–Ré–Rudra; the Generic Join /
//! Leapfrog-Triejoin family) instead eliminate one *attribute* at a time,
//! intersecting all relations that mention it, and run in time proportional
//! to the AGM output bound — `N^{3/2}` on the triangle where every binary
//! plan pays `N^2`.
//!
//! This crate provides:
//!
//! * [`wcoj_join`] — the executor: a Generic Join elimination loop over
//!   sorted [`TrieIndex`] views built directly from the columnar storage,
//!   with leapfrog (galloping) intersection at each attribute;
//! * [`select`] — the `auto`-mode policy: compare the AGM bound of the
//!   query's hypergraph ([`mjoin_hypergraph::cover`]) against the best
//!   program's Theorem-2 certificate evaluated with AGM sub-bounds, and
//!   take the WCOJ path exactly when the certificate (the binary engine's
//!   provable worst case) is strictly larger;
//! * [`ExecutorKind`] — the shared `--executor` name parser used by both
//!   the CLI and the server protocol, so spellings cannot drift.

#![warn(missing_docs)]

use mjoin_analyze::Certificate;
use mjoin_hypergraph::{agm_ln, bound_u64, DbScheme};
use mjoin_program::SharedIndexCache;
use mjoin_relation::ops::TrieIndex;
use mjoin_relation::{AttrId, Database, Relation, Row, Schema, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// Which executor a query (or a query component) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// The §2.2 program path: derive a binary join/semijoin/projection
    /// program from a CPF join expression and interpret it (the default).
    #[default]
    Program,
    /// The worst-case-optimal path: [`wcoj_join`] over every component.
    Wcoj,
    /// Per component, pick whichever of the two has the smaller provable
    /// bound (AGM vs Theorem-2 certificate) — see [`select`].
    Auto,
}

impl ExecutorKind {
    /// Parse an executor name as spelled on `mjoin_cli query --executor`
    /// and in the server protocol's `"executor"` field. One parser for
    /// both surfaces, mirroring the optimizer-name parser, so spellings
    /// and error messages cannot drift.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "program" => Ok(ExecutorKind::Program),
            "wcoj" => Ok(ExecutorKind::Wcoj),
            "auto" => Ok(ExecutorKind::Auto),
            other => Err(format!(
                "unknown executor `{other}` (try program|wcoj|auto)"
            )),
        }
    }

    /// The canonical spelling, as accepted by [`ExecutorKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ExecutorKind::Program => "program",
            ExecutorKind::Wcoj => "wcoj",
            ExecutorKind::Auto => "auto",
        }
    }
}

/// The outcome of the `auto`-mode comparison for one connected component.
#[derive(Debug, Clone, Copy)]
pub struct Selection {
    /// `ln` of the AGM bound of the whole component — what WCOJ's runtime
    /// is proportional to.
    pub agm_ln: f64,
    /// `ln` of the certificate bound: the worst statement of the chosen
    /// program, with each certificate factor bounded by its own AGM bound
    /// (so both sides of the comparison are worst-case over databases with
    /// the given relation sizes).
    pub cert_ln: f64,
    /// The AGM bound as a saturating tuple count.
    pub agm_bound: u64,
    /// The certificate bound as a saturating tuple count.
    pub cert_bound: u64,
    /// `true` exactly when `agm_bound < cert_bound`: the program provably
    /// materializes more than the multiway join's worst case, so `auto`
    /// takes the WCOJ path. Ties go to the program engine (better
    /// constants, warm hash indices).
    pub use_wcoj: bool,
}

/// Compare the AGM bound of the component against the chosen program's
/// certificate. `sizes[e]` is the cardinality of the relation on edge `e`
/// of `scheme`.
///
/// The certificate side is evaluated symbolically: each statement's bound
/// is `Π |⋈D[S]|` over its factors, and each factor's subjoin is itself
/// bounded by the AGM bound of its sub-hypergraph. The statement maximum is
/// the binary engine's provable worst case under the same information the
/// AGM side uses. A derived program's final statement is certified tight
/// with the full relation set, so `cert_ln ≥ agm_ln` always — `auto` never
/// selects an executor whose stated bound is the larger one, and on exact
/// ties the program engine wins.
pub fn select(scheme: &DbScheme, sizes: &[u64], cert: &Certificate) -> Selection {
    let component_agm = agm_ln(scheme, scheme.all(), sizes);
    let mut cert_ln = f64::NEG_INFINITY;
    for stmt in &cert.stmts {
        let s: f64 = stmt.factors.iter().map(|&f| agm_ln(scheme, f, sizes)).sum();
        cert_ln = cert_ln.max(s);
    }
    let agm_bound = bound_u64(component_agm);
    let cert_bound = bound_u64(cert_ln);
    let use_wcoj = agm_bound < cert_bound;
    if mjoin_trace::enabled() {
        let mut sp = mjoin_trace::span("plan", "executor_select");
        sp.arg("agm_bound", agm_bound.to_string());
        sp.arg("cert_bound", cert_bound.to_string());
        sp.arg("selected", if use_wcoj { "wcoj" } else { "program" });
    }
    Selection {
        agm_ln: component_agm,
        cert_ln,
        agm_bound,
        cert_bound,
        use_wcoj,
    }
}

/// Per-relation traversal state during the elimination loop: the trie, how
/// many of its levels are bound, and the row range of the current node.
struct RelCursor {
    trie: Arc<TrieIndex>,
    level: usize,
    lo: usize,
    hi: usize,
}

/// Evaluate the natural join of all relations in `db` (whose schemas form
/// `scheme`, index-aligned) with Generic Join: a global attribute order,
/// and at each attribute a leapfrog intersection across the sorted tries of
/// every relation covering it.
///
/// Tries are fetched from `cache` when one is supplied (the resident
/// server's catalog path — repeated queries skip the sort) and built on the
/// fly otherwise; every access is counted under `index_cache.trie_*`.
///
/// The output is worst-case-optimal: total work is `O(AGM bound)` up to
/// logarithmic factors, versus the best binary program's worst statement.
/// The scheme is expected to be connected (callers run one component at a
/// time, as `execute_query` already does for the program path), but the
/// algorithm itself does not require it.
pub fn wcoj_join(scheme: &DbScheme, db: &Database, cache: Option<&SharedIndexCache>) -> Relation {
    let all_attrs = scheme.attrs_of_set(scheme.all());
    let out_schema = Schema::from_set(&all_attrs);
    let mut sp = mjoin_trace::span("exec", "wcoj");
    if sp.is_active() {
        sp.arg("relations", db.len().to_string());
        sp.arg("attrs", out_schema.arity().to_string());
    }
    if db.relations().iter().any(Relation::is_empty) {
        return Relation::empty(out_schema);
    }
    if out_schema.arity() == 0 {
        // All-nullary join of non-empty relations: the unit relation.
        return Relation::nullary_unit();
    }

    // Global elimination order: most-covered attribute first (smaller
    // intersections early), attribute id as the tiebreak for determinism.
    let mut order: Vec<AttrId> = all_attrs.to_vec();
    order.sort_by_key(|&a| {
        let coverage = scheme.edges().iter().filter(|e| e.contains(a)).count();
        (usize::MAX - coverage, a)
    });

    // Each relation's trie levels are its own attributes sorted by global
    // order position, so when the loop reaches attribute `a`, every
    // covering relation's next unbound level is exactly `a`.
    let rank = |a: AttrId| order.iter().position(|&x| x == a).expect("attr in order");
    let mut cursors: Vec<RelCursor> = Vec::with_capacity(db.len());
    for rel in db.relations() {
        let mut attrs: Vec<AttrId> = rel.schema().attrs().to_vec();
        attrs.sort_by_key(|&a| rank(a));
        let key_pos: Vec<usize> = attrs
            .iter()
            .map(|&a| rel.schema().position(a).expect("own attr"))
            .collect();
        let trie = fetch_trie(rel, key_pos, cache);
        let hi = trie.tuples();
        cursors.push(RelCursor {
            trie,
            level: 0,
            lo: 0,
            hi,
        });
    }

    // Which relations cover each attribute of the elimination order.
    let cover: Vec<Vec<usize>> = order
        .iter()
        .map(|&a| {
            scheme
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.contains(a))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    // Output column position of each attribute of the elimination order.
    let out_pos: Vec<usize> = order
        .iter()
        .map(|&a| out_schema.position(a).expect("attr in union schema"))
        .collect();

    let mut bindings: Vec<Value> = Vec::with_capacity(order.len());
    let mut out: Vec<Row> = Vec::new();
    descend(&cover, &out_pos, &mut cursors, &mut bindings, &mut out);
    if sp.is_active() {
        sp.arg("rows", out.len().to_string());
    }
    Relation::from_distinct_rows(out_schema, out)
}

/// Fetch the trie for `(rel, key_pos)` from the shared cache, or build it.
/// The build happens outside the lock (the interpreter's cache discipline);
/// hit/miss/insert counters are maintained by the cache itself.
fn fetch_trie(
    rel: &Relation,
    key_pos: Vec<usize>,
    cache: Option<&SharedIndexCache>,
) -> Arc<TrieIndex> {
    let Some(shared) = cache else {
        return Arc::new(TrieIndex::build(Arc::new(rel.clone()), key_pos));
    };
    let arc = Arc::new(rel.clone());
    if let Some(hit) = lock(shared).peek_trie(&arc, &key_pos) {
        return hit;
    }
    let built = Arc::new(TrieIndex::build(arc, key_pos));
    lock(shared).insert_trie(Arc::clone(&built));
    built
}

fn lock(cache: &SharedIndexCache) -> std::sync::MutexGuard<'_, mjoin_program::IndexCache> {
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One level of the elimination loop: leapfrog-intersect the current trie
/// nodes of every relation covering attribute `depth`, and for each common
/// value bind it and descend (or emit, at the last attribute).
fn descend(
    cover: &[Vec<usize>],
    out_pos: &[usize],
    cursors: &mut [RelCursor],
    bindings: &mut Vec<Value>,
    out: &mut Vec<Row>,
) {
    let depth = bindings.len();
    let parts = &cover[depth];
    mjoin_trace::add("wcoj.attr_loops", 1);
    let mut cur: Vec<usize> = Vec::with_capacity(parts.len());
    for &p in parts {
        let c = &cursors[p];
        if c.lo >= c.hi {
            return;
        }
        cur.push(c.lo);
    }

    // Leapfrog: keep seeking every participant to the current maximum cell
    // until all agree (a match) or one range is exhausted.
    let mut max_i = 0usize;
    'leapfrog: loop {
        for i in 0..parts.len() {
            if i == max_i {
                continue;
            }
            let (a, b) = (parts[i], parts[max_i]);
            let target = (cursors[b].level, cur[max_i]);
            let ca = &cursors[a];
            let pos = ca.trie.seek_ge(
                ca.level,
                cur[i],
                ca.hi,
                &cursors[b].trie,
                target.0,
                target.1,
            );
            mjoin_trace::add("wcoj.seeks", 1);
            if pos == ca.hi {
                return;
            }
            cur[i] = pos;
            if ca
                .trie
                .cell_cmp(ca.level, pos, &cursors[b].trie, target.0, target.1)
                == Ordering::Greater
            {
                max_i = i;
                continue 'leapfrog;
            }
        }

        // All participants agree on a value: bind it and descend into the
        // matching child node of each.
        let first = parts[0];
        let value = cursors[first].trie.value(cursors[first].level, cur[0]);
        let ends: Vec<usize> = parts
            .iter()
            .zip(&cur)
            .map(|(&p, &c)| {
                let cp = &cursors[p];
                cp.trie.run_end(cp.level, c, cp.hi)
            })
            .collect();
        let saved: Vec<(usize, usize)> = parts
            .iter()
            .map(|&p| (cursors[p].lo, cursors[p].hi))
            .collect();
        for ((&p, &c), &e) in parts.iter().zip(&cur).zip(&ends) {
            let cp = &mut cursors[p];
            cp.level += 1;
            cp.lo = c;
            cp.hi = e;
        }
        bindings.push(value);
        if bindings.len() == cover.len() {
            let mut row = vec![Value::Int(0); bindings.len()];
            for (d, v) in bindings.iter().enumerate() {
                row[out_pos[d]] = v.clone();
            }
            mjoin_trace::add("wcoj.emit", 1);
            out.push(row.into());
        } else {
            descend(cover, out_pos, cursors, bindings, out);
        }
        bindings.pop();
        for (&p, &(lo, hi)) in parts.iter().zip(&saved) {
            let cp = &mut cursors[p];
            cp.level -= 1;
            cp.lo = lo;
            cp.hi = hi;
        }

        // Advance every participant past the consumed runs.
        for (i, (&p, &e)) in parts.iter().zip(&ends).enumerate() {
            if e >= cursors[p].hi {
                return;
            }
            cur[i] = e;
        }
        max_i = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn db_of(catalog: &mut Catalog, rels: &[(&str, &[&[i64]])]) -> (DbScheme, Database) {
        let mut db = Database::new();
        for (scheme, rows) in rels {
            db.push(relation_of_ints(catalog, scheme, rows).unwrap());
        }
        let scheme = DbScheme::from_schemas(&db.schemas());
        (scheme, db)
    }

    #[test]
    fn executor_names_round_trip() {
        for kind in [
            ExecutorKind::Program,
            ExecutorKind::Wcoj,
            ExecutorKind::Auto,
        ] {
            assert_eq!(ExecutorKind::parse(kind.name()), Ok(kind));
        }
        let err = ExecutorKind::parse("speedy").unwrap_err();
        assert!(err.contains("unknown executor `speedy`"), "{err}");
        assert!(err.contains("program|wcoj|auto"), "{err}");
    }

    #[test]
    fn triangle_join_matches_oracle() {
        let mut c = Catalog::new();
        let (scheme, db) = db_of(
            &mut c,
            &[
                ("AB", &[&[1, 2], &[1, 3], &[2, 3], &[4, 5]]),
                ("BC", &[&[2, 7], &[3, 7], &[3, 8], &[5, 6]]),
                ("CA", &[&[7, 1], &[8, 1], &[6, 4]]),
            ],
        );
        let got = wcoj_join(&scheme, &db, None);
        assert_eq!(got, db.join_all());
        assert_eq!(got.len(), 4, "(1,2,7), (1,3,7), (1,3,8), (4,5,6)");
    }

    #[test]
    fn acyclic_chain_matches_oracle() {
        let mut c = Catalog::new();
        let (scheme, db) = db_of(
            &mut c,
            &[
                ("AB", &[&[1, 10], &[2, 10], &[3, 11]]),
                ("BC", &[&[10, 20], &[11, 21], &[12, 22]]),
                ("CD", &[&[20, 5], &[21, 5]]),
            ],
        );
        assert_eq!(wcoj_join(&scheme, &db, None), db.join_all());
    }

    #[test]
    fn empty_relation_short_circuits() {
        let mut c = Catalog::new();
        let (scheme, mut db) = db_of(&mut c, &[("AB", &[&[1, 2]])]);
        db.push(Relation::empty(Schema::from_chars(&mut c, "BC")));
        let scheme2 = DbScheme::from_schemas(&db.schemas());
        drop(scheme);
        let got = wcoj_join(&scheme2, &db, None);
        assert_eq!(got.len(), 0);
        assert_eq!(got.schema().arity(), 3);
    }

    #[test]
    fn single_relation_is_identity() {
        let mut c = Catalog::new();
        let (scheme, db) = db_of(&mut c, &[("AB", &[&[1, 2], &[3, 4]])]);
        assert_eq!(wcoj_join(&scheme, &db, None), *db.relation(0));
    }

    #[test]
    fn repeated_scheme_intersects() {
        // Two relations over the same scheme: natural join = intersection.
        let mut c = Catalog::new();
        let (scheme, db) = db_of(
            &mut c,
            &[
                ("AB", &[&[1, 2], &[3, 4], &[5, 6]]),
                ("AB", &[&[3, 4], &[5, 6], &[7, 8]]),
            ],
        );
        let got = wcoj_join(&scheme, &db, None);
        assert_eq!(got.len(), 2);
        assert_eq!(got, db.join_all());
    }

    #[test]
    fn string_values_join_across_dictionaries() {
        let mut c = Catalog::new();
        let s_ab = Schema::from_chars(&mut c, "AB");
        let s_bc = Schema::from_chars(&mut c, "BC");
        let r1 = Relation::from_rows(
            s_ab,
            vec![
                vec![Value::Int(1), Value::str("x")].into(),
                vec![Value::Int(2), Value::str("y")].into(),
            ],
        )
        .unwrap();
        let r2 = Relation::from_rows(
            s_bc,
            vec![
                vec![Value::str("y"), Value::Int(9)].into(),
                vec![Value::str("z"), Value::Int(8)].into(),
            ],
        )
        .unwrap();
        let db = Database::from_relations(vec![r1, r2]);
        let scheme = DbScheme::from_schemas(&db.schemas());
        let got = wcoj_join(&scheme, &db, None);
        assert_eq!(got, db.join_all());
        assert_eq!(got.len(), 1, "only B = \"y\" survives");
    }

    #[test]
    fn selection_prefers_wcoj_exactly_when_certificate_is_larger() {
        use mjoin_analyze::cert::StmtBound;
        use mjoin_hypergraph::RelSet;
        let mut c = Catalog::new();
        let scheme = DbScheme::parse(&mut c, &["AB", "BC", "CA"]);
        let n = 10_000u64;
        let sizes = [n, n, n];
        // A hand-built certificate in the shape Algorithm 2 produces on the
        // triangle: first join {AB, BC}, then the tight final statement.
        let cert = Certificate {
            stmts: vec![
                StmtBound {
                    stmt: 0,
                    kind: "join",
                    factors: vec![RelSet::from_indices([0, 1])],
                    tight: true,
                    head_set: RelSet::from_indices([0, 1]),
                    node: None,
                },
                StmtBound {
                    stmt: 1,
                    kind: "join",
                    factors: vec![RelSet::from_indices([0, 1, 2])],
                    tight: true,
                    head_set: RelSet::from_indices([0, 1, 2]),
                    node: None,
                },
            ],
            quasi_factor: 0,
        };
        let sel = select(&scheme, &sizes, &cert);
        // {AB, BC} covers A,B,C with cover number 2 → N²; the component
        // AGM is N^{3/2}: wcoj wins.
        assert!(sel.use_wcoj);
        assert!(sel.agm_bound < sel.cert_bound);
        assert_eq!(sel.cert_bound, n * n);
        // Certificate ≥ AGM must hold by construction (final stmt tight).
        assert!(sel.cert_ln >= sel.agm_ln);
    }

    #[test]
    fn selection_ties_go_to_the_program() {
        use mjoin_analyze::cert::StmtBound;
        use mjoin_hypergraph::RelSet;
        let mut c = Catalog::new();
        let scheme = DbScheme::parse(&mut c, &["AB", "BC"]);
        let sizes = [100, 100];
        let cert = Certificate {
            stmts: vec![StmtBound {
                stmt: 0,
                kind: "join",
                factors: vec![RelSet::from_indices([0, 1])],
                tight: true,
                head_set: RelSet::from_indices([0, 1]),
                node: None,
            }],
            quasi_factor: 0,
        };
        let sel = select(&scheme, &sizes, &cert);
        assert!(!sel.use_wcoj, "equal bounds keep the program engine");
        assert_eq!(sel.agm_bound, sel.cert_bound);
    }

    #[test]
    fn trie_cache_round_trip() {
        use mjoin_program::IndexCache;
        let mut c = Catalog::new();
        let (scheme, db) = db_of(
            &mut c,
            &[("AB", &[&[1, 2], &[2, 3]]), ("BC", &[&[2, 4], &[3, 4]])],
        );
        let shared = IndexCache::shared(1 << 20, 64 << 20);
        let first = wcoj_join(&scheme, &db, Some(&shared));
        let again = wcoj_join(&scheme, &db, Some(&shared));
        assert_eq!(first, again);
        let cache = shared.lock().unwrap();
        assert_eq!(cache.entries(), 2, "one trie per relation stays resident");
    }

    #[test]
    fn skewed_hub_join_is_correct() {
        // The bench workloads' hub shape: every pairwise join is quadratic
        // but the triangle output is linear. Small instance against the
        // oracle.
        let m = 12i64;
        let mut ab: Vec<Vec<i64>> = Vec::new();
        for j in 0..=m {
            ab.push(vec![0, j]);
        }
        for i in 1..=m {
            ab.push(vec![i, 0]);
        }
        let rows: Vec<&[i64]> = ab.iter().map(Vec::as_slice).collect();
        let mut c = Catalog::new();
        let (scheme, db) = db_of(&mut c, &[("AB", &rows), ("BC", &rows), ("CA", &rows)]);
        let got = wcoj_join(&scheme, &db, None);
        assert_eq!(got, db.join_all());
        assert!(got.len() >= (2 * m) as usize, "hub output is linear in m");
    }
}
