//! Property tests for the hypergraph substrate: RelSet algebra, component
//! structure, and GYO against a brute-force reference.

use mjoin_hypergraph::{gyo, is_acyclic, DbScheme, RelSet};
use mjoin_relation::{AttrId, AttrSet};
use proptest::prelude::*;

fn relset() -> impl Strategy<Value = RelSet> {
    (0u64..(1 << 12)).prop_map(RelSet)
}

/// A random scheme: 2..=6 edges over attributes 0..8, arity 1..=3.
fn scheme() -> impl Strategy<Value = DbScheme> {
    prop::collection::vec(prop::collection::vec(0u32..8, 1..=3), 2..=6).prop_map(|edges| {
        DbScheme::new(
            edges
                .into_iter()
                .map(|attrs| attrs.into_iter().map(AttrId).collect::<AttrSet>())
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn relset_algebra_laws(a in relset(), b in relset(), c in relset()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
        prop_assert_eq!(a.intersect(b.union(c)), a.intersect(b).union(a.intersect(c)));
        prop_assert_eq!(a.difference(b).union(a.intersect(b)), a);
        prop_assert!(a.intersect(b).is_subset(a));
        prop_assert!(a.is_subset(a.union(b)));
        prop_assert_eq!(a.is_disjoint(b), a.intersect(b).is_empty());
        prop_assert_eq!(a.len() + b.len(), a.union(b).len() + a.intersect(b).len());
    }

    #[test]
    fn relset_iteration_roundtrip(a in relset()) {
        let v = a.to_vec();
        prop_assert_eq!(RelSet::from_indices(v.iter().copied()), a);
        prop_assert_eq!(v.len(), a.len());
        // Ascending order.
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn half_partitions_complete_and_disjoint(a in relset()) {
        let parts: Vec<_> = a.half_partitions().collect();
        if a.len() < 2 {
            prop_assert!(parts.is_empty());
        } else {
            prop_assert_eq!(parts.len(), (1usize << (a.len() - 1)) - 1);
            let mut seen = std::collections::HashSet::new();
            for (l, r) in parts {
                prop_assert!(!l.is_empty() && !r.is_empty());
                prop_assert_eq!(l.union(r), a);
                prop_assert!(l.is_disjoint(r));
                // Each unordered split appears once.
                prop_assert!(seen.insert((l.0.min(r.0), l.0.max(r.0))));
            }
        }
    }

    #[test]
    fn components_partition_the_set(s in scheme()) {
        let all = s.all();
        let comps = s.components(all);
        // Disjoint, covering.
        let mut union = RelSet::EMPTY;
        for (i, &a) in comps.iter().enumerate() {
            prop_assert!(!a.is_empty());
            for &b in &comps[i + 1..] {
                prop_assert!(a.is_disjoint(b));
                // Components share no attributes either.
                prop_assert!(s.attrs_of_set(a).is_disjoint(&s.attrs_of_set(b)));
            }
            union = union.union(a);
        }
        prop_assert_eq!(union, all);
        // Each component is internally connected.
        for &comp in &comps {
            prop_assert!(s.is_connected(comp));
        }
        prop_assert_eq!(comps.len() <= 1, s.fully_connected());
    }

    #[test]
    fn components_of_subset_refine_connectivity(s in scheme(), mask in 0u64..64) {
        let sub = RelSet(mask & s.all().0);
        for comp in s.components(sub) {
            prop_assert!(comp.is_subset(sub));
            prop_assert!(s.is_connected(comp));
        }
    }

    #[test]
    fn gyo_elimination_is_a_permutation_when_acyclic(s in scheme()) {
        let g = gyo(&s);
        if g.acyclic {
            let mut ears: Vec<usize> = g.elimination.iter().map(|&(e, _)| e).collect();
            ears.sort_unstable();
            let expect: Vec<usize> = (0..s.num_relations()).collect();
            prop_assert_eq!(ears, expect);
            // Parents come later in the elimination than their children.
            let pos: Vec<usize> = {
                let mut p = vec![0; s.num_relations()];
                for (i, &(e, _)) in g.elimination.iter().enumerate() {
                    p[e] = i;
                }
                p
            };
            for &(e, parent) in &g.elimination {
                if let Some(p) = parent {
                    prop_assert!(pos[p] > pos[e]);
                }
            }
        }
    }

    #[test]
    fn subsuming_edge_makes_acyclic(s in scheme()) {
        // Adding the universal edge makes any scheme acyclic.
        let mut edges = s.edges().to_vec();
        edges.push(s.all_attrs());
        let widened = DbScheme::new(edges);
        prop_assert!(is_acyclic(&widened));
    }
}
