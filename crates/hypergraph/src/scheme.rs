//! Database schemes as hypergraphs.
//!
//! A database scheme `𝒟 = {R₁, …, Rᵣ}` is a multiset of relation schemes;
//! viewed as a hypergraph its nodes are attributes and its hyperedges are the
//! relation schemes (§2.1). [`DbScheme`] stores the edges indexed by
//! occurrence and answers the connectivity questions the paper's algorithms
//! live on: are two edges connected, what are the connected components of a
//! subset, is a subset connected.

use crate::relset::RelSet;
use mjoin_relation::{AttrSet, Catalog, Schema};
use std::fmt;

/// A database scheme: an indexed multiset of relation schemes (hyperedges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbScheme {
    edges: Vec<AttrSet>,
}

impl DbScheme {
    /// Build from attribute sets, one per relation-scheme occurrence.
    ///
    /// Panics if there are more than [`RelSet::CAPACITY`] occurrences or if
    /// any scheme is empty (a relation scheme is a nonempty attribute set).
    pub fn new(edges: Vec<AttrSet>) -> Self {
        assert!(
            edges.len() <= RelSet::CAPACITY,
            "database scheme exceeds {} relation schemes",
            RelSet::CAPACITY
        );
        assert!(
            edges.iter().all(|e| !e.is_empty()),
            "relation schemes must be nonempty"
        );
        DbScheme { edges }
    }

    /// Build from the paper's single-letter notation, e.g.
    /// `DbScheme::parse(&mut catalog, &["ABC", "CDE", "EFG", "GHA"])`.
    pub fn parse(catalog: &mut Catalog, schemes: &[&str]) -> Self {
        let edges = schemes
            .iter()
            .map(|s| catalog.intern_chars(s).into_iter().collect())
            .collect();
        Self::new(edges)
    }

    /// Build from [`Schema`]s (e.g. those of a concrete database).
    pub fn from_schemas(schemas: &[Schema]) -> Self {
        Self::new(schemas.iter().map(mjoin_relation::Schema::to_set).collect())
    }

    /// Number of relation schemes, `r` in Theorem 2.
    pub fn num_relations(&self) -> usize {
        self.edges.len()
    }

    /// The attribute set of occurrence `idx`.
    pub fn attrs_of(&self, idx: usize) -> &AttrSet {
        &self.edges[idx]
    }

    /// All relation schemes in occurrence order.
    pub fn edges(&self) -> &[AttrSet] {
        &self.edges
    }

    /// Union of the attribute sets of the occurrences in `set` — `∪𝒱` in the
    /// paper's notation for a node `𝒱` of a join expression tree.
    pub fn attrs_of_set(&self, set: RelSet) -> AttrSet {
        let mut out = AttrSet::new();
        for idx in set.iter() {
            out.union_with(&self.edges[idx]);
        }
        out
    }

    /// The set of all occurrences.
    pub fn all(&self) -> RelSet {
        RelSet::full(self.edges.len())
    }

    /// All attributes appearing anywhere in the scheme.
    pub fn all_attrs(&self) -> AttrSet {
        self.attrs_of_set(self.all())
    }

    /// Number of distinct attributes, `a` in Theorem 2.
    pub fn num_attrs(&self) -> usize {
        self.all_attrs().len()
    }

    /// Theorem 2's quasi-optimality factor `r(a+5)` — the "size of the
    /// database scheme", independent of any actual data.
    pub fn quasi_factor(&self) -> u64 {
        self.num_relations() as u64 * (self.num_attrs() as u64 + 5)
    }

    /// Whether occurrences `i` and `j` share at least one attribute
    /// (i.e. are adjacent hyperedges — a path of length 2 in §2.1).
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        self.edges[i].intersects(&self.edges[j])
    }

    /// The connected components of `set`, each as a `RelSet`, ordered by
    /// smallest member. Edges are connected when they share an attribute.
    pub fn components(&self, set: RelSet) -> Vec<RelSet> {
        let mut remaining = set;
        let mut out = Vec::new();
        while let Some(seed) = remaining.first() {
            // BFS from `seed` over shared-attribute adjacency, tracking the
            // frontier's attribute set so each sweep is O(r) set operations.
            let mut comp = RelSet::singleton(seed);
            remaining.remove(seed);
            let mut frontier_attrs = self.edges[seed].clone();
            loop {
                let mut grew = false;
                for idx in remaining.iter() {
                    if self.edges[idx].intersects(&frontier_attrs) {
                        comp.insert(idx);
                        frontier_attrs.union_with(&self.edges[idx]);
                        grew = true;
                    }
                }
                remaining = remaining.difference(comp);
                if !grew {
                    break;
                }
            }
            out.push(comp);
        }
        out
    }

    /// Whether `set` is connected (the empty set is vacuously connected).
    pub fn is_connected(&self, set: RelSet) -> bool {
        self.components(set).len() <= 1
    }

    /// Whether the whole scheme is connected — the precondition of
    /// Algorithms 1 and 2.
    pub fn fully_connected(&self) -> bool {
        self.is_connected(self.all())
    }

    /// Whether adding the occurrences of `addition` keeps `base ∪ addition`
    /// connected — the test in Algorithm 1's step 3.
    pub fn union_connected(&self, base: RelSet, addition: RelSet) -> bool {
        self.is_connected(base.union(addition))
    }

    /// Render with attribute names, e.g. `{ABC, CDE, EFG, GHA}`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> DbSchemeDisplay<'a> {
        DbSchemeDisplay {
            scheme: self,
            catalog,
        }
    }
}

/// Helper returned by [`DbScheme::display`].
pub struct DbSchemeDisplay<'a> {
    scheme: &'a DbScheme,
    catalog: &'a Catalog,
}

impl fmt::Display for DbSchemeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, edge) in self.scheme.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", Schema::from_set(edge).display(self.catalog))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: `{ABC, CDE, EFG, GHA}` (Example 1).
    fn paper_scheme() -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        (c, s)
    }

    #[test]
    fn counts_match_paper_example() {
        let (_c, s) = paper_scheme();
        assert_eq!(s.num_relations(), 4);
        assert_eq!(s.num_attrs(), 8);
        // r(a+5) = 4 * 13 = 52.
        assert_eq!(s.quasi_factor(), 52);
    }

    #[test]
    fn paper_scheme_is_connected() {
        let (_c, s) = paper_scheme();
        assert!(s.fully_connected());
        assert_eq!(s.components(s.all()).len(), 1);
    }

    #[test]
    fn adjacency() {
        let (_c, s) = paper_scheme();
        assert!(s.adjacent(0, 1)); // ABC ∩ CDE = {C}
        assert!(!s.adjacent(0, 2)); // ABC ∩ EFG = ∅
        assert!(s.adjacent(0, 3)); // ABC ∩ GHA = {A}
    }

    #[test]
    fn components_of_disconnected_subset() {
        let (_c, s) = paper_scheme();
        // {ABC, EFG} has two components (the join would be a Cartesian
        // product) — this is the left child of Example 2's expression.
        let subset = RelSet::from_indices([0, 2]);
        let comps = s.components(subset);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].to_vec(), vec![0]);
        assert_eq!(comps[1].to_vec(), vec![2]);
        assert!(!s.is_connected(subset));
    }

    #[test]
    fn components_merge_through_chains() {
        let mut c = Catalog::new();
        // AB - BC - CD chain plus isolated XY.
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD", "XY"]);
        let comps = s.components(s.all());
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].to_vec(), vec![0, 1, 2]);
        assert_eq!(comps[1].to_vec(), vec![3]);
        assert!(!s.fully_connected());
    }

    #[test]
    fn union_connected_check() {
        let (_c, s) = paper_scheme();
        let abc = RelSet::singleton(0);
        let efg = RelSet::singleton(2);
        let cde = RelSet::singleton(1);
        assert!(!s.union_connected(abc, efg));
        assert!(s.union_connected(abc, cde));
    }

    #[test]
    fn multiset_occurrences_are_distinct() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "AB", "BC"]);
        assert_eq!(s.num_relations(), 3);
        assert_eq!(s.attrs_of(0), s.attrs_of(1));
        assert!(s.fully_connected());
    }

    #[test]
    fn attrs_of_set_unions() {
        let (c, s) = paper_scheme();
        let set = RelSet::from_indices([0, 1]);
        let attrs = s.attrs_of_set(set);
        assert_eq!(Schema::from_set(&attrs).display(&c).to_string(), "ABCDE");
    }

    #[test]
    fn empty_set_is_connected() {
        let (_c, s) = paper_scheme();
        assert!(s.is_connected(RelSet::EMPTY));
        assert!(s.components(RelSet::EMPTY).is_empty());
    }

    #[test]
    fn display_scheme() {
        let (c, s) = paper_scheme();
        // Attributes render in canonical (id) order, so the paper's `GHA`
        // prints as `AGH`.
        assert_eq!(s.display(&c).to_string(), "{ABC, CDE, EFG, AGH}");
    }

    #[test]
    #[should_panic]
    fn empty_edge_panics() {
        DbScheme::new(vec![AttrSet::new()]);
    }
}
