//! GYO (Graham / Yu–Özsoyoğlu) ear reduction: the classical acyclicity test
//! for database schemes, and the join forest it yields.
//!
//! The paper's intro recalls that *acyclic* schemes are solvable in
//! polynomial time via a full reducer plus a monotone join expression; the
//! hard (NP-complete) case it addresses is cyclic schemes. This module
//! supplies the acyclic machinery: deciding which case we are in and, for
//! acyclic schemes, producing the join forest that drives the full reducer
//! and Yannakakis' algorithm (implemented in `mjoin-acyclic`).

use crate::scheme::DbScheme;
use mjoin_relation::AttrSet;

/// Result of running GYO ear reduction on a database scheme.
#[derive(Debug, Clone)]
pub struct GyoResult {
    /// Whether the scheme is acyclic (the reduction consumed every edge).
    pub acyclic: bool,
    /// The ears in elimination order, each with its witness parent:
    /// `(ear, Some(parent))` when another edge covered the ear's shared
    /// attributes, `(ear, None)` when the ear was the last edge of its
    /// component (a root).
    pub elimination: Vec<(usize, Option<usize>)>,
}

impl GyoResult {
    /// The parent of each occurrence in the join forest (roots have `None`).
    /// Only meaningful when `acyclic`.
    pub fn parents(&self, num_relations: usize) -> Vec<Option<usize>> {
        let mut parents = vec![None; num_relations];
        for &(ear, parent) in &self.elimination {
            parents[ear] = parent;
        }
        parents
    }

    /// The roots of the join forest. Only meaningful when `acyclic`.
    pub fn roots(&self) -> Vec<usize> {
        self.elimination
            .iter()
            .filter(|(_, p)| p.is_none())
            .map(|&(e, _)| e)
            .collect()
    }
}

/// An edge `ear` is an *ear* w.r.t. the remaining edges if every attribute it
/// shares with any other remaining edge is contained in a single remaining
/// edge `witness`. Returns such a witness.
fn find_witness(scheme: &DbScheme, remaining: &[usize], ear: usize) -> Option<usize> {
    // Attributes of `ear` shared with at least one other remaining edge.
    let mut shared = AttrSet::new();
    for &other in remaining {
        if other != ear {
            shared.union_with(&scheme.attrs_of(ear).intersect(scheme.attrs_of(other)));
        }
    }
    remaining
        .iter()
        .copied()
        .find(|&w| w != ear && shared.is_subset(scheme.attrs_of(w)))
}

/// Run GYO ear reduction on `scheme`.
///
/// The scheme is acyclic iff repeated ear removal empties it. The returned
/// elimination order lists children before parents, so iterating it forward
/// gives the "leaves upward" pass of a full reducer and iterating it backward
/// gives the "root downward" pass.
pub fn gyo(scheme: &DbScheme) -> GyoResult {
    let mut remaining: Vec<usize> = (0..scheme.num_relations()).collect();
    let mut elimination = Vec::with_capacity(remaining.len());

    loop {
        if remaining.is_empty() {
            return GyoResult {
                acyclic: true,
                elimination,
            };
        }
        if remaining.len() == 1 {
            elimination.push((remaining[0], None));
            return GyoResult {
                acyclic: true,
                elimination,
            };
        }
        // Find any ear. Checking in index order keeps the result
        // deterministic.
        let mut progress = false;
        for pos in 0..remaining.len() {
            let ear = remaining[pos];
            if let Some(witness) = find_witness(scheme, &remaining, ear) {
                // If the ear shares nothing with anyone (isolated edge of a
                // disconnected scheme) the witness is arbitrary; record the
                // ear as a root of its own component instead.
                let shares_anything = remaining
                    .iter()
                    .any(|&o| o != ear && scheme.adjacent(ear, o));
                elimination.push((ear, if shares_anything { Some(witness) } else { None }));
                remaining.remove(pos);
                progress = true;
                break;
            }
        }
        if !progress {
            return GyoResult {
                acyclic: false,
                elimination,
            };
        }
    }
}

/// Convenience: is the scheme acyclic?
pub fn is_acyclic(scheme: &DbScheme) -> bool {
    gyo(scheme).acyclic
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    fn scheme(schemes: &[&str]) -> DbScheme {
        let mut c = Catalog::new();
        DbScheme::parse(&mut c, schemes)
    }

    #[test]
    fn chain_is_acyclic() {
        let s = scheme(&["AB", "BC", "CD"]);
        let r = gyo(&s);
        assert!(r.acyclic);
        assert_eq!(r.elimination.len(), 3);
        // Exactly one root.
        assert_eq!(r.roots().len(), 1);
    }

    #[test]
    fn star_is_acyclic() {
        let s = scheme(&["ABX", "BY", "AZ", "AW"]);
        assert!(is_acyclic(&s));
    }

    #[test]
    fn triangle_is_cyclic() {
        let s = scheme(&["AB", "BC", "CA"]);
        assert!(!is_acyclic(&s));
    }

    #[test]
    fn paper_cycle_is_cyclic() {
        // Example 1's scheme {ABC, CDE, EFG, GHA} is a 4-cycle.
        let s = scheme(&["ABC", "CDE", "EFG", "GHA"]);
        assert!(!is_acyclic(&s));
    }

    #[test]
    fn single_edge_is_acyclic() {
        let s = scheme(&["ABC"]);
        let r = gyo(&s);
        assert!(r.acyclic);
        assert_eq!(r.elimination, vec![(0, None)]);
    }

    #[test]
    fn subsumed_edge_is_an_ear() {
        // AB ⊆ ABC, so AB is an ear with witness ABC.
        let s = scheme(&["AB", "ABC"]);
        let r = gyo(&s);
        assert!(r.acyclic);
        assert_eq!(r.elimination[0], (0, Some(1)));
    }

    #[test]
    fn duplicate_edges_are_acyclic() {
        let s = scheme(&["AB", "AB"]);
        assert!(is_acyclic(&s));
    }

    #[test]
    fn disconnected_acyclic_forest() {
        let s = scheme(&["AB", "BC", "XY"]);
        let r = gyo(&s);
        assert!(r.acyclic);
        let parents = r.parents(3);
        // XY is isolated: must be a root.
        assert_eq!(parents[2], None);
        // Exactly two roots overall (one per component).
        assert_eq!(parents.iter().filter(|p| p.is_none()).count(), 2);
    }

    #[test]
    fn parents_form_a_forest_toward_later_eliminated() {
        let s = scheme(&["AB", "BC", "CD", "DE"]);
        let r = gyo(&s);
        assert!(r.acyclic);
        let order_of: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (i, &(e, _)) in r.elimination.iter().enumerate() {
                pos[e] = i;
            }
            pos
        };
        for &(e, p) in &r.elimination {
            if let Some(p) = p {
                assert!(order_of[p] > order_of[e], "parent eliminated after child");
            }
        }
    }

    #[test]
    fn cyclic_with_acyclic_fringe_reports_cyclic() {
        // Triangle with a pendant edge; reduction strips the pendant then
        // gets stuck.
        let s = scheme(&["AB", "BC", "CA", "AX"]);
        let r = gyo(&s);
        assert!(!r.acyclic);
        assert_eq!(r.elimination.len(), 1); // only AX was removable
    }
}
