//! Fractional edge covers and the AGM output bound.
//!
//! The AGM bound (Atserias–Grohe–Marx) says the output of a natural join is
//! at most `∏_e |R_e|^{w_e}` for any *fractional edge cover* `w`: weights
//! `w_e ≥ 0` on the hyperedges with `Σ_{e ∋ a} w_e ≥ 1` for every attribute
//! `a`. Worst-case-optimal joins (Generic Join) run in time proportional to
//! the best such bound, which is why the executor selection in `mjoin-wcoj`
//! compares it against a program's Theorem-2 certificate.
//!
//! Minimizing `Σ w_e · ln|R_e|` over the covering polytope is a tiny LP. We
//! do not need an LP solver: every *vertex* of the covering polytope of a
//! hypergraph is half-integral only for graphs, but *any feasible point*
//! gives a sound upper bound — so we enumerate all assignments with
//! `w_e ∈ {0, ½, 1}` and keep the cheapest feasible one. For binary
//! relations (graphs, which is what the cyclic benchmark workloads are) the
//! optimum of the LP is attained at a half-integral point, so the bound is
//! *exact* there; for general hypergraphs it is an upper bound on the true
//! AGM optimum, which still makes it a valid output bound (possibly loose).
//! The all-ones assignment is always feasible, so the enumeration never
//! comes back empty.

use crate::relset::RelSet;
use crate::scheme::DbScheme;
use mjoin_relation::AttrSet;

/// Edges with more than this many *cover candidates* fall back to the
/// all-ones cover (still sound). `3^10 = 59049` assignments is milliseconds;
/// `3^r` beyond that is not worth it for bound estimation.
const MAX_ENUM_EDGES: usize = 10;

/// A fractional edge cover together with the log-scale bound it certifies.
#[derive(Debug, Clone)]
pub struct Cover {
    /// Weight per edge of the covered sub-hypergraph, in the order the
    /// edge indices were supplied (twice the weight, so it stays integral:
    /// `0`, `1`, or `2` meaning `0`, `½`, `1`).
    pub half_weights: Vec<u8>,
    /// `Σ w_e · ln|R_e|` — natural log of the certified output bound.
    /// `f64::NEG_INFINITY` when a positively-weighted edge is empty (the
    /// output is provably empty).
    pub ln_bound: f64,
}

/// The best half-integral fractional edge cover of `attrs` by the edges of
/// `scheme` selected by `edges`, weighting edge `e` by `ln(sizes[e])`.
/// `sizes` is indexed like `scheme.edges()` (full scheme indexing, not
/// compacted). Returns `None` only if the selected edges do not cover
/// `attrs` at all (no feasible assignment exists, all-ones included).
pub fn best_cover(
    scheme: &DbScheme,
    edges: RelSet,
    attrs: &AttrSet,
    sizes: &[u64],
) -> Option<Cover> {
    let idx: Vec<usize> = edges.iter().collect();
    // Feasibility pre-check: every target attribute appears in some edge.
    let reachable = idx
        .iter()
        .fold(AttrSet::new(), |acc, &e| acc.union(scheme.attrs_of(e)));
    if !attrs.is_subset(&reachable) {
        return None;
    }
    let lns: Vec<f64> = idx.iter().map(|&e| ln_size(sizes[e])).collect();
    let targets: Vec<Vec<usize>> = attrs
        .iter()
        .map(|a| {
            idx.iter()
                .enumerate()
                .filter(|(_, &e)| scheme.attrs_of(e).contains(a))
                .map(|(k, _)| k)
                .collect()
        })
        .collect();

    if idx.len() > MAX_ENUM_EDGES {
        return Some(all_ones(&lns));
    }

    let mut best: Option<Cover> = None;
    let mut w = vec![0u8; idx.len()];
    enumerate(&mut w, 0, &lns, &targets, &mut best);
    Some(best.unwrap_or_else(|| all_ones(&lns)))
}

/// Natural log of the minimum AGM output bound for the sub-hypergraph
/// `edges` over exactly the attributes those edges mention. This is the
/// quantity the WCOJ executor's runtime is proportional to. Returns
/// `f64::NEG_INFINITY` when the bound is provably zero (an empty covered
/// relation) and `0.0` for the empty edge set (nullary join: one tuple).
pub fn agm_ln(scheme: &DbScheme, edges: RelSet, sizes: &[u64]) -> f64 {
    if edges.is_empty() {
        return 0.0;
    }
    let attrs = scheme.attrs_of_set(edges);
    best_cover(scheme, edges, &attrs, sizes).map_or(f64::INFINITY, |c| c.ln_bound)
}

/// Convert a log-scale bound to a saturating `u64` tuple count: rounds up
/// (a bound must not under-report), saturates at `u64::MAX`, and maps
/// `NEG_INFINITY` (provably empty) to `0`.
pub fn bound_u64(ln: f64) -> u64 {
    if ln == f64::NEG_INFINITY {
        return 0;
    }
    // ln(u64::MAX) ≈ 44.36; beyond that the bound saturates.
    if ln >= 44.0 {
        return u64::MAX;
    }
    let x = ln.exp();
    // ln/exp round-trips land a few ulps off exact integers (e.g.
    // exp(2·ln(10⁴)) = 10⁸ + ε); snap to the integer before ceiling so
    // clean bounds display clean.
    let nearest = x.round();
    let v = if (x - nearest).abs() <= x * 1e-9 {
        nearest
    } else {
        x.ceil()
    };
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v as u64
    }
}

fn ln_size(n: u64) -> f64 {
    if n == 0 {
        f64::NEG_INFINITY
    } else {
        // ln(1) = 0: singleton relations are free under any weight.
        (n as f64).ln()
    }
}

fn all_ones(lns: &[f64]) -> Cover {
    Cover {
        half_weights: vec![2; lns.len()],
        ln_bound: weighted_sum(&vec![2; lns.len()], lns),
    }
}

/// `Σ (w/2) · ln` with the empty-relation convention: an empty relation
/// (`ln = -inf`) with positive weight certifies an empty output, and with
/// zero weight contributes nothing (avoiding `0 · -inf = NaN`).
fn weighted_sum(half_w: &[u8], lns: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&w, &ln) in half_w.iter().zip(lns) {
        if w == 0 {
            continue;
        }
        if ln == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        acc += f64::from(w) * 0.5 * ln;
    }
    acc
}

fn feasible(half_w: &[u8], targets: &[Vec<usize>]) -> bool {
    targets
        .iter()
        .all(|covering| covering.iter().map(|&k| u32::from(half_w[k])).sum::<u32>() >= 2)
}

fn enumerate(
    w: &mut Vec<u8>,
    pos: usize,
    lns: &[f64],
    targets: &[Vec<usize>],
    best: &mut Option<Cover>,
) {
    if pos == w.len() {
        if feasible(w, targets) {
            let ln = weighted_sum(w, lns);
            let better = best.as_ref().is_none_or(|b| ln < b.ln_bound);
            if better {
                *best = Some(Cover {
                    half_weights: w.clone(),
                    ln_bound: ln,
                });
            }
        }
        return;
    }
    for cand in [0u8, 1, 2] {
        w[pos] = cand;
        enumerate(w, pos + 1, lns, targets, best);
    }
    w[pos] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    fn scheme_of(schemes: &[&str]) -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, schemes);
        (c, s)
    }

    #[test]
    fn triangle_is_half_integral() {
        let (_, s) = scheme_of(&["AB", "BC", "CA"]);
        let n = 1000u64;
        let ln = agm_ln(&s, s.all(), &[n, n, n]);
        // AGM for the triangle: N^{3/2} via w = (1/2, 1/2, 1/2).
        let expect = 1.5 * (n as f64).ln();
        assert!((ln - expect).abs() < 1e-9, "got {ln}, want {expect}");
        assert_eq!(bound_u64(ln), 31_623, "ceil(1000^1.5)");
    }

    #[test]
    fn path_needs_full_weights_on_alternating_edges() {
        let (_, s) = scheme_of(&["AB", "BC", "CD"]);
        let n = 100u64;
        let ln = agm_ln(&s, s.all(), &[n, n, n]);
        // Optimal cover of a 3-path: w = (1, 0, 1) → N^2.
        assert!((ln - 2.0 * (n as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn four_cycle_costs_n_squared() {
        let (_, s) = scheme_of(&["AB", "BC", "CD", "DA"]);
        let n = 50u64;
        let ln = agm_ln(&s, s.all(), &[n, n, n, n]);
        // C4: opposite edges at weight 1 (or all at 1/2) → N^2.
        assert!((ln - 2.0 * (n as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn five_cycle_costs_n_to_the_five_halves() {
        let (_, s) = scheme_of(&["AB", "BC", "CD", "DE", "EA"]);
        let n = 50u64;
        let ln = agm_ln(&s, s.all(), &[n, n, n, n, n]);
        // C5 fractional cover number is 5/2.
        assert!((ln - 2.5 * (n as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_sizes_shift_the_cover() {
        let (_, s) = scheme_of(&["AB", "BC", "CA"]);
        // One huge edge: the cover should lean on the two small ones
        // (w = (0? no — A needs cover) …) — at minimum the bound is no
        // worse than small·small achieved by w = (1, 1, 0)-style covers.
        let ln = agm_ln(&s, s.all(), &[10, 10, 1_000_000]);
        assert!(
            ln <= 2.0 * (10f64).ln() + 1e-9,
            "cover avoids the huge edge"
        );
    }

    #[test]
    fn empty_relation_gives_zero_bound() {
        let (_, s) = scheme_of(&["AB", "BC", "CA"]);
        let ln = agm_ln(&s, s.all(), &[100, 0, 100]);
        // An empty edge admits a cover certifying an empty output: the
        // join with empty BC *is* empty, and the minimization finds it.
        assert_eq!(ln, f64::NEG_INFINITY);
        assert_eq!(bound_u64(ln), 0);
    }

    #[test]
    fn sub_hypergraph_uses_full_scheme_indexing() {
        let (_, s) = scheme_of(&["AB", "BC", "CD"]);
        let sub = RelSet::from_indices([1, 2]); // BC ⋈ CD
        let ln = agm_ln(&s, sub, &[999_999, 20, 30]);
        // Path of two edges: all-ones is optimal → 20·30.
        assert!((ln - (20f64 * 30.0).ln()).abs() < 1e-9);
    }

    #[test]
    fn nullary_and_infeasible_cases() {
        let (_, s) = scheme_of(&["AB", "BC"]);
        assert_eq!(agm_ln(&s, RelSet::default(), &[5, 5]), 0.0);
        let mut c2 = Catalog::new();
        let s2 = DbScheme::parse(&mut c2, &["AB", "CD"]);
        let target = s2.attrs_of_set(s2.all());
        let only_ab = best_cover(&s2, RelSet::singleton(0), &target, &[5, 5]);
        assert!(only_ab.is_none(), "AB alone cannot cover C, D");
    }

    #[test]
    fn bound_u64_saturation() {
        assert_eq!(bound_u64(f64::NEG_INFINITY), 0);
        assert_eq!(bound_u64(0.0), 1);
        assert_eq!(bound_u64(100.0), u64::MAX);
        assert_eq!(bound_u64((1000f64).ln()), 1000);
        assert_eq!(bound_u64(2.0 * (10_000f64).ln()), 100_000_000);
    }

    #[test]
    fn many_edges_fall_back_to_all_ones() {
        let schemes: Vec<String> = (0..12)
            .map(|i| {
                let a = char::from(b'A' + i as u8);
                let b = char::from(b'A' + ((i + 1) % 12) as u8);
                format!("{a}{b}")
            })
            .collect();
        let refs: Vec<&str> = schemes.iter().map(String::as_str).collect();
        let (_, s) = scheme_of(&refs);
        let sizes = vec![10u64; 12];
        let ln = agm_ln(&s, s.all(), &sizes);
        // All-ones fallback: 10^12 — sound, if loose (true optimum 10^6).
        assert!((ln - 12.0 * (10f64).ln()).abs() < 1e-9);
    }
}
