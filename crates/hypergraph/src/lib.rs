//! `mjoin-hypergraph` — database schemes as hypergraphs.
//!
//! The paper (§2.1) represents a database scheme by a hypergraph whose nodes
//! are attributes and whose hyperedges are relation schemes. Everything its
//! algorithms ask of that hypergraph lives here:
//!
//! * [`RelSet`]: subsets of relation-scheme occurrences as bitmasks, with the
//!   2-partition enumerator the optimizer DPs are built on;
//! * [`DbScheme`]: the scheme itself — connectivity, connected components,
//!   attribute unions, and the Theorem 2 factor `r(a+5)`;
//! * [`gyo`]: the classical GYO ear-reduction acyclicity test and join
//!   forest, which the acyclic baselines (full reducer, Yannakakis) consume;
//! * [`cover`]: fractional edge covers and the AGM output bound, which the
//!   worst-case-optimal executor (`mjoin-wcoj`) compares against Theorem-2
//!   certificates when choosing an execution strategy.

#![warn(missing_docs)]

pub mod cover;
pub mod gyo;
pub mod relset;
pub mod scheme;

pub use cover::{agm_ln, best_cover, bound_u64, Cover};
pub use gyo::{gyo, is_acyclic, GyoResult};
pub use relset::RelSet;
pub use scheme::DbScheme;
