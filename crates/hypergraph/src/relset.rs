//! Sets of relation-scheme occurrences, as `u64` bitmasks.
//!
//! A database scheme is a multiset of relation schemes; we index occurrences
//! densely (`0..r`) and represent subsets — join-tree nodes, connected
//! components, DP states — as a [`RelSet`] bitmask. The capacity of 64
//! occurrences is far beyond what any exhaustive baseline can enumerate
//! (the number of join trees grows super-exponentially), and constructors
//! panic loudly rather than wrap silently.

use std::fmt;

/// A subset of the relation-scheme occurrences `0..64` of a database scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelSet(pub u64);

impl RelSet {
    /// Maximum number of occurrences representable.
    pub const CAPACITY: usize = 64;

    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// The set `{idx}`.
    #[inline]
    pub fn singleton(idx: usize) -> Self {
        assert!(
            idx < Self::CAPACITY,
            "relation index {idx} exceeds RelSet capacity"
        );
        RelSet(1u64 << idx)
    }

    /// The full set `{0, …, n−1}`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "{n} relations exceed RelSet capacity");
        if n == Self::CAPACITY {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// Build from indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut s = RelSet::EMPTY;
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Insert `idx`; returns `true` if newly added.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(idx < Self::CAPACITY);
        let fresh = self.0 & (1u64 << idx) == 0;
        self.0 |= 1u64 << idx;
        fresh
    }

    /// Remove `idx`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        let present = self.contains(idx);
        self.0 &= !(1u64 << idx);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, idx: usize) -> bool {
        idx < Self::CAPACITY && self.0 & (1u64 << idx) != 0
    }

    /// Number of members.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union.
    #[inline]
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Difference `self \ other`.
    #[inline]
    pub fn difference(self, other: RelSet) -> RelSet {
        RelSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the sets are disjoint.
    #[inline]
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// The smallest member, if any.
    #[inline]
    pub fn first(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterate over members in increasing order.
    pub fn iter(self) -> RelSetIter {
        RelSetIter(self.0)
    }

    /// Members as a `Vec<usize>`, ascending.
    pub fn to_vec(self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Iterate over all *proper, nonempty* subsets `S ⊂ self` such that `S`
    /// contains the smallest member of `self`.
    ///
    /// Every 2-partition `{S, self \ S}` of `self` is produced exactly once
    /// (anchoring the smallest member breaks the `S ↔ complement` symmetry),
    /// which is exactly what the join-tree DP baselines need.
    pub fn half_partitions(self) -> HalfPartitions {
        HalfPartitions::new(self)
    }
}

/// Iterator over members of a [`RelSet`].
pub struct RelSetIter(u64);

impl Iterator for RelSetIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(idx)
        }
    }
}

impl FromIterator<usize> for RelSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        RelSet::from_indices(iter)
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, idx) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{idx}")?;
        }
        write!(f, "}}")
    }
}

/// See [`RelSet::half_partitions`].
pub struct HalfPartitions {
    /// Bits of `set` other than the anchor (lowest) bit.
    rest: u64,
    /// The anchor bit itself.
    anchor: u64,
    /// Current subset of `rest`; `u64::MAX` sentinel marks exhaustion.
    cursor: u64,
    done: bool,
}

impl HalfPartitions {
    fn new(set: RelSet) -> Self {
        if set.len() < 2 {
            // No way to split into two nonempty halves.
            return HalfPartitions {
                rest: 0,
                anchor: 0,
                cursor: 0,
                done: true,
            };
        }
        let anchor = set.0 & set.0.wrapping_neg();
        HalfPartitions {
            rest: set.0 & !anchor,
            anchor,
            cursor: 0,
            done: false,
        }
    }
}

impl Iterator for HalfPartitions {
    /// `(left, right)` with `left ∪ right = set`, `left ∩ right = ∅`, both
    /// nonempty, and `left` containing the anchor.
    type Item = (RelSet, RelSet);

    fn next(&mut self) -> Option<(RelSet, RelSet)> {
        if self.done {
            return None;
        }
        // `cursor` walks the subsets of `rest`; stop *before* cursor == rest
        // (that would make the right side empty).
        let left = RelSet(self.anchor | self.cursor);
        let right = RelSet(self.rest & !self.cursor);
        // Advance to next subset of rest.
        if self.cursor == self.rest {
            self.done = true;
            return None;
        }
        self.cursor = (self.cursor.wrapping_sub(self.rest)) & self.rest;
        Some((left, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = RelSet::EMPTY;
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert_eq!(s.len(), 1);
        assert!(s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn full_and_singleton() {
        assert_eq!(RelSet::full(3).to_vec(), vec![0, 1, 2]);
        assert_eq!(RelSet::full(64).len(), 64);
        assert_eq!(RelSet::singleton(5).to_vec(), vec![5]);
    }

    #[test]
    #[should_panic]
    fn capacity_overflow_panics() {
        RelSet::singleton(64);
    }

    #[test]
    fn set_algebra() {
        let a = RelSet::from_indices([0, 1, 5]);
        let b = RelSet::from_indices([1, 2]);
        assert_eq!(a.union(b).to_vec(), vec![0, 1, 2, 5]);
        assert_eq!(a.intersect(b).to_vec(), vec![1]);
        assert_eq!(a.difference(b).to_vec(), vec![0, 5]);
        assert!(RelSet::from_indices([0, 1]).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(a.is_disjoint(RelSet::from_indices([3, 4])));
        assert_eq!(a.first(), Some(0));
        assert_eq!(RelSet::EMPTY.first(), None);
    }

    #[test]
    fn half_partitions_cover_all_splits_once() {
        let s = RelSet::from_indices([0, 2, 3]);
        let parts: Vec<_> = s.half_partitions().collect();
        // 2^(3-1) - 1 = 3 distinct 2-partitions.
        assert_eq!(parts.len(), 3);
        for (l, r) in &parts {
            assert!(!l.is_empty() && !r.is_empty());
            assert_eq!(l.union(*r), s);
            assert!(l.is_disjoint(*r));
            assert!(l.contains(0), "anchor member must stay left");
        }
        // All splits distinct.
        let mut seen: Vec<_> = parts.iter().map(|(l, _)| l.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn half_partitions_trivial_cases() {
        assert_eq!(RelSet::EMPTY.half_partitions().count(), 0);
        assert_eq!(RelSet::singleton(4).half_partitions().count(), 0);
        assert_eq!(RelSet::from_indices([1, 7]).half_partitions().count(), 1);
    }

    #[test]
    fn half_partitions_count_formula() {
        for n in 2..=6 {
            let s = RelSet::full(n);
            assert_eq!(
                s.half_partitions().count(),
                (1usize << (n - 1)) - 1,
                "n = {n}"
            );
        }
    }

    #[test]
    fn display() {
        assert_eq!(RelSet::from_indices([2, 0]).to_string(), "{0,2}");
    }
}
