//! `mjoin-program` — the paper's programs of joins, semijoins, and
//! projections (§2.2) as an executable IR.
//!
//! * [`Stmt`] / [`Reg`]: the three statement forms over base relations and
//!   relation scheme variables;
//! * [`Program`] / [`ProgramBuilder`]: straight-line programs with static
//!   scheme tracking (the builder is what Algorithm 2 in `mjoin-core` talks
//!   to while emitting statements);
//! * [`validate`]: static well-formedness per §2.2;
//! * [`execute`]: the interpreter, charging the §2.3 program cost
//!   `Σ_{i=1}^{n+m} |Rᵢ|`;
//! * [`execute_parallel`]: the same semantics and cost accounting, run
//!   level-parallel over the statement dependence DAG of [`schedule`];
//! * [`dataflow`]: bitset register sets and backward liveness, shared by
//!   [`eliminate_dead_code`] and the `mjoin-analyze` lint passes;
//! * [`audit_schedule`]: an independent double-entry checker that a
//!   [`Schedule`] is race-free (no two statements of one level in a
//!   write/write or read/write conflict, all cross-level hazards ordered);
//! * [`display::render`]: pretty-printing in the paper's notation.

#![warn(missing_docs)]

pub mod dataflow;
pub mod display;
pub mod interp;
pub mod optimize;
pub mod parse;
pub mod program;
pub mod schedule;
pub mod stmt;
pub mod validate;

pub use dataflow::{BitSet, Liveness};
pub use interp::{
    execute, execute_parallel, execute_with, try_execute_with, CancelToken, Cancelled, ExecConfig,
    ExecOutcome, IndexCache, SharedIndexCache, SpillPlan,
};
pub use optimize::eliminate_dead_code;
pub use parse::parse_program;
pub use program::{Program, ProgramBuilder};
pub use schedule::{audit_schedule, schedule, Schedule, ScheduleAuditError};
pub use stmt::{Reg, Stmt};
pub use validate::{validate, ValidateError, ValidationInfo};
