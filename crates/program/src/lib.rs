//! `mjoin-program` — the paper's programs of joins, semijoins, and
//! projections (§2.2) as an executable IR.
//!
//! * [`Stmt`] / [`Reg`]: the three statement forms over base relations and
//!   relation scheme variables;
//! * [`Program`] / [`ProgramBuilder`]: straight-line programs with static
//!   scheme tracking (the builder is what Algorithm 2 in `mjoin-core` talks
//!   to while emitting statements);
//! * [`validate`]: static well-formedness per §2.2;
//! * [`execute`]: the interpreter, charging the §2.3 program cost
//!   `Σ_{i=1}^{n+m} |Rᵢ|`;
//! * [`execute_parallel`]: the same semantics and cost accounting, run
//!   level-parallel over the statement dependence DAG of [`schedule`];
//! * [`display::render`]: pretty-printing in the paper's notation.

#![warn(missing_docs)]

pub mod display;
pub mod interp;
pub mod optimize;
pub mod parse;
pub mod program;
pub mod schedule;
pub mod stmt;
pub mod validate;

pub use interp::{execute, execute_parallel, execute_with, ExecConfig, ExecOutcome};
pub use optimize::eliminate_dead_code;
pub use parse::parse_program;
pub use program::{Program, ProgramBuilder};
pub use schedule::{schedule, Schedule};
pub use stmt::{Reg, Stmt};
pub use validate::{validate, ValidateError, ValidationInfo};
