//! Static validation of programs against a database scheme.
//!
//! Checks the well-formedness rules of §2.2 without touching any data:
//! project/join heads are variables, projection attributes are subsets of
//! the (statically inferred) source scheme, every read is of a defined
//! register, and the declared result register is defined. Returns the
//! inferred scheme of every register, which callers use to check that a
//! program's result scheme is `∪𝒟`.

use crate::program::Program;
use crate::stmt::{Reg, Stmt};
use mjoin_hypergraph::DbScheme;
use mjoin_relation::AttrSet;
use std::fmt;

/// A static validation failure, with the offending statement index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Project or join head was a base relation scheme.
    HeadNotVariable {
        /// Statement index.
        stmt: usize,
    },
    /// A statement read a variable that is neither written earlier nor
    /// aliased to a defined register.
    UndefinedRead {
        /// Statement index (`usize::MAX` for the result register).
        stmt: usize,
        /// The undefined register.
        reg: Reg,
    },
    /// Projection attributes were not a subset of the source scheme.
    ProjectionNotSubset {
        /// Statement index.
        stmt: usize,
    },
    /// An alias chain did not resolve to a base relation.
    BadAlias {
        /// The variable whose alias is broken.
        temp: usize,
    },
    /// A register index was out of range.
    OutOfRange {
        /// Statement index.
        stmt: usize,
        /// The offending register.
        reg: Reg,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::HeadNotVariable { stmt } => {
                write!(
                    f,
                    "statement {stmt}: head of project/join must be a variable"
                )
            }
            ValidateError::UndefinedRead { stmt, reg } => {
                write!(f, "statement {stmt}: read of undefined register {reg:?}")
            }
            ValidateError::ProjectionNotSubset { stmt } => {
                write!(
                    f,
                    "statement {stmt}: projection attributes not ⊆ source scheme"
                )
            }
            ValidateError::BadAlias { temp } => {
                write!(
                    f,
                    "variable {temp}: alias does not resolve to a base relation"
                )
            }
            ValidateError::OutOfRange { stmt, reg } => {
                write!(f, "statement {stmt}: register {reg:?} out of range")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Successful validation: the inferred final schemes.
#[derive(Debug, Clone)]
pub struct ValidationInfo {
    /// Final scheme of every base register.
    pub base_schemes: Vec<AttrSet>,
    /// Final scheme of every variable (None = never defined).
    pub temp_schemes: Vec<Option<AttrSet>>,
    /// Scheme of the declared result register.
    pub result_scheme: AttrSet,
}

struct Checker<'a> {
    program: &'a Program,
    base_schemes: Vec<AttrSet>,
    temp_schemes: Vec<Option<AttrSet>>,
}

impl Checker<'_> {
    fn in_range(&self, reg: Reg) -> bool {
        match reg {
            Reg::Base(i) => i < self.base_schemes.len(),
            Reg::Temp(i) => i < self.temp_schemes.len(),
        }
    }

    /// Scheme of `reg` if defined at this point.
    fn scheme_of(&self, reg: Reg) -> Option<&AttrSet> {
        match reg {
            Reg::Base(i) => self.base_schemes.get(i),
            Reg::Temp(i) => self.temp_schemes.get(i).and_then(|s| s.as_ref()),
        }
    }

    /// Resolve `temp`'s alias chain, marking it defined if the chain lands on
    /// a defined register. Called lazily at first read.
    fn resolve_alias(&mut self, temp: usize) -> bool {
        if self.temp_schemes[temp].is_some() {
            return true;
        }
        let mut seen = vec![false; self.temp_schemes.len()];
        let mut cur = temp;
        loop {
            if seen[cur] {
                return false; // alias cycle
            }
            seen[cur] = true;
            match self.program.temp_init[cur] {
                None => return false,
                Some(Reg::Base(b)) => {
                    if b >= self.base_schemes.len() {
                        return false;
                    }
                    self.temp_schemes[temp] = Some(self.base_schemes[b].clone());
                    return true;
                }
                Some(Reg::Temp(t)) => {
                    if t >= self.temp_schemes.len() {
                        return false;
                    }
                    if let Some(s) = &self.temp_schemes[t] {
                        self.temp_schemes[temp] = Some(s.clone());
                        return true;
                    }
                    cur = t;
                }
            }
        }
    }

    fn check_read(&mut self, stmt: usize, reg: Reg) -> Result<AttrSet, ValidateError> {
        if !self.in_range(reg) {
            return Err(ValidateError::OutOfRange { stmt, reg });
        }
        if let Reg::Temp(t) = reg {
            if !self.resolve_alias(t) {
                return Err(ValidateError::UndefinedRead { stmt, reg });
            }
        }
        Ok(self.scheme_of(reg).expect("checked above").clone())
    }
}

/// Validate `program` against `scheme`.
pub fn validate(program: &Program, scheme: &DbScheme) -> Result<ValidationInfo, ValidateError> {
    assert_eq!(
        program.num_bases,
        scheme.num_relations(),
        "program and scheme disagree on the number of relations"
    );
    let mut ck = Checker {
        program,
        base_schemes: scheme.edges().to_vec(),
        temp_schemes: vec![None; program.temp_names.len()],
    };

    for (i, stmt) in program.stmts.iter().enumerate() {
        match stmt {
            Stmt::Project { dst, src, attrs } => {
                if !dst.is_temp() {
                    return Err(ValidateError::HeadNotVariable { stmt: i });
                }
                if !ck.in_range(*dst) {
                    return Err(ValidateError::OutOfRange { stmt: i, reg: *dst });
                }
                let src_scheme = ck.check_read(i, *src)?;
                if !attrs.is_subset(&src_scheme) {
                    return Err(ValidateError::ProjectionNotSubset { stmt: i });
                }
                if let Reg::Temp(t) = dst {
                    ck.temp_schemes[*t] = Some(attrs.clone());
                }
            }
            Stmt::Join { dst, left, right } => {
                if !dst.is_temp() {
                    return Err(ValidateError::HeadNotVariable { stmt: i });
                }
                if !ck.in_range(*dst) {
                    return Err(ValidateError::OutOfRange { stmt: i, reg: *dst });
                }
                let ls = ck.check_read(i, *left)?;
                let rs = ck.check_read(i, *right)?;
                if let Reg::Temp(t) = dst {
                    ck.temp_schemes[*t] = Some(ls.union(&rs));
                }
            }
            Stmt::Semijoin { target, filter } => {
                ck.check_read(i, *target)?;
                ck.check_read(i, *filter)?;
                // Scheme of target is unchanged.
            }
        }
    }

    let result_scheme =
        ck.check_read(usize::MAX, program.result)
            .map_err(|_| ValidateError::UndefinedRead {
                stmt: usize::MAX,
                reg: program.result,
            })?;

    Ok(ValidationInfo {
        base_schemes: ck.base_schemes,
        temp_schemes: ck.temp_schemes,
        result_scheme,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use mjoin_relation::Catalog;

    fn scheme() -> DbScheme {
        let mut c = Catalog::new();
        DbScheme::parse(&mut c, &["AB", "BC", "CD"])
    }

    #[test]
    fn valid_program_passes() {
        let s = scheme();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let info = validate(&p, &s).unwrap();
        assert_eq!(info.result_scheme, s.all_attrs());
    }

    #[test]
    fn undefined_read_rejected() {
        let s = scheme();
        let p = Program {
            num_bases: 3,
            temp_names: vec!["V".into()],
            temp_init: vec![None],
            stmts: vec![Stmt::Semijoin {
                target: Reg::Temp(0),
                filter: Reg::Base(0),
            }],
            result: Reg::Temp(0),
        };
        assert!(matches!(
            validate(&p, &s),
            Err(ValidateError::UndefinedRead { stmt: 0, .. })
        ));
    }

    #[test]
    fn head_must_be_variable() {
        let s = scheme();
        let p = Program {
            num_bases: 3,
            temp_names: vec![],
            temp_init: vec![],
            stmts: vec![Stmt::Join {
                dst: Reg::Base(0),
                left: Reg::Base(0),
                right: Reg::Base(1),
            }],
            result: Reg::Base(0),
        };
        assert!(matches!(
            validate(&p, &s),
            Err(ValidateError::HeadNotVariable { stmt: 0 })
        ));
    }

    #[test]
    fn projection_subset_enforced() {
        let s = scheme();
        let p = Program {
            num_bases: 3,
            temp_names: vec!["V".into()],
            temp_init: vec![None],
            stmts: vec![Stmt::Project {
                dst: Reg::Temp(0),
                src: Reg::Base(0),
                attrs: s.attrs_of(2).clone(), // CD ⊄ AB
            }],
            result: Reg::Temp(0),
        };
        assert!(matches!(
            validate(&p, &s),
            Err(ValidateError::ProjectionNotSubset { stmt: 0 })
        ));
    }

    #[test]
    fn alias_chains_resolve() {
        let s = scheme();
        let p = Program {
            num_bases: 3,
            temp_names: vec!["V".into(), "W".into()],
            temp_init: vec![Some(Reg::Base(1)), Some(Reg::Temp(0))],
            stmts: vec![],
            result: Reg::Temp(1),
        };
        let info = validate(&p, &s).unwrap();
        assert_eq!(info.result_scheme, *s.attrs_of(1));
    }

    #[test]
    fn alias_cycle_rejected() {
        let s = scheme();
        let p = Program {
            num_bases: 3,
            temp_names: vec!["V".into(), "W".into()],
            temp_init: vec![Some(Reg::Temp(1)), Some(Reg::Temp(0))],
            stmts: vec![],
            result: Reg::Temp(0),
        };
        assert!(validate(&p, &s).is_err());
    }

    #[test]
    fn out_of_range_register() {
        let s = scheme();
        let p = Program {
            num_bases: 3,
            temp_names: vec!["V".into()],
            temp_init: vec![None],
            stmts: vec![Stmt::Join {
                dst: Reg::Temp(0),
                left: Reg::Base(9),
                right: Reg::Base(0),
            }],
            result: Reg::Temp(0),
        };
        assert!(matches!(
            validate(&p, &s),
            Err(ValidateError::OutOfRange { stmt: 0, .. })
        ));
    }

    #[test]
    fn semijoin_keeps_scheme() {
        let s = scheme();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(v, Reg::Base(1));
        let p = b.finish(v);
        let info = validate(&p, &s).unwrap();
        assert_eq!(info.result_scheme, *s.attrs_of(0));
    }
}
