//! Dead-code elimination for programs.
//!
//! A program's observable output is its declared result register, so any
//! statement whose head is overwritten before being read again — or never
//! read on a path to the result — can be removed without changing `P(D)`.
//! The §2.3 cost only ever decreases (every removed statement was a charged
//! head). Algorithm 2's output has no dead statements, but ablated programs
//! and hand-written ones (e.g. running a full reducer for a single target
//! relation) do.

use crate::dataflow::Liveness;
use crate::program::Program;

/// Remove dead statements: those whose head cannot reach the result.
///
/// The keep/drop decisions are exactly [`Liveness::compute`]'s `live_stmts`
/// — one backward bitset sweep, linear in program size rather than the
/// historical `Vec::contains` scan that was quadratic on wide programs.
/// Liveness is seeded and propagated through alias-chain read closures, so
/// a statement feeding the result only via an unwritten variable's
/// `temp_init` chain is correctly kept (the old direct-register seed
/// dropped it). Unread alias initializations are preserved (they cost
/// nothing).
pub fn eliminate_dead_code(program: &Program) -> Program {
    let keep = Liveness::compute(program).live_stmts;

    // Live registers at entry that are aliased temps keep reading through
    // their init — the interpreter handles that, nothing to rewrite.
    let stmts = program
        .stmts
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(s, _)| s.clone())
        .collect();
    Program {
        num_bases: program.num_bases,
        temp_names: program.temp_names.clone(),
        temp_init: program.temp_init.clone(),
        stmts,
        result: program.result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use crate::program::ProgramBuilder;
    use crate::stmt::Reg;
    use crate::validate::validate;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn setup() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        let db = Database::from_relations(vec![
            relation_of_ints(&mut c, "AB", &[&[1, 2], &[8, 9]]).unwrap(),
            relation_of_ints(&mut c, "BC", &[&[2, 3]]).unwrap(),
            relation_of_ints(&mut c, "CD", &[&[3, 4]]).unwrap(),
        ]);
        (c, s, db)
    }

    #[test]
    fn removes_unreachable_statement() {
        let (_c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        let w = b.new_temp("W");
        b.join(w, Reg::Base(1), Reg::Base(2)); // never used afterwards
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let q = eliminate_dead_code(&p);
        assert_eq!(q.len(), 2);
        validate(&q, &s).unwrap();
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
        assert!(execute(&q, &db).cost() < execute(&p, &db).cost());
    }

    #[test]
    fn keeps_semijoin_chains() {
        let (_c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(v, Reg::Base(1)); // reduces V, read by the next join
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let q = eliminate_dead_code(&p);
        assert_eq!(q.len(), 3, "all statements feed the result");
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
    }

    #[test]
    fn removes_overwritten_head() {
        let (c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        let f = b.new_temp("F");
        let battr = mjoin_relation::AttrSet::singleton(c.lookup("B").unwrap());
        b.project(f, Reg::Base(0), battr.clone()); // overwritten below, dead
        b.project(f, Reg::Base(1), battr);
        let p = b.finish(f);
        let q = eliminate_dead_code(&p);
        assert_eq!(q.len(), 1);
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
    }

    #[test]
    fn empty_and_fully_live_programs_unchanged() {
        let (_c, s, _db) = setup();
        let b = ProgramBuilder::new(&s);
        let p = b.finish(Reg::Base(0));
        assert_eq!(eliminate_dead_code(&p), p);
    }

    /// The pre-bitset implementation (seed = the result register itself,
    /// gen = direct reads, `Vec::contains` live set), kept as the
    /// differential oracle for the liveness rewrite.
    fn reference_vec_contains(program: &Program) -> Vec<bool> {
        use crate::stmt::Reg;
        let mut live: Vec<Reg> = vec![program.result];
        let mut keep = vec![false; program.stmts.len()];
        for (i, stmt) in program.stmts.iter().enumerate().rev() {
            let head = stmt.head();
            if !live.contains(&head) {
                continue;
            }
            keep[i] = true;
            if !stmt.is_semijoin() {
                live.retain(|&x| x != head);
            }
            for r in stmt.reads() {
                if !live.contains(&r) {
                    live.push(r);
                }
            }
        }
        keep
    }

    /// Random program generator shared by the differential tests (same
    /// shape as the schedule equivalence suite's).
    fn random_program(seed: u64) -> Program {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD", "DE", "EF", "FA"]);
        let mut b = ProgramBuilder::new(&s);
        let mut regs: Vec<Reg> = (0..6).map(Reg::Base).collect();
        for t in 0..3 {
            let src = regs[rng.gen_range(0..regs.len())];
            regs.push(b.new_temp_alias(format!("V{t}"), src));
        }
        let temps: Vec<Reg> = regs.iter().copied().filter(|r| r.is_temp()).collect();
        for _ in 0..rng.gen_range(5..40usize) {
            let a = regs[rng.gen_range(0..regs.len())];
            let c = regs[rng.gen_range(0..regs.len())];
            if rng.gen_bool(0.5) {
                b.semijoin(a, c);
            } else {
                b.join(temps[rng.gen_range(0..temps.len())], a, c);
            }
        }
        b.finish(regs[rng.gen_range(0..regs.len())])
    }

    #[test]
    fn bitset_liveness_matches_vec_contains_reference() {
        use crate::dataflow::Liveness;
        let mut agreements = 0;
        for seed in 0..120u64 {
            let p = random_program(seed);
            let new = Liveness::compute(&p).live_stmts;
            let old = reference_vec_contains(&p);
            // The closure-based analysis can only keep MORE: it treats the
            // alias chain of every read (and of the result) as read, where
            // the reference saw only direct registers.
            for (i, (&n, &o)) in new.iter().zip(&old).enumerate() {
                assert!(n || !o, "seed {seed}: stmt {i} kept by old, dropped by new");
            }
            if new == old {
                agreements += 1;
            }
        }
        // The analyses agree byte-for-byte except where alias chains are in
        // play — the generator builds alias-heavy programs on purpose, so a
        // substantial majority (not all) must still match exactly.
        assert!(agreements >= 60, "only {agreements}/120 agreed");
    }

    #[test]
    fn dce_preserves_semantics_on_random_programs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD", "DE", "EF", "FA"]);
        let schemes = ["AB", "BC", "CD", "DE", "EF", "FA"];
        for seed in 0..40u64 {
            let p = random_program(seed);
            let q = eliminate_dead_code(&p);
            validate(&q, &s).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
            let rels = schemes
                .iter()
                .map(|sch| {
                    let rows: Vec<Vec<i64>> = (0..12)
                        .map(|_| vec![rng.gen_range(0..3), rng.gen_range(0..3)])
                        .collect();
                    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
                    relation_of_ints(&mut c, sch, &refs).unwrap()
                })
                .collect();
            let db = Database::from_relations(rels);
            assert_eq!(
                execute(&q, &db).result,
                execute(&p, &db).result,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn alias_only_result_keeps_its_feeding_statement() {
        // Regression for the pre-bitset bug: the result is an unwritten
        // variable aliasing Base(0); the statement reducing Base(0) feeds
        // the result only through the alias chain and must be kept.
        let (_c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(v);
        let q = eliminate_dead_code(&p);
        assert_eq!(q.len(), 1, "the semijoin is live through the alias");
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
        // The old direct-register analysis dropped it — and changed P(D).
        assert_eq!(reference_vec_contains(&p), vec![false]);
    }

    #[test]
    fn dead_base_semijoin_removed_when_result_elsewhere() {
        // A full-reducer-like program asked only for one relation: the
        // semijoins into other bases are dead for that query.
        let (_c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(1), Reg::Base(0)); // BC ⋉ AB
        b.semijoin(Reg::Base(2), Reg::Base(1)); // CD ⋉ BC
        b.semijoin(Reg::Base(0), Reg::Base(1)); // AB ⋉ BC  (feeds result)
        let p = b.finish(Reg::Base(0));
        let q = eliminate_dead_code(&p);
        // CD ⋉ BC cannot affect Base(0); the other two can.
        assert_eq!(q.len(), 2);
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
    }
}
