//! Dead-code elimination for programs.
//!
//! A program's observable output is its declared result register, so any
//! statement whose head is overwritten before being read again — or never
//! read on a path to the result — can be removed without changing `P(D)`.
//! The §2.3 cost only ever decreases (every removed statement was a charged
//! head). Algorithm 2's output has no dead statements, but ablated programs
//! and hand-written ones (e.g. running a full reducer for a single target
//! relation) do.

use crate::program::Program;
use crate::stmt::Reg;

/// Remove dead statements: those whose head cannot reach the result.
///
/// Standard backward liveness over the straight-line statement list:
/// the result register is live at the end; a statement with a dead head is
/// dropped, otherwise its head is killed (destructive assignment — except a
/// semijoin head, which is also read by the statement itself) and its reads
/// become live. Unread alias initializations are preserved (they cost
/// nothing).
pub fn eliminate_dead_code(program: &Program) -> Program {
    let mut live: Vec<Reg> = vec![program.result];
    let mut keep = vec![false; program.stmts.len()];

    let is_live = |live: &[Reg], r: Reg| live.contains(&r);
    let kill = |live: &mut Vec<Reg>, r: Reg| live.retain(|&x| x != r);
    let gen = |live: &mut Vec<Reg>, r: Reg| {
        if !live.contains(&r) {
            live.push(r);
        }
    };

    for (i, stmt) in program.stmts.iter().enumerate().rev() {
        let head = stmt.head();
        if !is_live(&live, head) {
            continue; // dead: value overwritten or never read
        }
        keep[i] = true;
        // Semijoin reads its own head; project/join fully overwrite it.
        if !stmt.is_semijoin() {
            kill(&mut live, head);
        }
        for r in stmt.reads() {
            gen(&mut live, r);
        }
    }

    // Live registers at entry that are aliased temps keep reading through
    // their init — the interpreter handles that, nothing to rewrite.
    let stmts = program
        .stmts
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(s, _)| s.clone())
        .collect();
    Program {
        num_bases: program.num_bases,
        temp_names: program.temp_names.clone(),
        temp_init: program.temp_init.clone(),
        stmts,
        result: program.result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use crate::program::ProgramBuilder;
    use crate::validate::validate;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::{relation_of_ints, Catalog, Database};

    fn setup() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        let db = Database::from_relations(vec![
            relation_of_ints(&mut c, "AB", &[&[1, 2], &[8, 9]]).unwrap(),
            relation_of_ints(&mut c, "BC", &[&[2, 3]]).unwrap(),
            relation_of_ints(&mut c, "CD", &[&[3, 4]]).unwrap(),
        ]);
        (c, s, db)
    }

    #[test]
    fn removes_unreachable_statement() {
        let (_c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        let w = b.new_temp("W");
        b.join(w, Reg::Base(1), Reg::Base(2)); // never used afterwards
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let q = eliminate_dead_code(&p);
        assert_eq!(q.len(), 2);
        validate(&q, &s).unwrap();
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
        assert!(execute(&q, &db).cost() < execute(&p, &db).cost());
    }

    #[test]
    fn keeps_semijoin_chains() {
        let (_c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(v, Reg::Base(1)); // reduces V, read by the next join
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let q = eliminate_dead_code(&p);
        assert_eq!(q.len(), 3, "all statements feed the result");
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
    }

    #[test]
    fn removes_overwritten_head() {
        let (c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        let f = b.new_temp("F");
        let battr = mjoin_relation::AttrSet::singleton(c.lookup("B").unwrap());
        b.project(f, Reg::Base(0), battr.clone()); // overwritten below, dead
        b.project(f, Reg::Base(1), battr);
        let p = b.finish(f);
        let q = eliminate_dead_code(&p);
        assert_eq!(q.len(), 1);
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
    }

    #[test]
    fn empty_and_fully_live_programs_unchanged() {
        let (_c, s, _db) = setup();
        let b = ProgramBuilder::new(&s);
        let p = b.finish(Reg::Base(0));
        assert_eq!(eliminate_dead_code(&p), p);
    }

    #[test]
    fn dead_base_semijoin_removed_when_result_elsewhere() {
        // A full-reducer-like program asked only for one relation: the
        // semijoins into other bases are dead for that query.
        let (_c, s, db) = setup();
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(1), Reg::Base(0)); // BC ⋉ AB
        b.semijoin(Reg::Base(2), Reg::Base(1)); // CD ⋉ BC
        b.semijoin(Reg::Base(0), Reg::Base(1)); // AB ⋉ BC  (feeds result)
        let p = b.finish(Reg::Base(0));
        let q = eliminate_dead_code(&p);
        // CD ⋉ BC cannot affect Base(0); the other two can.
        assert_eq!(q.len(), 2);
        assert_eq!(execute(&q, &db).result, execute(&p, &db).result);
    }
}
