//! Programs (§2.2) and a builder that tracks register schemes statically.

use crate::stmt::{Reg, Stmt};
use mjoin_hypergraph::DbScheme;
use mjoin_relation::AttrSet;

/// A straight-line program over a database scheme.
///
/// Besides the statement list, a program records how each relation scheme
/// variable is *initialized*: Algorithm 2's step 1 "create a new relation
/// scheme variable named V and set `R(V)` to `R(V₀)`" introduces a variable
/// as an alias of an existing register without generating a statement (and
/// hence without cost). Reading an unwritten variable reads through its
/// alias; the first write breaks it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Number of input relation occurrences (`Reg::Base` range).
    pub num_bases: usize,
    /// Display names of variables, e.g. `V1`, `F2`.
    pub temp_names: Vec<String>,
    /// Alias initialization of each variable (None = must be written before
    /// first read).
    pub temp_init: Vec<Option<Reg>>,
    /// The statements, executed in order.
    pub stmts: Vec<Stmt>,
    /// The register holding the program's result after execution.
    pub result: Reg,
}

impl Program {
    /// Number of statements (`m` in the §2.3 program cost `Σ_{i=1}^{n+m}`).
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Count of each statement kind `(projects, joins, semijoins)`.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut p = 0;
        let mut j = 0;
        let mut s = 0;
        for stmt in &self.stmts {
            match stmt {
                Stmt::Project { .. } => p += 1,
                Stmt::Join { .. } => j += 1,
                Stmt::Semijoin { .. } => s += 1,
            }
        }
        (p, j, s)
    }
}

/// Incremental program construction with static schema tracking.
///
/// The builder knows every register's current scheme (attribute set), so the
/// algorithm deriving a program (Algorithm 2 in `mjoin-core`) can ask
/// questions like "does `V ∩ Wᵢ ≠ ∅`?" while emitting statements — exactly
/// the tests in the paper's steps 3, 4 and 17.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    num_bases: usize,
    base_schemes: Vec<AttrSet>,
    temp_names: Vec<String>,
    temp_init: Vec<Option<Reg>>,
    temp_schemes: Vec<Option<AttrSet>>,
    stmts: Vec<Stmt>,
}

impl ProgramBuilder {
    /// Start a program over `scheme`'s relation occurrences.
    pub fn new(scheme: &DbScheme) -> Self {
        ProgramBuilder {
            num_bases: scheme.num_relations(),
            base_schemes: scheme.edges().to_vec(),
            temp_names: Vec::new(),
            temp_init: Vec::new(),
            temp_schemes: Vec::new(),
            stmts: Vec::new(),
        }
    }

    /// Create an uninitialized variable; it must be written before read.
    pub fn new_temp(&mut self, name: impl Into<String>) -> Reg {
        self.temp_names.push(name.into());
        self.temp_init.push(None);
        self.temp_schemes.push(None);
        Reg::Temp(self.temp_names.len() - 1)
    }

    /// Create a variable aliased to `src` (the paper's "set `R(V)` to
    /// `R(V₀)`"); it can be read immediately and has `src`'s scheme.
    pub fn new_temp_alias(&mut self, name: impl Into<String>, src: Reg) -> Reg {
        let scheme = self.scheme_of(src).clone();
        self.temp_names.push(name.into());
        self.temp_init.push(Some(src));
        self.temp_schemes.push(Some(scheme));
        Reg::Temp(self.temp_names.len() - 1)
    }

    /// The current scheme of `reg`. Panics on an unwritten, unaliased
    /// variable — the validator rejects such reads too.
    pub fn scheme_of(&self, reg: Reg) -> &AttrSet {
        match reg {
            Reg::Base(i) => &self.base_schemes[i],
            Reg::Temp(i) => self.temp_schemes[i]
                .as_ref()
                .expect("read of undefined relation scheme variable"),
        }
    }

    fn set_scheme(&mut self, reg: Reg, scheme: AttrSet) {
        match reg {
            Reg::Base(i) => self.base_schemes[i] = scheme,
            Reg::Temp(i) => self.temp_schemes[i] = Some(scheme),
        }
    }

    /// Append `R(dst) := π_attrs R(src)`; `dst` becomes scheme `attrs`.
    pub fn project(&mut self, dst: Reg, src: Reg, attrs: AttrSet) {
        assert!(dst.is_temp(), "project head must be a variable (§2.2)");
        debug_assert!(
            attrs.is_subset(self.scheme_of(src)),
            "projection attrs must be a subset of the source scheme"
        );
        self.stmts.push(Stmt::Project {
            dst,
            src,
            attrs: attrs.clone(),
        });
        self.set_scheme(dst, attrs);
    }

    /// Append `R(dst) := R(left) ⋈ R(right)`; `dst` becomes the union scheme.
    pub fn join(&mut self, dst: Reg, left: Reg, right: Reg) {
        assert!(dst.is_temp(), "join head must be a variable (§2.2)");
        let scheme = self.scheme_of(left).union(self.scheme_of(right));
        self.stmts.push(Stmt::Join { dst, left, right });
        self.set_scheme(dst, scheme);
    }

    /// Append `R(target) := R(target) ⋉ R(filter)`; scheme unchanged.
    pub fn semijoin(&mut self, target: Reg, filter: Reg) {
        // Reading through scheme_of asserts `target` is defined.
        let _ = self.scheme_of(target);
        let _ = self.scheme_of(filter);
        self.stmts.push(Stmt::Semijoin { target, filter });
    }

    /// Number of statements appended so far.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether no statement has been appended.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Finish, declaring `result` as the register holding `⋈D`.
    pub fn finish(self, result: Reg) -> Program {
        Program {
            num_bases: self.num_bases,
            temp_names: self.temp_names,
            temp_init: self.temp_init,
            stmts: self.stmts,
            result,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    fn scheme() -> (Catalog, DbScheme) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        (c, s)
    }

    #[test]
    fn builder_tracks_schemes() {
        let (_c, s) = scheme();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        assert_eq!(b.scheme_of(v), s.attrs_of(0));
        b.join(v, v, Reg::Base(1)); // V := V ⋈ BC → scheme ABC
        assert_eq!(b.scheme_of(v).len(), 3);
        b.semijoin(v, Reg::Base(2)); // scheme unchanged
        assert_eq!(b.scheme_of(v).len(), 3);
        let attrs = s.attrs_of(1).clone();
        b.project(v, v, attrs.clone()); // V := π_BC V
        assert_eq!(b.scheme_of(v), &attrs);
        let p = b.finish(v);
        assert_eq!(p.len(), 3);
        assert_eq!(p.kind_counts(), (1, 1, 1));
        assert_eq!(p.result, v);
        assert_eq!(p.temp_init[0], Some(Reg::Base(0)));
    }

    #[test]
    #[should_panic(expected = "join head must be a variable")]
    fn join_head_must_be_temp() {
        let (_c, s) = scheme();
        let mut b = ProgramBuilder::new(&s);
        b.join(Reg::Base(0), Reg::Base(0), Reg::Base(1));
    }

    #[test]
    #[should_panic(expected = "undefined relation scheme variable")]
    fn reading_undefined_temp_panics() {
        let (_c, s) = scheme();
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp("V");
        b.semijoin(v, Reg::Base(0));
    }

    #[test]
    fn semijoin_on_base_head_is_allowed() {
        let (_c, s) = scheme();
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(Reg::Base(0));
        assert_eq!(p.len(), 1);
        assert!(p.stmts[0].is_semijoin());
    }

    #[test]
    fn empty_program() {
        let (_c, s) = scheme();
        let b = ProgramBuilder::new(&s);
        assert!(b.is_empty());
        let p = b.finish(Reg::Base(0));
        assert!(p.is_empty());
        assert_eq!(p.num_bases, 3);
    }
}
