//! Pretty-printing programs in the paper's notation.
//!
//! Example 6's program renders as:
//!
//! ```text
//! R(V) := R(ABC) ⋉ R(CDE)
//! R(F) := π_C R(V)
//! R(F) := R(F) ⋈ R(CDE)
//! …
//! ```

use crate::program::Program;
use crate::stmt::{Reg, Stmt};
use mjoin_hypergraph::DbScheme;
use mjoin_relation::{Catalog, Schema};
use std::fmt;

/// Render `program` as text, one statement per line.
///
/// Reads of a variable that has not been written yet resolve through its
/// alias chain, reproducing the paper's Example 6 exactly: the first
/// statement prints as `R(V) := R(ABC) ⋉ R(CDE)` because `V` was created as
/// an alias of `R(ABC)` and not yet assigned. Heads always print by name.
pub fn render(program: &Program, scheme: &DbScheme, catalog: &Catalog) -> String {
    let mut written = vec![false; program.temp_names.len()];
    let base_name = |i: usize| -> String {
        let schema = Schema::from_set(scheme.attrs_of(i));
        format!("R({})", schema.display(catalog))
    };
    let head_name = |reg: Reg| -> String {
        match reg {
            Reg::Base(i) => base_name(i),
            Reg::Temp(t) => format!("R({})", program.temp_names[t]),
        }
    };
    let read_name = |written: &[bool], reg: Reg| -> String {
        let mut cur = reg;
        loop {
            match cur {
                Reg::Base(i) => return base_name(i),
                Reg::Temp(t) => {
                    if written[t] || program.temp_init[t].is_none() {
                        return format!("R({})", program.temp_names[t]);
                    }
                    cur = program.temp_init[t].expect("checked above");
                }
            }
        }
    };
    let mut out = String::new();
    for stmt in &program.stmts {
        let line = match stmt {
            Stmt::Project { dst, src, attrs } => {
                let schema = Schema::from_set(attrs);
                format!(
                    "{} := π_{} {}",
                    head_name(*dst),
                    schema.display(catalog),
                    read_name(&written, *src)
                )
            }
            Stmt::Join { dst, left, right } => format!(
                "{} := {} ⋈ {}",
                head_name(*dst),
                read_name(&written, *left),
                read_name(&written, *right)
            ),
            Stmt::Semijoin { target, filter } => format!(
                "{} := {} ⋉ {}",
                head_name(*target),
                read_name(&written, *target),
                read_name(&written, *filter)
            ),
        };
        if let Reg::Temp(t) = stmt.head() {
            written[t] = true;
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Adapter so programs can be formatted inline with `{}`.
pub struct ProgramDisplay<'a> {
    /// The program to render.
    pub program: &'a Program,
    /// Its database scheme.
    pub scheme: &'a DbScheme,
    /// The attribute catalog.
    pub catalog: &'a Catalog,
}

impl fmt::Display for ProgramDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", render(self.program, self.scheme, self.catalog))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn renders_paper_notation() {
        let mut c = Catalog::new();
        let scheme = DbScheme::parse(&mut c, &["ABC", "CDE"]);
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(v, Reg::Base(1));
        let f = b.new_temp("F");
        let c_attr = mjoin_relation::AttrSet::singleton(c.lookup("C").unwrap());
        b.project(f, v, c_attr);
        b.join(v, v, f);
        let p = b.finish(v);
        let text = render(&p, &scheme, &c);
        let lines: Vec<&str> = text.lines().collect();
        // V is aliased to R(ABC) and unwritten, so its first read renders
        // through the alias (paper Example 6 style).
        assert_eq!(lines[0], "R(V) := R(ABC) ⋉ R(CDE)");
        assert_eq!(lines[1], "R(F) := π_C R(V)");
        assert_eq!(lines[2], "R(V) := R(V) ⋈ R(F)");
        // Display adapter agrees.
        let d = ProgramDisplay {
            program: &p,
            scheme: &scheme,
            catalog: &c,
        };
        assert_eq!(d.to_string(), text);
    }
}
