//! Shared dataflow infrastructure over programs: dense register bitsets and
//! backward liveness.
//!
//! Registers of a program form a small dense space — `num_bases` input
//! occurrences followed by the relation scheme variables — so dataflow facts
//! ("which registers are live here") pack into a handful of `u64` words.
//! [`eliminate_dead_code`](crate::optimize::eliminate_dead_code) and the
//! passes of `mjoin-analyze` both consume the [`Liveness`] computed here, so
//! the rewriter and the report-only lint can never disagree about which
//! statements are dead.
//!
//! Liveness is seeded and propagated through *read closures*: reading an
//! unwritten variable reads through its `temp_init` alias chain at run time,
//! so every register along the chain is conservatively treated as read (see
//! [`crate::schedule::read_closure`]). The historical `Vec::contains`
//! implementation seeded only the result register itself, which dropped
//! statements feeding an alias-only result — the closure-based analysis is
//! sound for those programs too (and identical on programs whose reads never
//! resolve through an alias chain).

use crate::program::Program;
use crate::schedule::read_closure;
use crate::stmt::Reg;

/// A fixed-capacity set of register indices, packed 64 per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set with capacity for indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Insert `idx`; returns whether it was newly inserted.
    pub fn insert(&mut self, idx: usize) -> bool {
        let (w, b) = (idx / 64, idx % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Remove `idx`; returns whether it was present.
    pub fn remove(&mut self, idx: usize) -> bool {
        let (w, b) = (idx / 64, idx % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, idx: usize) -> bool {
        let (w, b) = (idx / 64, idx % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∪= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// Whether the two sets share an element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterate over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// Number of registers a program addresses (bases then temps), i.e. the
/// capacity every per-program [`BitSet`] needs.
pub fn num_regs(program: &Program) -> usize {
    program.num_bases + program.temp_init.len()
}

/// Dense index of a register: base occurrences first, then variables.
pub fn reg_index(program: &Program, reg: Reg) -> usize {
    match reg {
        Reg::Base(i) => i,
        Reg::Temp(t) => program.num_bases + t,
    }
}

/// The conservative read set of one statement as a [`BitSet`]: the read
/// registers plus their full alias-chain closures.
pub fn stmt_read_set(program: &Program, stmt_idx: usize) -> BitSet {
    let mut regs = Vec::new();
    for r in program.stmts[stmt_idx].reads() {
        read_closure(program, r, &mut regs);
    }
    let mut set = BitSet::new(num_regs(program));
    for r in regs {
        set.insert(reg_index(program, r));
    }
    set
}

/// Backward liveness over a straight-line program.
///
/// Computed in one backward sweep (straight-line code needs no fixpoint):
/// the result register's read closure is live at exit; a statement whose
/// head is dead at its exit point is itself dead and transfers nothing; a
/// live statement kills its head (destructive assignment — except a
/// semijoin, whose head is also one of its reads) and generates its read
/// closure.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_out[i]`: registers live immediately *after* statement `i`
    /// (indexed by [`reg_index`]).
    pub live_out: Vec<BitSet>,
    /// `live_stmts[i]`: whether statement `i`'s head is live at its exit —
    /// the exact keep/drop decision of
    /// [`eliminate_dead_code`](crate::optimize::eliminate_dead_code).
    pub live_stmts: Vec<bool>,
}

impl Liveness {
    /// Compute liveness for `program`.
    pub fn compute(program: &Program) -> Self {
        let n = program.stmts.len();
        let regs = num_regs(program);
        let mut live = BitSet::new(regs);
        let mut closure = Vec::new();
        read_closure(program, program.result, &mut closure);
        for r in closure {
            live.insert(reg_index(program, r));
        }

        let mut live_out = vec![BitSet::new(0); n];
        let mut live_stmts = vec![false; n];
        for (i, stmt) in program.stmts.iter().enumerate().rev() {
            live_out[i] = live.clone();
            let head = reg_index(program, stmt.head());
            if !live.contains(head) {
                continue; // dead: overwritten later or never read
            }
            live_stmts[i] = true;
            if !stmt.is_semijoin() {
                live.remove(head);
            }
            live.union_with(&stmt_read_set(program, i));
        }
        Liveness {
            live_out,
            live_stmts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::Catalog;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);

        let mut t = BitSet::new(130);
        t.insert(5);
        assert!(!t.intersects(&s));
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s));
        assert!(t.intersects(&s));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn liveness_marks_dead_stores() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        let w = b.new_temp("W");
        b.join(w, Reg::Base(1), Reg::Base(2)); // dead: never read
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let lv = Liveness::compute(&p);
        assert_eq!(lv.live_stmts, vec![false, true, true]);
        // After the last statement only the result chain is live.
        assert!(lv.live_out[2].contains(reg_index(&p, v)));
    }

    #[test]
    fn liveness_seeds_through_result_alias_chain() {
        // The result is an unwritten variable aliasing Base(0): a statement
        // reducing Base(0) in place is live even though no statement reads
        // or writes the variable itself.
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "BC"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(v);
        let lv = Liveness::compute(&p);
        assert_eq!(lv.live_stmts, vec![true]);
    }
}
