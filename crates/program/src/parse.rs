//! Parsing programs from the paper's textual notation.
//!
//! The inverse of [`crate::display::render`]: lines of the form
//!
//! ```text
//! R(V) := R(ABC) ⋉ R(CDE)
//! R(F) := π_C R(V)
//! R(V) := R(V) ⋈ R(F)
//! ```
//!
//! Base relations are referenced by their scheme's attribute letters
//! (resolved as a *set* against the database scheme, consuming multiset
//! occurrences in order); any other name is a relation scheme variable,
//! created at its first head occurrence. `:=`, `⋈`/`|x|`, `⋉`/`|x`, and
//! `π_`/`pi_` are accepted. The last line's head is the program result.

use crate::program::Program;
use crate::stmt::{Reg, Stmt};
use mjoin_hypergraph::DbScheme;
use mjoin_relation::fxhash::FxHashMap;
use mjoin_relation::{AttrSet, Catalog, Error, Result};

struct Names<'a> {
    catalog: &'a Catalog,
    scheme: &'a DbScheme,
    used_bases: Vec<bool>,
    /// Base register resolved for a given scheme text, so later mentions of
    /// the same text reuse the same occurrence.
    base_by_text: FxHashMap<String, usize>,
    temps: FxHashMap<String, usize>,
    temp_names: Vec<String>,
}

impl Names<'_> {
    /// Resolve a name inside `R(...)`: an existing temp, a base scheme, or a
    /// fresh temp if `allow_new_temp`.
    fn resolve(&mut self, name: &str, allow_new_temp: bool) -> Result<Reg> {
        if let Some(&t) = self.temps.get(name) {
            return Ok(Reg::Temp(t));
        }
        if let Some(&b) = self.base_by_text.get(name) {
            return Ok(Reg::Base(b));
        }
        // Try to read the name as an attribute set naming a base scheme.
        let mut attrs = AttrSet::new();
        let mut is_scheme = true;
        for ch in name.chars() {
            match self.catalog.lookup(&ch.to_string()) {
                Some(id) => {
                    attrs.insert(id);
                }
                None => {
                    is_scheme = false;
                    break;
                }
            }
        }
        if is_scheme {
            for idx in 0..self.scheme.num_relations() {
                if !self.used_bases[idx] && *self.scheme.attrs_of(idx) == attrs {
                    self.used_bases[idx] = true;
                    self.base_by_text.insert(name.to_string(), idx);
                    return Ok(Reg::Base(idx));
                }
            }
        }
        if allow_new_temp {
            let t = self.temp_names.len();
            self.temp_names.push(name.to_string());
            self.temps.insert(name.to_string(), t);
            return Ok(Reg::Temp(t));
        }
        Err(Error::Parse(format!(
            "`{name}` is neither a defined variable nor an unused base scheme"
        )))
    }
}

/// Extract the name inside `R(...)` starting at `text`; returns (name, rest).
fn parse_reg_token(text: &str) -> Result<(&str, &str)> {
    let text = text.trim_start();
    let rest = text
        .strip_prefix("R(")
        .ok_or_else(|| Error::Parse(format!("expected `R(…)` at `{text}`")))?;
    let close = rest
        .find(')')
        .ok_or_else(|| Error::Parse("unclosed `R(`".to_string()))?;
    Ok((rest[..close].trim(), &rest[close + 1..]))
}

/// Parse a program in display notation. `result` defaults to the last
/// statement's head; an empty input is an error (there is no way to name a
/// result register).
pub fn parse_program(catalog: &Catalog, scheme: &DbScheme, text: &str) -> Result<Program> {
    let mut names = Names {
        catalog,
        scheme,
        used_bases: vec![false; scheme.num_relations()],
        base_by_text: FxHashMap::default(),
        temps: FxHashMap::default(),
        temp_names: Vec::new(),
    };
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut temp_init: Vec<Option<Reg>> = Vec::new();
    let mut last_head: Option<Reg> = None;

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head_name, rest) = parse_reg_token(line)?;
        let rest = rest.trim_start();
        let rest = rest
            .strip_prefix(":=")
            .ok_or_else(|| Error::Parse(format!("expected `:=` in `{line}`")))?
            .trim_start();

        // Projection?
        let proj_prefix = ["π_", "pi_"].iter().find_map(|p| rest.strip_prefix(p));
        if let Some(after) = proj_prefix {
            let after = after.trim_start();
            let split = after
                .find(char::is_whitespace)
                .ok_or_else(|| Error::Parse(format!("expected source after π in `{line}`")))?;
            let (attr_text, src_text) = after.split_at(split);
            let mut attrs = AttrSet::new();
            for ch in attr_text.chars() {
                attrs.insert(catalog.require(&ch.to_string())?);
            }
            let (src_name, tail) = parse_reg_token(src_text)?;
            if !tail.trim().is_empty() {
                return Err(Error::Parse(format!("trailing input in `{line}`")));
            }
            let src = names.resolve(src_name, false)?;
            let dst = names.resolve(head_name, true)?;
            if !dst.is_temp() {
                return Err(Error::Parse("projection head must be a variable".into()));
            }
            while temp_init.len() < names.temp_names.len() {
                temp_init.push(None);
            }
            stmts.push(Stmt::Project { dst, src, attrs });
            last_head = Some(dst);
            continue;
        }

        // Join or semijoin: `R(a) OP R(b)`.
        let (left_name, rest2) = parse_reg_token(rest)?;
        let rest2 = rest2.trim_start();
        let (op, rest3) = if let Some(r) = rest2.strip_prefix('⋈') {
            ('j', r)
        } else if let Some(r) = rest2.strip_prefix("|x|") {
            ('j', r)
        } else if let Some(r) = rest2.strip_prefix('⋉') {
            ('s', r)
        } else if let Some(r) = rest2.strip_prefix("|x") {
            ('s', r)
        } else {
            return Err(Error::Parse(format!("expected ⋈ or ⋉ in `{line}`")));
        };
        let (right_name, tail) = parse_reg_token(rest3)?;
        if !tail.trim().is_empty() {
            return Err(Error::Parse(format!("trailing input in `{line}`")));
        }

        match op {
            'j' => {
                // If the head reads itself (V := V ⋈ W) the head must already
                // exist — unless the left operand *is* a base scheme, in
                // which case the head aliases it (Algorithm 2's step 1 fused
                // into the first statement, e.g. `R(V) := R(ABC) ⋉ R(CDE)`).
                let left = names.resolve(left_name, false)?;
                let right = names.resolve(right_name, false)?;
                let dst = if head_name == left_name {
                    left
                } else {
                    names.resolve(head_name, true)?
                };
                if !dst.is_temp() {
                    return Err(Error::Parse("join head must be a variable".into()));
                }
                while temp_init.len() < names.temp_names.len() {
                    temp_init.push(None);
                }
                stmts.push(Stmt::Join { dst, left, right });
                last_head = Some(dst);
            }
            _ => {
                let filter = names.resolve(right_name, false)?;
                // Head and left operand must denote the same register; if
                // the head is a new variable and the left is a base, the
                // variable starts as an alias of that base.
                let target = if head_name == left_name {
                    names.resolve(head_name, true)?
                } else {
                    let left = names.resolve(left_name, false)?;
                    let head = names.resolve(head_name, true)?;
                    match head {
                        Reg::Temp(t) if temp_init.len() <= t => {
                            // Fresh variable: alias it to the left operand.
                            while temp_init.len() < t {
                                temp_init.push(None);
                            }
                            temp_init.push(Some(left));
                            head
                        }
                        _ => {
                            return Err(Error::Parse(format!(
                            "semijoin head `{head_name}` must equal its left operand `{left_name}`"
                        )))
                        }
                    }
                };
                while temp_init.len() < names.temp_names.len() {
                    temp_init.push(None);
                }
                stmts.push(Stmt::Semijoin { target, filter });
                last_head = Some(target);
            }
        }
    }

    let result = last_head.ok_or_else(|| Error::Parse("empty program".to_string()))?;
    while temp_init.len() < names.temp_names.len() {
        temp_init.push(None);
    }
    Ok(Program {
        num_bases: scheme.num_relations(),
        temp_names: names.temp_names,
        temp_init,
        stmts,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::render;
    use crate::interp::execute;
    use crate::validate::validate;
    use mjoin_relation::{relation_of_ints, Database};

    fn setup() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["ABC", "CDE", "EFG", "GHA"]);
        let db = Database::from_relations(vec![
            relation_of_ints(&mut c, "ABC", &[&[1, 2, 3]]).unwrap(),
            relation_of_ints(&mut c, "CDE", &[&[3, 4, 5]]).unwrap(),
            relation_of_ints(&mut c, "EFG", &[&[5, 6, 7]]).unwrap(),
            relation_of_ints(&mut c, "GHA", &[&[7, 8, 1]]).unwrap(),
        ]);
        (c, s, db)
    }

    /// The paper's Example 6 program, verbatim.
    const EXAMPLE6: &str = "\
R(V) := R(ABC) ⋉ R(CDE)
R(F) := π_C R(V)
R(F) := R(F) ⋈ R(CDE)
R(F) := π_CE R(F)
R(F) := R(F) ⋉ R(EFG)
R(V) := R(V) ⋈ R(F)
R(V) := R(V) ⋈ R(EFG)
R(V) := R(V) ⋉ R(GHA)
R(V) := R(V) ⋈ R(CDE)
R(V) := R(V) ⋈ R(GHA)
";

    #[test]
    fn parses_example6_and_computes_join() {
        let (c, s, db) = setup();
        let p = parse_program(&c, &s, EXAMPLE6).unwrap();
        assert_eq!(p.len(), 10);
        validate(&p, &s).unwrap();
        let out = execute(&p, &db);
        assert_eq!(*out.result, db.join_all());
    }

    #[test]
    fn render_parse_roundtrip() {
        let (c, s, db) = setup();
        let p = parse_program(&c, &s, EXAMPLE6).unwrap();
        let text = render(&p, &s, &c);
        let p2 = parse_program(&c, &s, &text).unwrap();
        assert_eq!(p.stmts, p2.stmts);
        assert_eq!(*execute(&p2, &db).result, db.join_all());
    }

    #[test]
    fn ascii_operators_accepted() {
        let (c, s, db) = setup();
        let text = "\
R(V) := R(ABC) |x R(CDE)
R(V) := R(V) |x| R(CDE)
R(V) := R(V) |x| R(EFG)
R(V) := R(V) |x| R(GHA)
";
        let p = parse_program(&c, &s, text).unwrap();
        assert_eq!(*execute(&p, &db).result, db.join_all());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (c, s, _db) = setup();
        let text = "# header\n\nR(V) := R(ABC) ⋈ R(CDE)\n";
        let p = parse_program(&c, &s, text).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn errors() {
        let (c, s, _db) = setup();
        assert!(parse_program(&c, &s, "").is_err());
        assert!(parse_program(&c, &s, "R(V) = R(ABC) ⋈ R(CDE)").is_err());
        assert!(parse_program(&c, &s, "R(V) := R(QQQ) ⋈ R(CDE)").is_err());
        assert!(parse_program(&c, &s, "R(V) := R(ABC) ? R(CDE)").is_err());
        // Reading an undefined variable.
        assert!(parse_program(&c, &s, "R(V) := R(W) ⋈ R(CDE)").is_err());
        // Unclosed register.
        assert!(parse_program(&c, &s, "R(V := R(ABC) ⋈ R(CDE)").is_err());
    }

    #[test]
    fn multiset_occurrences_resolved_in_order() {
        let mut c = Catalog::new();
        let s = DbScheme::parse(&mut c, &["AB", "AB", "BC"]);
        let text = "R(V) := R(AB) ⋈ R(BC)\nR(V) := R(V) ⋈ R(AB)\n";
        let p = parse_program(&c, &s, text).unwrap();
        // First AB mention binds occurrence 0 (and is reused by name);
        // hmm — the second `R(AB)` reuses the same text. Both refer to base 0.
        // That is the documented behavior: to address the second occurrence
        // a distinct text form is unavailable, so programs needing both
        // occurrences must come from the API, not the parser.
        validate(&p, &s).unwrap();
        assert_eq!(p.num_bases, 3);
    }
}
