//! The program interpreter, with §2.3 cost accounting.
//!
//! Applying a program `P` to a database `D` (the paper's `P(D)`) assigns each
//! input relation to its base register, executes the statements in order, and
//! charges the head relation of every statement. The total cost is
//! `Σ_{i=1}^{n+m} |Rᵢ|`: the `n` inputs plus the `m` statement heads.
//!
//! Registers hold `Arc<Relation>`, so reading a register — including the
//! common "reduce a base relation, then join it" pattern where one value is
//! read many times — is a reference-count bump, never a deep copy of the
//! tuples. Statement heads still *assign* fresh relations, matching the
//! paper's destructive-assignment semantics.
//!
//! [`execute_parallel`] runs the same programs level-by-level over the
//! dependence DAG of [`crate::schedule`], executing each level's
//! hazard-free statements concurrently on the shared [`mjoin_pool`] and
//! using the partitioned parallel operators inside each statement. Its
//! observable outcome (result, ledger, `head_sizes`, `peak_resident`) is
//! byte-identical to [`execute`]'s; the differential tests in `mjoin-core`
//! enforce this on randomized databases.

use crate::program::Program;
use crate::schedule::schedule;
use crate::stmt::{Reg, Stmt};
use mjoin_relation::{ops, CostLedger, Database, Relation, Schema};
use std::sync::Arc;

/// The outcome of running a program on a database.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The relation in the program's declared result register. Shared, not
    /// copied, out of the interpreter's register file: deref (or clone the
    /// `Arc`) to use it.
    pub result: Arc<Relation>,
    /// The cost account (inputs + every statement head).
    pub ledger: CostLedger,
    /// `|head|` after each statement, in statement order. Used by the
    /// Theorem 2 experiments to locate the peak intermediate.
    pub head_sizes: Vec<usize>,
    /// Peak *resident* tuples: the maximum, over statement boundaries of
    /// the sequential execution order, of the total tuples held across all
    /// registers at once. The paper motivates linear join expressions by
    /// their single live temporary; this measures the analogous space
    /// footprint for programs. `execute_parallel` reports the same number
    /// (it is a property of the program, kept comparable across executors),
    /// though a parallel run may transiently hold more.
    pub peak_resident: u64,
}

impl ExecOutcome {
    /// Total tuple-count cost `cost(P(D))`.
    pub fn cost(&self) -> u64 {
        self.ledger.total()
    }
}

/// The register file: shared-ownership relations, so reads are cheap and
/// concurrent statement evaluation can hold operands without copying.
struct Machine {
    bases: Vec<Arc<Relation>>,
    temps: Vec<Option<Arc<Relation>>>,
}

impl Machine {
    fn new(program: &Program, db: &Database) -> Self {
        Machine {
            bases: db.relations().iter().cloned().map(Arc::new).collect(),
            temps: vec![None; program.temp_names.len()],
        }
    }

    /// Read a register; unwritten variables read through their alias chain.
    /// Costs one `Arc` clone (a reference-count bump), not a relation copy.
    fn read(&self, program: &Program, reg: Reg) -> Arc<Relation> {
        let mut cur = reg;
        loop {
            match cur {
                Reg::Base(i) => return Arc::clone(&self.bases[i]),
                Reg::Temp(t) => match &self.temps[t] {
                    Some(rel) => return Arc::clone(rel),
                    None => {
                        cur = program.temp_init[t]
                            .expect("validated: unwritten variable has an alias");
                    }
                },
            }
        }
    }

    fn write(&mut self, reg: Reg, rel: Arc<Relation>) {
        match reg {
            Reg::Base(i) => self.bases[i] = rel,
            Reg::Temp(t) => self.temps[t] = Some(rel),
        }
    }

    /// Total tuples currently held across all registers.
    fn resident(&self) -> u64 {
        self.bases.iter().map(|r| r.len() as u64).sum::<u64>()
            + self
                .temps
                .iter()
                .flatten()
                .map(|r| r.len() as u64)
                .sum::<u64>()
    }
}

/// Evaluate one statement's body against the current register file. With
/// `threads == 1` the partitioned operators take their sequential paths, so
/// this is also the sequential interpreter's evaluation step.
fn eval_stmt(program: &Program, m: &Machine, stmt: &Stmt, threads: usize) -> (Reg, Relation) {
    match stmt {
        Stmt::Project { dst, src, attrs } => {
            let src_rel = m.read(program, *src);
            let schema = Schema::from_set(attrs);
            let projected = ops::par_project(&src_rel, schema.attrs(), threads)
                .expect("validated: projection attrs ⊆ source scheme");
            (*dst, projected)
        }
        Stmt::Join { dst, left, right } => {
            let l = m.read(program, *left);
            let r = m.read(program, *right);
            (*dst, ops::par_join(&l, &r, threads))
        }
        Stmt::Semijoin { target, filter } => {
            let t = m.read(program, *target);
            let f = m.read(program, *filter);
            (*target, ops::par_semijoin(&t, &f, threads))
        }
    }
}

fn stmt_kind(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::Project { .. } => "project",
        Stmt::Join { .. } => "join",
        Stmt::Semijoin { .. } => "semijoin",
    }
}

/// [`eval_stmt`] wrapped in an `exec/stmt` span carrying the statement
/// index, kind, and output cardinality (the data EXPLAIN ANALYZE reports).
fn eval_stmt_traced(
    program: &Program,
    m: &Machine,
    stmt: &Stmt,
    index: usize,
    threads: usize,
) -> (Reg, Relation) {
    let mut sp = mjoin_trace::span("exec", "stmt");
    let (head, value) = eval_stmt(program, m, stmt, threads);
    if sp.is_active() {
        sp.arg("index", index);
        sp.arg("kind", stmt_kind(stmt));
        sp.arg("out_rows", value.len());
    }
    (head, value)
}

fn check_arity(program: &Program, db: &Database) {
    assert_eq!(
        program.num_bases,
        db.len(),
        "program and database disagree on the number of relations"
    );
}

/// Execute `program` on `db`, one statement at a time in program order.
///
/// The program should have passed [`crate::validate::validate`]; running an
/// invalid program may panic (it will not produce wrong answers silently).
pub fn execute(program: &Program, db: &Database) -> ExecOutcome {
    check_arity(program, db);
    let mut sp = mjoin_trace::span("exec", "execute");
    if sp.is_active() {
        sp.arg("stmts", program.stmts.len());
        sp.arg("threads", 1usize);
    }
    let mut ledger = CostLedger::new();
    db.charge_inputs(&mut ledger);

    let mut m = Machine::new(program, db);
    let mut head_sizes = Vec::with_capacity(program.stmts.len());
    let mut peak_resident = m.resident();

    for (i, stmt) in program.stmts.iter().enumerate() {
        let (head, value) = eval_stmt_traced(program, &m, stmt, i, 1);
        ledger.charge_generated(format!("stmt {i}"), value.len());
        head_sizes.push(value.len());
        m.write(head, Arc::new(value));
        peak_resident = peak_resident.max(m.resident());
    }

    let result = m.read(program, program.result);
    ExecOutcome {
        result,
        ledger,
        head_sizes,
        peak_resident,
    }
}

/// Execute `program` on `db` with statement-level and operator-level
/// parallelism on the shared pool.
///
/// Statements are grouped into the hazard-free levels of
/// [`crate::schedule::schedule`] and each level is evaluated concurrently
/// against the register file as left by the previous level; because
/// same-level statements touch disjoint registers, every statement reads
/// exactly the values it would read under sequential execution, so the
/// computed relations are identical. The ledger, `head_sizes`, and
/// `peak_resident` are then reconstructed in *statement* order (the sizes of
/// all heads are known once execution finishes), which makes the whole
/// [`ExecOutcome`] byte-identical to [`execute`]'s.
pub fn execute_parallel(program: &Program, db: &Database, threads: usize) -> ExecOutcome {
    check_arity(program, db);
    let threads = threads.max(1);
    let mut ledger = CostLedger::new();
    db.charge_inputs(&mut ledger);

    let mut m = Machine::new(program, db);
    let n = program.stmts.len();
    let mut sizes = vec![0usize; n];

    let sched = schedule(program);
    let mut sp = mjoin_trace::span("exec", "execute_parallel");
    if sp.is_active() {
        sp.arg("stmts", n);
        sp.arg("threads", threads);
        sp.arg("depth", sched.depth());
        sp.arg("width", sched.width());
    }
    for (lv, level) in sched.levels.iter().enumerate() {
        let mut level_sp = mjoin_trace::span("exec", "level");
        if level_sp.is_active() {
            level_sp.arg("level", lv + 1);
            level_sp.arg("stmts", level.len());
        }
        let computed: Vec<(usize, (Reg, Relation))> = if threads == 1 || level.len() == 1 {
            level
                .iter()
                .map(|&i| {
                    (
                        i,
                        eval_stmt_traced(program, &m, &program.stmts[i], i, threads),
                    )
                })
                .collect()
        } else {
            mjoin_pool::par_map(level.clone(), |i| {
                (
                    i,
                    eval_stmt_traced(program, &m, &program.stmts[i], i, threads),
                )
            })
        };
        for (i, (head, value)) in computed {
            sizes[i] = value.len();
            m.write(head, Arc::new(value));
        }
    }
    drop(sp);

    let mut head_sizes = Vec::with_capacity(n);
    for (i, &size) in sizes.iter().enumerate() {
        ledger.charge_generated(format!("stmt {i}"), size);
        head_sizes.push(size);
    }

    let result = m.read(program, program.result);
    ExecOutcome {
        result,
        ledger,
        head_sizes,
        peak_resident: simulate_peak_resident(program, db, &sizes),
    }
}

/// Replay register sizes in statement order to recover the sequential
/// executor's `peak_resident`. Head sizes determine the whole trajectory:
/// each statement replaces its head register's size with `sizes[i]`, and
/// the footprint is sampled at every statement boundary.
fn simulate_peak_resident(program: &Program, db: &Database, sizes: &[usize]) -> u64 {
    let mut base_sizes: Vec<u64> = db.relations().iter().map(|r| r.len() as u64).collect();
    let mut temp_sizes: Vec<u64> = vec![0; program.temp_names.len()];
    let mut resident: u64 = base_sizes.iter().sum();
    let mut peak = resident;
    for (stmt, &size) in program.stmts.iter().zip(sizes) {
        let slot = match stmt.head() {
            Reg::Base(i) => &mut base_sizes[i],
            Reg::Temp(t) => &mut temp_sizes[t],
        };
        resident = resident - *slot + size as u64;
        *slot = size as u64;
        peak = peak.max(resident);
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn chain_db() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[9, 8]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 3], &[7, 7]]).unwrap();
        let t = relation_of_ints(&mut c, "CD", &[&[3, 4]]).unwrap();
        let scheme = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        (c, scheme, Database::from_relations(vec![r, s, t]))
    }

    #[test]
    fn join_program_computes_full_join() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        assert_eq!(*out.result, db.join_all());
        // cost: inputs 2+2+1 = 5, AB⋈BC = 1, ⋈CD = 1 → 7.
        assert_eq!(out.cost(), 7);
        assert_eq!(out.head_sizes, vec![1, 1]);
    }

    #[test]
    fn semijoin_reduction_lowers_cost() {
        let (_c, scheme, db) = chain_db();
        // Reduce AB by BC before joining: dangling (9,8) disappears early.
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(v, Reg::Base(1)); // V := AB ⋉ BC → {(1,2)}
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        assert_eq!(*out.result, db.join_all());
        assert_eq!(out.head_sizes, vec![1, 1, 1]);
        assert_eq!(out.cost(), 5 + 3);
    }

    #[test]
    fn alias_reads_through_without_cost() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        let p = b.finish(v);
        let out = execute(&p, &db);
        // No statements: result is just R(AB); cost is the inputs only.
        assert_eq!(*out.result, *db.relation(0));
        assert_eq!(out.cost(), db.total_tuples());
        assert!(out.head_sizes.is_empty());
        assert_eq!(out.peak_resident, db.total_tuples());
    }

    #[test]
    fn peak_resident_tracks_live_registers() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        // Inputs (5 tuples) stay resident; V adds at most 1 tuple.
        assert_eq!(out.peak_resident, 6);
        assert!(out.peak_resident <= out.cost());
    }

    #[test]
    fn projection_statement() {
        let (c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let f = b.new_temp("F");
        let b_attr = mjoin_relation::AttrSet::singleton(c.lookup("B").unwrap());
        b.project(f, Reg::Base(0), b_attr);
        let p = b.finish(f);
        let out = execute(&p, &db);
        assert_eq!(out.result.len(), 2); // π_B(AB) = {2, 8}
        assert_eq!(out.result.schema().arity(), 1);
    }

    #[test]
    fn base_register_can_be_reduced_in_place() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(Reg::Base(0));
        let out = execute(&p, &db);
        assert_eq!(out.result.len(), 1);
        // Original database untouched.
        assert_eq!(db.relation(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "disagree on the number of relations")]
    fn wrong_database_size_panics() {
        let (_c, scheme, db) = chain_db();
        let b = ProgramBuilder::new(&scheme);
        let p = b.finish(Reg::Base(0));
        let small = db.restrict(&[0, 1]);
        execute(&p, &small);
    }

    #[test]
    fn reading_a_register_shares_rather_than_copies() {
        let (_c, scheme, db) = chain_db();
        let b = ProgramBuilder::new(&scheme);
        let p = b.finish(Reg::Base(0));
        let m = Machine::new(&p, &db);
        let first = m.read(&p, Reg::Base(0));
        let second = m.read(&p, Reg::Base(0));
        assert!(
            Arc::ptr_eq(&first, &second),
            "read must return the same shared allocation"
        );
    }

    #[test]
    fn parallel_outcome_matches_sequential_exactly() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        // Mix of parallelizable reductions and a serial join chain.
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(2), Reg::Base(1));
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let seq = execute(&p, &db);
        for threads in [1, 2, 4] {
            let par = execute_parallel(&p, &db, threads);
            assert_eq!(*par.result, *seq.result, "threads = {threads}");
            assert_eq!(par.head_sizes, seq.head_sizes, "threads = {threads}");
            assert_eq!(par.peak_resident, seq.peak_resident, "threads = {threads}");
            assert_eq!(par.ledger, seq.ledger, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_empty_program() {
        let (_c, scheme, db) = chain_db();
        let b = ProgramBuilder::new(&scheme);
        let p = b.finish(Reg::Base(2));
        let seq = execute(&p, &db);
        let par = execute_parallel(&p, &db, 4);
        assert_eq!(*par.result, *seq.result);
        assert_eq!(par.peak_resident, seq.peak_resident);
    }
}
