//! The program interpreter, with §2.3 cost accounting.
//!
//! Applying a program `P` to a database `D` (the paper's `P(D)`) assigns each
//! input relation to its base register, executes the statements in order, and
//! charges the head relation of every statement. The total cost is
//! `Σ_{i=1}^{n+m} |Rᵢ|`: the `n` inputs plus the `m` statement heads.

use crate::program::Program;
use crate::stmt::{Reg, Stmt};
use mjoin_relation::{ops, CostLedger, Database, Relation, Schema};

/// The outcome of running a program on a database.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The relation in the program's declared result register.
    pub result: Relation,
    /// The cost account (inputs + every statement head).
    pub ledger: CostLedger,
    /// `|head|` after each statement, in execution order. Used by the
    /// Theorem 2 experiments to locate the peak intermediate.
    pub head_sizes: Vec<usize>,
    /// Peak *resident* tuples: the maximum, over statement boundaries, of
    /// the total tuples held across all registers at once. The paper
    /// motivates linear join expressions by their single live temporary;
    /// this measures the analogous space footprint for programs.
    pub peak_resident: u64,
}

impl ExecOutcome {
    /// Total tuple-count cost `cost(P(D))`.
    pub fn cost(&self) -> u64 {
        self.ledger.total()
    }
}

struct Machine {
    bases: Vec<Relation>,
    temps: Vec<Option<Relation>>,
}

impl Machine {
    /// Read a register; unwritten variables read through their alias chain.
    fn read(&self, program: &Program, reg: Reg) -> Relation {
        let mut cur = reg;
        loop {
            match cur {
                Reg::Base(i) => return self.bases[i].clone(),
                Reg::Temp(t) => match &self.temps[t] {
                    Some(rel) => return rel.clone(),
                    None => {
                        cur = program.temp_init[t]
                            .expect("validated: unwritten variable has an alias");
                    }
                },
            }
        }
    }

    fn write(&mut self, reg: Reg, rel: Relation) {
        match reg {
            Reg::Base(i) => self.bases[i] = rel,
            Reg::Temp(t) => self.temps[t] = Some(rel),
        }
    }
}

/// Execute `program` on `db`.
///
/// The program should have passed [`crate::validate::validate`]; running an
/// invalid program may panic (it will not produce wrong answers silently).
pub fn execute(program: &Program, db: &Database) -> ExecOutcome {
    assert_eq!(
        program.num_bases,
        db.len(),
        "program and database disagree on the number of relations"
    );
    let mut ledger = CostLedger::new();
    db.charge_inputs(&mut ledger);

    let mut m = Machine {
        bases: db.relations().to_vec(),
        temps: vec![None; program.temp_names.len()],
    };
    let mut head_sizes = Vec::with_capacity(program.stmts.len());
    let resident = |m: &Machine| -> u64 {
        m.bases.iter().map(|r| r.len() as u64).sum::<u64>()
            + m.temps
                .iter()
                .flatten()
                .map(|r| r.len() as u64)
                .sum::<u64>()
    };
    let mut peak_resident = resident(&m);

    for (i, stmt) in program.stmts.iter().enumerate() {
        let (head, value) = match stmt {
            Stmt::Project { dst, src, attrs } => {
                let src_rel = m.read(program, *src);
                let schema = Schema::from_set(attrs);
                let projected = ops::project(&src_rel, schema.attrs())
                    .expect("validated: projection attrs ⊆ source scheme");
                (*dst, projected)
            }
            Stmt::Join { dst, left, right } => {
                let l = m.read(program, *left);
                let r = m.read(program, *right);
                (*dst, ops::join(&l, &r))
            }
            Stmt::Semijoin { target, filter } => {
                let t = m.read(program, *target);
                let f = m.read(program, *filter);
                (*target, ops::semijoin(&t, &f))
            }
        };
        ledger.charge_generated(format!("stmt {i}"), value.len());
        head_sizes.push(value.len());
        m.write(head, value);
        peak_resident = peak_resident.max(resident(&m));
    }

    let result = m.read(program, program.result);
    ExecOutcome { result, ledger, head_sizes, peak_resident }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn chain_db() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[9, 8]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 3], &[7, 7]]).unwrap();
        let t = relation_of_ints(&mut c, "CD", &[&[3, 4]]).unwrap();
        let scheme = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        (c, scheme, Database::from_relations(vec![r, s, t]))
    }

    #[test]
    fn join_program_computes_full_join() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        assert_eq!(out.result, db.join_all());
        // cost: inputs 2+2+1 = 5, AB⋈BC = 1, ⋈CD = 1 → 7.
        assert_eq!(out.cost(), 7);
        assert_eq!(out.head_sizes, vec![1, 1]);
    }

    #[test]
    fn semijoin_reduction_lowers_cost() {
        let (_c, scheme, db) = chain_db();
        // Reduce AB by BC before joining: dangling (9,8) disappears early.
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(v, Reg::Base(1)); // V := AB ⋉ BC → {(1,2)}
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        assert_eq!(out.result, db.join_all());
        assert_eq!(out.head_sizes, vec![1, 1, 1]);
        assert_eq!(out.cost(), 5 + 3);
    }

    #[test]
    fn alias_reads_through_without_cost() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        let p = b.finish(v);
        let out = execute(&p, &db);
        // No statements: result is just R(AB); cost is the inputs only.
        assert_eq!(out.result, *db.relation(0));
        assert_eq!(out.cost(), db.total_tuples());
        assert!(out.head_sizes.is_empty());
        assert_eq!(out.peak_resident, db.total_tuples());
    }

    #[test]
    fn peak_resident_tracks_live_registers() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        // Inputs (5 tuples) stay resident; V adds at most 1 tuple.
        assert_eq!(out.peak_resident, 6);
        assert!(out.peak_resident <= out.cost());
    }

    #[test]
    fn projection_statement() {
        let (c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let f = b.new_temp("F");
        let b_attr = mjoin_relation::AttrSet::singleton(c.lookup("B").unwrap());
        b.project(f, Reg::Base(0), b_attr);
        let p = b.finish(f);
        let out = execute(&p, &db);
        assert_eq!(out.result.len(), 2); // π_B(AB) = {2, 8}
        assert_eq!(out.result.schema().arity(), 1);
    }

    #[test]
    fn base_register_can_be_reduced_in_place() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(Reg::Base(0));
        let out = execute(&p, &db);
        assert_eq!(out.result.len(), 1);
        // Original database untouched.
        assert_eq!(db.relation(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "disagree on the number of relations")]
    fn wrong_database_size_panics() {
        let (_c, scheme, db) = chain_db();
        let b = ProgramBuilder::new(&scheme);
        let p = b.finish(Reg::Base(0));
        let small = db.restrict(&[0, 1]);
        execute(&p, &small);
    }
}
