//! The program interpreter, with §2.3 cost accounting.
//!
//! Applying a program `P` to a database `D` (the paper's `P(D)`) assigns each
//! input relation to its base register, executes the statements in order, and
//! charges the head relation of every statement. The total cost is
//! `Σ_{i=1}^{n+m} |Rᵢ|`: the `n` inputs plus the `m` statement heads.
//!
//! Registers hold `Arc<Relation>`, so reading a register — including the
//! common "reduce a base relation, then join it" pattern where one value is
//! read many times — is a reference-count bump, never a deep copy of the
//! tuples. Statement heads still *assign* fresh relations, matching the
//! paper's destructive-assignment semantics.
//!
//! [`execute_parallel`] runs the same programs level-by-level over the
//! dependence DAG of [`crate::schedule`], executing each level's
//! hazard-free statements concurrently on the shared [`mjoin_pool`] and
//! using the partitioned parallel operators inside each statement. Its
//! observable outcome (result, ledger, `head_sizes`, `peak_resident`) is
//! byte-identical to [`execute`]'s; the differential tests in `mjoin-core`
//! enforce this on randomized databases.

use crate::program::Program;
use crate::schedule::schedule;
use crate::stmt::{Reg, Stmt};
use mjoin_relation::fxhash::FxHashMap;
use mjoin_relation::ops::{
    self, join_key_positions, par_join_indexed_cutoff, par_semijoin_indexed_cutoff, JoinIndex,
    TrieIndex,
};
use mjoin_relation::{CostLedger, Database, Relation, Schema};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Execution knobs for [`execute_with`]. [`execute`] and
/// [`execute_parallel`] use the defaults (cache on) at their respective
/// thread counts.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads for the partitioned operators and level parallelism.
    /// `1` selects the sequential interpreter.
    pub threads: usize,
    /// Whether to memoize build-side [`JoinIndex`]es across statements.
    pub index_cache: bool,
    /// Cache budget: the cache evicts least-recently-used indices once the
    /// total tuples resident in cached indices exceed this.
    pub cache_budget_tuples: u64,
    /// Cache budget in resident *bytes* — table heap plus the pinned
    /// relation's payload ([`JoinIndex::resident_bytes`]: packed columns
    /// with each dictionary pool counted once under the columnar layout, a
    /// flat per-cell estimate under the row layout). Eviction runs while
    /// *either* budget is exceeded, so tuple-cheap but byte-heavy string
    /// relations cannot pin unbounded memory.
    pub cache_budget_bytes: u64,
    /// Row count below which the partitioned operators run sequentially.
    /// Defaults to the process-wide [`ops::par_cutoff`] (itself seeded from
    /// `MJOIN_PAR_CUTOFF`, falling back to [`SMALL`]).
    pub par_cutoff: usize,
    /// A shared cross-run index cache. `None` (the default) gives each run
    /// a private cache built from the budgets above — the historical
    /// one-shot behavior. A resident server passes one
    /// [`SharedIndexCache`] into every request's config so warm state
    /// survives across runs and sessions; the budgets above are then
    /// ignored in favor of the shared cache's own.
    pub cache: Option<SharedIndexCache>,
    /// Cooperative cancellation: checked at statement boundaries (and at
    /// level boundaries in the parallel executor). `None` runs to
    /// completion. Use [`try_execute_with`] to observe a cancellation as a
    /// value instead of a panic.
    pub cancel: Option<CancelToken>,
    /// The peak-memory budget (bytes) this run was admitted under, if any.
    /// The interpreter never compares against it at runtime — the
    /// per-statement decision is precomputed into [`ExecConfig::spill`] by
    /// the static memory analysis — but carrying the figure here keeps the
    /// gate auditable (trace spans and servers can report what the run was
    /// budgeted at).
    pub mem_budget: Option<u64>,
    /// The statically derived spill schedule: statements the memory
    /// certificate proved cannot fit `mem_budget` take the Grace-hash
    /// out-of-core join path with the planned partition count; everything
    /// else runs the in-memory kernels with no runtime check at all.
    /// `None` (the default) never spills.
    pub spill: Option<Arc<SpillPlan>>,
}

/// A statically derived spill schedule: for each statement of a program,
/// either the number of Grace-hash partitions to run it with, or nothing —
/// the in-memory path. Produced by the memory analysis
/// (`mjoin_analyze::memory::MemCertificate::spill_plan`) from the certified
/// per-statement build-side bounds and a byte budget; consumed by
/// [`execute_with`] via [`ExecConfig::spill`]. Plain data, so the executor
/// crate needs no dependency on the analyzer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillPlan {
    parts: Vec<Option<usize>>,
}

impl SpillPlan {
    /// A plan from per-statement partition counts (`parts[i]` is `Some(p)`
    /// when statement `i` must spill into `p` partitions).
    pub fn new(parts: Vec<Option<usize>>) -> Self {
        SpillPlan { parts }
    }

    /// The planned partition count for statement `stmt`, or `None` for the
    /// in-memory path (also `None` past the end of the plan).
    pub fn partitions(&self, stmt: usize) -> Option<usize> {
        self.parts.get(stmt).copied().flatten()
    }

    /// Whether any statement is scheduled to spill.
    pub fn any(&self) -> bool {
        self.parts.iter().any(Option::is_some)
    }

    /// Number of statements scheduled to spill.
    pub fn spilled_stmts(&self) -> usize {
        self.parts.iter().filter(|p| p.is_some()).count()
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 1,
            index_cache: true,
            cache_budget_tuples: 4 << 20,
            cache_budget_bytes: 256 << 20,
            par_cutoff: ops::par_cutoff(),
            cache: None,
            cancel: None,
            mem_budget: None,
            spill: None,
        }
    }
}

impl ExecConfig {
    /// Defaults at `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }

    /// The same configuration with the index cache disabled — the
    /// pre-cache execution path, kept callable for differential tests and
    /// benchmarks.
    pub fn without_cache(mut self) -> Self {
        self.index_cache = false;
        self
    }

    /// The cache this run works against: the shared one if provided, else
    /// a fresh private cache sized by this config's budgets.
    fn run_cache(&self) -> SharedIndexCache {
        self.cache.clone().unwrap_or_else(|| {
            IndexCache::shared(self.cache_budget_tuples, self.cache_budget_bytes)
        })
    }

    /// Whether this run was cancelled (explicitly or by deadline).
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The planned Grace-hash partition count for statement `stmt`, if the
    /// static analysis scheduled it to spill.
    fn spill_partitions(&self, stmt: usize) -> Option<usize> {
        self.spill.as_ref().and_then(|p| p.partitions(stmt))
    }
}

/// A cooperative cancellation handle: cloned into an [`ExecConfig`] and
/// polled by the interpreter at statement boundaries. Fires either
/// explicitly ([`CancelToken::cancel`], e.g. from a server's shutdown path)
/// or implicitly once a deadline passes (per-request budgets). Clones share
/// one flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only fires on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Request cancellation. Execution stops at the next statement (or
    /// level) boundary; the statement in flight runs to completion.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Execution stopped at a statement boundary before completing: the
/// [`CancelToken`] fired (explicit cancel or deadline). Carries the index
/// of the first statement that did *not* run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancelled {
    /// Index of the first unexecuted statement.
    pub at_stmt: usize,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution cancelled before statement {}", self.at_stmt)
    }
}

impl std::error::Error for Cancelled {}

/// Discriminant for hash-table entries ([`JoinIndex`]) in the cache keys.
const KIND_HASH: u8 = 0;
/// Discriminant for sorted-trie entries ([`TrieIndex`]) in the cache keys.
const KIND_TRIE: u8 = 1;

/// Cache key: the identity of an `Arc<Relation>`, the index *kind* (hash
/// table or sorted trie — the same relation and key positions yield
/// different structures), and the key positions the index was built over.
/// Safe against pointer reuse because every cached index holds its
/// relation's `Arc` — the allocation cannot be freed (and its address
/// recycled) while the entry exists.
type IndexKey = (usize, u8, Box<[usize]>);

fn index_key(rel: &Arc<Relation>, key_pos: &[usize]) -> IndexKey {
    (Arc::as_ptr(rel) as usize, KIND_HASH, key_pos.into())
}

/// Fallback cache key: the relation's structural [`Relation::fingerprint`]
/// plus kind and key positions. Two `Arc`s holding the same set of tuples —
/// an original and its TSV round-trip reload, say — share this key even
/// though their pointer-identity [`IndexKey`]s differ.
type FingerprintKey = (u128, u8, Box<[usize]>);

fn fingerprint_key_of(rel: &Relation, kind: u8, key_pos: &[usize]) -> FingerprintKey {
    (rel.fingerprint(), kind, key_pos.into())
}

/// A cached index of either kind. The cache stores both the program
/// interpreter's build-side hash tables and the WCOJ executor's sorted trie
/// views under one budget, so a resident server balances the two uses
/// instead of double-budgeting.
#[derive(Clone)]
pub(crate) enum CachedIndex {
    /// A build-side hash table (the binary program executor's index).
    Hash(Arc<JoinIndex>),
    /// A sorted trie view (the worst-case-optimal executor's index).
    Trie(Arc<TrieIndex>),
}

impl CachedIndex {
    fn kind(&self) -> u8 {
        match self {
            CachedIndex::Hash(_) => KIND_HASH,
            CachedIndex::Trie(_) => KIND_TRIE,
        }
    }

    fn relation(&self) -> &Arc<Relation> {
        match self {
            CachedIndex::Hash(i) => i.relation(),
            CachedIndex::Trie(i) => i.relation(),
        }
    }

    fn key_positions(&self) -> &[usize] {
        match self {
            CachedIndex::Hash(i) => i.key_positions(),
            CachedIndex::Trie(i) => i.key_positions(),
        }
    }

    fn tuples(&self) -> usize {
        match self {
            CachedIndex::Hash(i) => i.tuples(),
            CachedIndex::Trie(i) => i.tuples(),
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            CachedIndex::Hash(i) => i.resident_bytes(),
            CachedIndex::Trie(i) => i.resident_bytes(),
        }
    }
}

struct CacheEntry {
    index: CachedIndex,
    /// Resident bytes, frozen at insert time (the live value can change if
    /// the relation's other view materializes later; accounting must
    /// subtract exactly what it added).
    bytes: u64,
    last_used: u64,
}

/// The cross-statement join-index cache. Algorithm-2 programs read the same
/// head relations many times (a semijoin sweep down the CPF tree, a join
/// sweep back up); memoizing the build-side table turns every re-read into
/// a probe-only statement. Bounded by resident tuples with LRU eviction;
/// entries for a register's old value are dropped when the register is
/// rewritten.
///
/// One-shot runs build a private cache per execution; a resident server
/// shares one behind a mutex across every session (see
/// [`SharedIndexCache`] and [`ExecConfig::cache`]). The lock is only ever
/// held for map operations — index *builds* happen outside it.
pub struct IndexCache {
    budget_tuples: u64,
    budget_bytes: u64,
    map: FxHashMap<IndexKey, CacheEntry>,
    /// Structural fallback directory: fingerprint key → primary key of a
    /// live entry over content-identical tuples. Entries can dangle after
    /// eviction/invalidation; lookups drop dangling ones lazily.
    by_fingerprint: FxHashMap<FingerprintKey, IndexKey>,
    resident_tuples: u64,
    resident_bytes: u64,
    tick: u64,
}

/// An [`IndexCache`] shared across runs (and server sessions). Lock
/// discipline: take the mutex only around cache-map operations, never
/// across a kernel or an index build.
pub type SharedIndexCache = Arc<Mutex<IndexCache>>;

/// Lock a shared cache, recovering from poisoning: the cache holds only
/// immutable `Arc<JoinIndex>` values plus accounting that [`debit`]
/// saturates, so state left by a panicking peer is still safe to read —
/// a long-lived server must not let one crashed session wedge the cache.
///
/// [`debit`]: IndexCache::debit
fn lock_cache(cache: &SharedIndexCache) -> MutexGuard<'_, IndexCache> {
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl std::fmt::Debug for IndexCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexCache")
            .field("entries", &self.map.len())
            .field("resident_tuples", &self.resident_tuples)
            .field("resident_bytes", &self.resident_bytes)
            .finish_non_exhaustive()
    }
}

impl IndexCache {
    /// An empty cache with the given eviction budgets.
    pub fn with_budgets(budget_tuples: u64, budget_bytes: u64) -> Self {
        IndexCache {
            budget_tuples,
            budget_bytes,
            map: FxHashMap::default(),
            by_fingerprint: FxHashMap::default(),
            resident_tuples: 0,
            resident_bytes: 0,
            tick: 0,
        }
    }

    /// An empty cache wrapped for sharing across runs/sessions.
    pub fn shared(budget_tuples: u64, budget_bytes: u64) -> SharedIndexCache {
        Arc::new(Mutex::new(IndexCache::with_budgets(
            budget_tuples,
            budget_bytes,
        )))
    }

    /// Number of cached indices.
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// Total tuples pinned by cached indices.
    pub fn resident_tuples(&self) -> u64 {
        self.resident_tuples
    }

    /// Total bytes pinned by cached indices (insert-time-frozen per entry).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Drop every entry. Accounting must return exactly to zero — each
    /// entry debits the same frozen figures it credited at insert.
    pub fn clear(&mut self) {
        let entries: Vec<CacheEntry> = self.map.drain().map(|(_, e)| e).collect();
        self.by_fingerprint.clear();
        for e in entries {
            self.debit(e.index.tuples() as u64, e.bytes);
        }
        debug_assert_eq!(self.resident_tuples, 0, "tuple accounting drifted");
        debug_assert_eq!(self.resident_bytes, 0, "byte accounting drifted");
    }

    /// Subtract a removed entry's frozen accounting. Every removal path
    /// (replace, evict, invalidate, clear) goes through here: the debit
    /// must mirror the insert-time credit exactly, and because the live
    /// `JoinIndex::resident_bytes` can drift after insert (shared
    /// `Arc<Dict>` growth), any mismatch is a bookkeeping bug — loud in
    /// debug builds, saturated (never wrapped into a phantom multi-EB
    /// residency that would evict everything) in release.
    fn debit(&mut self, tuples: u64, bytes: u64) {
        debug_assert!(
            self.resident_tuples >= tuples,
            "cache debits {tuples} tuples but only {} are accounted",
            self.resident_tuples
        );
        debug_assert!(
            self.resident_bytes >= bytes,
            "cache debits {bytes} bytes but only {} are accounted",
            self.resident_bytes
        );
        self.resident_tuples = self.resident_tuples.saturating_sub(tuples);
        self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
    }

    /// Whether either resident budget (tuples or bytes) is exceeded.
    fn over_budget(&self) -> bool {
        self.resident_tuples > self.budget_tuples || self.resident_bytes > self.budget_bytes
    }

    /// Look up an index without touching the hit/miss counters (a join
    /// peeks both of its sides before deciding which lookup "counts").
    ///
    /// A pointer-identity miss falls back to the structural fingerprint, so
    /// a semantically identical relation reloaded into a fresh `Arc` (the
    /// TSV round-trip case) still reuses the cached index. The fallback
    /// re-checks the cached relation's own (memoized) fingerprint — not just
    /// schema and tuple count — because a `by_fingerprint` alias can go
    /// stale: after its primary entry is evicted the allocator may recycle
    /// the raw-pointer key for a *different* relation's entry, and without
    /// the content check a stale alias would serve that other relation's
    /// index. The remaining exposure is a full 128-bit hash collision,
    /// which we accept for the reuse it buys.
    fn peek(&mut self, rel: &Arc<Relation>, key_pos: &[usize]) -> Option<Arc<JoinIndex>> {
        match self.peek_cached(rel, KIND_HASH, key_pos)? {
            CachedIndex::Hash(i) => Some(i),
            CachedIndex::Trie(_) => unreachable!("kind-tagged key returned wrong index kind"),
        }
    }

    /// Trie-view twin of `peek`, for the WCOJ executor. Unlike the hash
    /// path (where a join peeks both sides before deciding which lookup
    /// counts), every trie lookup counts, so the `index_cache.trie_hit` /
    /// `trie_miss` counters are maintained here.
    pub fn peek_trie(&mut self, rel: &Arc<Relation>, key_pos: &[usize]) -> Option<Arc<TrieIndex>> {
        match self.peek_cached(rel, KIND_TRIE, key_pos) {
            Some(CachedIndex::Trie(i)) => {
                mjoin_trace::add("index_cache.trie_hit", 1);
                mjoin_trace::add("index_cache.bytes_not_allocated", i.heap_bytes() as u64);
                Some(i)
            }
            Some(CachedIndex::Hash(_)) => {
                unreachable!("kind-tagged key returned wrong index kind")
            }
            None => {
                mjoin_trace::add("index_cache.trie_miss", 1);
                None
            }
        }
    }

    fn peek_cached(
        &mut self,
        rel: &Arc<Relation>,
        kind: u8,
        key_pos: &[usize],
    ) -> Option<CachedIndex> {
        self.tick += 1;
        let tick = self.tick;
        let key = (Arc::as_ptr(rel) as usize, kind, key_pos.into());
        if let Some(e) = self.map.get_mut(&key) {
            e.last_used = tick;
            return Some(e.index.clone());
        }
        let fkey = fingerprint_key_of(rel, kind, key_pos);
        if let Some(primary) = self.by_fingerprint.get(&fkey).cloned() {
            match self.map.get_mut(&primary) {
                Some(e)
                    if e.index.relation().schema() == rel.schema()
                        && e.index.relation().len() == rel.len()
                        && e.index.relation().fingerprint() == fkey.0 =>
                {
                    e.last_used = tick;
                    mjoin_trace::add("index_cache.fingerprint_hit", 1);
                    return Some(e.index.clone());
                }
                // The entry the alias points at does not hold this content
                // (recycled pointer or vanished entry) — drop the alias.
                Some(_) | None => {
                    self.by_fingerprint.remove(&fkey);
                }
            }
        }
        None
    }

    /// Remove one primary entry: debit its frozen accounting and drop its
    /// fingerprint alias if (and only if) the alias still points at it, so
    /// stale aliases cannot outlive the entry and later resolve to a
    /// recycled-pointer key.
    fn remove_entry(&mut self, key: &IndexKey) -> Option<CacheEntry> {
        let gone = self.map.remove(key)?;
        let fkey = fingerprint_key_of(
            gone.index.relation(),
            gone.index.kind(),
            gone.index.key_positions(),
        );
        if self.by_fingerprint.get(&fkey) == Some(key) {
            self.by_fingerprint.remove(&fkey);
        }
        self.debit(gone.index.tuples() as u64, gone.bytes);
        Some(gone)
    }

    /// Record a statement that reused a cached index: the build pass — and
    /// the table's heap allocation — it did not pay for.
    fn note_hit(index: &JoinIndex) {
        mjoin_trace::add("index_cache.hit", 1);
        mjoin_trace::add("index_cache.bytes_not_allocated", index.heap_bytes() as u64);
    }

    /// Record a statement that had an index opportunity but found no entry.
    fn note_miss() {
        mjoin_trace::add("index_cache.miss", 1);
    }

    /// Cache a freshly built index, evicting least-recently-used entries
    /// until both resident budgets (tuples and bytes) hold. Indices larger
    /// than a whole budget on either axis are not cached (they would only
    /// flush everything else).
    fn insert(&mut self, index: Arc<JoinIndex>) {
        mjoin_trace::add("index_cache.insert", 1);
        self.insert_cached(CachedIndex::Hash(index));
    }

    /// Trie-view twin of `insert`: cache a freshly sorted trie under the
    /// same budgets (and the same LRU) as the hash entries.
    pub fn insert_trie(&mut self, index: Arc<TrieIndex>) {
        mjoin_trace::add("index_cache.trie_insert", 1);
        self.insert_cached(CachedIndex::Trie(index));
    }

    fn insert_cached(&mut self, index: CachedIndex) {
        let bytes = index.resident_bytes() as u64;
        if index.tuples() as u64 > self.budget_tuples || bytes > self.budget_bytes {
            return;
        }
        let key = (
            Arc::as_ptr(index.relation()) as usize,
            index.kind(),
            index.key_positions().into(),
        );
        self.by_fingerprint.insert(
            fingerprint_key_of(index.relation(), index.kind(), index.key_positions()),
            key.clone(),
        );
        self.tick += 1;
        self.resident_tuples += index.tuples() as u64;
        self.resident_bytes += bytes;
        mjoin_trace::add("index_cache.insert_tuples", index.tuples() as u64);
        mjoin_trace::add("index_cache.insert_bytes", bytes);
        if let Some(old) = self.map.insert(
            key.clone(),
            CacheEntry {
                index,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.debit(old.index.tuples() as u64, old.bytes);
        }
        while self.over_budget() && self.map.len() > 1 {
            let lru = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("map has a non-newest entry");
            let gone = self.remove_entry(&lru).expect("key just found");
            let evict_name = match gone.index {
                CachedIndex::Hash(_) => "index_cache.evict",
                CachedIndex::Trie(_) => "index_cache.trie_evict",
            };
            mjoin_trace::add(evict_name, 1);
            mjoin_trace::add("index_cache.evict_tuples", gone.index.tuples() as u64);
            mjoin_trace::add("index_cache.evict_bytes", gone.bytes);
        }
    }

    /// Drop every index over `rel` — called when a register holding it is
    /// rewritten. (Another register may still alias the same value; the
    /// cost of over-invalidating is a rebuild, never a wrong answer — all
    /// relations are immutable.)
    fn invalidate(&mut self, rel: &Arc<Relation>) {
        let ptr = Arc::as_ptr(rel) as usize;
        let stale: Vec<IndexKey> = self
            .map
            .keys()
            .filter(|(p, _, _)| *p == ptr)
            .cloned()
            .collect();
        for key in stale {
            self.remove_entry(&key).expect("key just listed");
        }
    }
}

/// Prebuilt indices visible to one parallel level: resolved before the
/// level runs, then probed concurrently by its statements (the cache itself
/// is only mutated between levels).
type ResolvedIndices = FxHashMap<IndexKey, Arc<JoinIndex>>;

/// The outcome of running a program on a database.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The relation in the program's declared result register. Shared, not
    /// copied, out of the interpreter's register file: deref (or clone the
    /// `Arc`) to use it.
    pub result: Arc<Relation>,
    /// The cost account (inputs + every statement head).
    pub ledger: CostLedger,
    /// `|head|` after each statement, in statement order. Used by the
    /// Theorem 2 experiments to locate the peak intermediate.
    pub head_sizes: Vec<usize>,
    /// Peak *resident* tuples: the maximum, over statement boundaries of
    /// the sequential execution order, of the total tuples held across all
    /// registers at once. The paper motivates linear join expressions by
    /// their single live temporary; this measures the analogous space
    /// footprint for programs. `execute_parallel` reports the same number
    /// (it is a property of the program, kept comparable across executors),
    /// though a parallel run may transiently hold more.
    pub peak_resident: u64,
}

impl ExecOutcome {
    /// Total tuple-count cost `cost(P(D))`.
    pub fn cost(&self) -> u64 {
        self.ledger.total()
    }
}

/// The register file: shared-ownership relations, so reads are cheap and
/// concurrent statement evaluation can hold operands without copying.
struct Machine {
    bases: Vec<Arc<Relation>>,
    temps: Vec<Option<Arc<Relation>>>,
}

impl Machine {
    fn new(program: &Program, db: &Database) -> Self {
        Machine {
            bases: db.relations().iter().cloned().map(Arc::new).collect(),
            temps: vec![None; program.temp_names.len()],
        }
    }

    /// Read a register; unwritten variables read through their alias chain.
    /// Costs one `Arc` clone (a reference-count bump), not a relation copy.
    fn read(&self, program: &Program, reg: Reg) -> Arc<Relation> {
        let mut cur = reg;
        loop {
            match cur {
                Reg::Base(i) => return Arc::clone(&self.bases[i]),
                Reg::Temp(t) => match &self.temps[t] {
                    Some(rel) => return Arc::clone(rel),
                    None => {
                        cur = program.temp_init[t]
                            .expect("validated: unwritten variable has an alias");
                    }
                },
            }
        }
    }

    /// Write a register, returning the value it previously held (if any) so
    /// the caller can invalidate indices built over it.
    fn write(&mut self, reg: Reg, rel: Arc<Relation>) -> Option<Arc<Relation>> {
        match reg {
            Reg::Base(i) => Some(std::mem::replace(&mut self.bases[i], rel)),
            Reg::Temp(t) => self.temps[t].replace(rel),
        }
    }

    /// Total tuples currently held across all registers.
    fn resident(&self) -> u64 {
        self.bases.iter().map(|r| r.len() as u64).sum::<u64>()
            + self
                .temps
                .iter()
                .flatten()
                .map(|r| r.len() as u64)
                .sum::<u64>()
    }
}

/// Where the evaluator may find (or leave) prebuilt join indices.
enum IndexMode<'a> {
    /// Cache disabled: always the plain partitioned operators.
    Off,
    /// Sequential execution: consult the (possibly shared) cache, build
    /// and insert on a miss when the build pass is work the plain kernel
    /// would do anyway. The mutex is taken per peek/insert, never held
    /// across a kernel.
    Cache(&'a SharedIndexCache),
    /// One parallel level: probe the level's prebuilt indices; never mutate
    /// (misses fall through to the plain operators).
    Resolved(&'a ResolvedIndices),
}

impl IndexMode<'_> {
    /// A usable index for `(rel, key_pos)`, bumping LRU state in
    /// [`IndexMode::Cache`] mode. No hit/miss counters — callers decide
    /// which lookup counts (a join peeks both sides).
    fn peek(&mut self, rel: &Arc<Relation>, key_pos: &[usize]) -> Option<Arc<JoinIndex>> {
        match self {
            IndexMode::Off => None,
            IndexMode::Cache(cache) => lock_cache(cache).peek(rel, key_pos),
            IndexMode::Resolved(resolved) => resolved.get(&index_key(rel, key_pos)).map(Arc::clone),
        }
    }

    /// Whether missed statements should build (and cache) an index instead
    /// of running the plain kernel.
    fn builds_on_miss(&self) -> bool {
        matches!(self, IndexMode::Cache(_))
    }

    fn insert(&mut self, index: Arc<JoinIndex>) {
        if let IndexMode::Cache(cache) = self {
            lock_cache(cache).insert(index);
        }
    }

    /// Whether this statement evaluation participates in hit/miss counting.
    fn counts(&self) -> bool {
        !matches!(self, IndexMode::Off)
    }
}

/// Evaluate one statement's body against the current register file. With
/// `threads == 1` the partitioned operators take their sequential paths, so
/// this is also the sequential interpreter's evaluation step.
fn eval_stmt(
    program: &Program,
    m: &Machine,
    stmt: &Stmt,
    threads: usize,
    cutoff: usize,
    spill: Option<usize>,
    mut idx: IndexMode<'_>,
) -> (Reg, Relation) {
    match stmt {
        Stmt::Project { dst, src, attrs } => {
            let src_rel = m.read(program, *src);
            let schema = Schema::from_set(attrs);
            let projected = ops::par_project_cutoff(&src_rel, schema.attrs(), threads, cutoff)
                .expect("validated: projection attrs ⊆ source scheme");
            (*dst, projected)
        }
        Stmt::Join { dst, left, right } => {
            let l = m.read(program, *left);
            let r = m.read(program, *right);
            let (lpos, rpos) = join_key_positions(l.schema(), r.schema());
            if lpos.is_empty() {
                // Cartesian product: an index (one bucket chain holding
                // everything) buys nothing, and there is no key to spill
                // by — the memory analysis never schedules these.
                return (*dst, ops::par_join_cutoff(&l, &r, threads, cutoff));
            }
            if let Some(p) = spill {
                // The certificate proved this statement's build side cannot
                // fit the budget: Grace-hash through temp files. On an I/O
                // failure (temp dir full, disk gone) fall through to the
                // in-memory path rather than lose the query.
                if let Ok((out, stats)) = ops::grace_hash_join(&l, &r, p) {
                    mjoin_trace::add("mem.partitions", stats.partitions);
                    mjoin_trace::add("mem.spilled_bytes", stats.spilled_bytes);
                    mjoin_trace::add("mem.passes", 1);
                    return (*dst, out);
                }
            }
            // Peek both sides; with a choice, keep the index on the larger
            // side so the smaller side does the probing.
            let hit = match (idx.peek(&l, &lpos), idx.peek(&r, &rpos)) {
                (Some(li), Some(ri)) => Some(if li.tuples() >= ri.tuples() {
                    (li, Arc::clone(&r))
                } else {
                    (ri, Arc::clone(&l))
                }),
                (Some(li), None) => Some((li, Arc::clone(&r))),
                (None, Some(ri)) => Some((ri, Arc::clone(&l))),
                (None, None) => None,
            };
            if let Some((index, probe)) = hit {
                IndexCache::note_hit(&index);
                return (
                    *dst,
                    par_join_indexed_cutoff(&index, &probe, threads, cutoff),
                );
            }
            if idx.counts() {
                IndexCache::note_miss();
            }
            // On a sequential miss, building the smaller side as a
            // first-class index is the same work the plain kernel's build
            // pass does — so do that and keep the index for later
            // statements. Parallel big-build joins keep the partitioned
            // paths (radix co-partitioning beats one shared build there).
            let small_is_left = l.len() <= r.len();
            if idx.builds_on_miss() && (threads == 1 || l.len().min(r.len()) < cutoff) {
                let (small, spos, big) = if small_is_left {
                    (Arc::clone(&l), lpos, r)
                } else {
                    (Arc::clone(&r), rpos, l)
                };
                let index = Arc::new(JoinIndex::build(small, spos));
                let out = par_join_indexed_cutoff(&index, &big, threads, cutoff);
                idx.insert(index);
                return (*dst, out);
            }
            (*dst, ops::par_join_cutoff(&l, &r, threads, cutoff))
        }
        Stmt::Semijoin { target, filter } => {
            let t = m.read(program, *target);
            let f = m.read(program, *filter);
            let common = t.schema().intersect(f.schema());
            if common.is_empty() {
                // Degenerate case: no per-tuple work to index.
                return (*target, ops::par_semijoin_cutoff(&t, &f, threads, cutoff));
            }
            let fpos = f
                .schema()
                .positions_of(common.attrs())
                .expect("common attrs in filter");
            if let Some(index) = idx.peek(&f, &fpos) {
                IndexCache::note_hit(&index);
                return (
                    *target,
                    par_semijoin_indexed_cutoff(&t, &index, threads, cutoff),
                );
            }
            if idx.counts() {
                IndexCache::note_miss();
            }
            if idx.builds_on_miss() {
                // The filter-side build is exactly the plain kernel's key
                // set; building it as an index costs the same and is
                // reusable by every later statement filtering through `f`.
                let index = Arc::new(JoinIndex::build(Arc::clone(&f), fpos));
                let out = par_semijoin_indexed_cutoff(&t, &index, threads, cutoff);
                idx.insert(index);
                return (*target, out);
            }
            (*target, ops::par_semijoin_cutoff(&t, &f, threads, cutoff))
        }
    }
}

fn stmt_kind(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::Project { .. } => "project",
        Stmt::Join { .. } => "join",
        Stmt::Semijoin { .. } => "semijoin",
    }
}

/// [`eval_stmt`] wrapped in an `exec/stmt` span carrying the statement
/// index, kind, and output cardinality (the data EXPLAIN ANALYZE reports).
#[allow(clippy::too_many_arguments)]
fn eval_stmt_traced(
    program: &Program,
    m: &Machine,
    stmt: &Stmt,
    index: usize,
    threads: usize,
    cutoff: usize,
    spill: Option<usize>,
    idx: IndexMode<'_>,
) -> (Reg, Relation) {
    let mut sp = mjoin_trace::span("exec", "stmt");
    let (head, value) = eval_stmt(program, m, stmt, threads, cutoff, spill, idx);
    if sp.is_active() {
        sp.arg("index", index);
        sp.arg("kind", stmt_kind(stmt));
        sp.arg("out_rows", value.len());
        if let Some(p) = spill {
            sp.arg("spill_partitions", p);
        }
    }
    (head, value)
}

fn check_arity(program: &Program, db: &Database) {
    assert_eq!(
        program.num_bases,
        db.len(),
        "program and database disagree on the number of relations"
    );
}

/// Execute `program` on `db`, one statement at a time in program order,
/// with the default [`ExecConfig`] (index cache on, one thread).
///
/// The program should have passed [`crate::validate::validate`]; running an
/// invalid program may panic (it will not produce wrong answers silently).
pub fn execute(program: &Program, db: &Database) -> ExecOutcome {
    execute_with(program, db, &ExecConfig::default())
}

/// Execute `program` on `db` under an explicit [`ExecConfig`]:
/// `threads == 1` runs the sequential interpreter, more threads the
/// level-parallel one. Either way the observable [`ExecOutcome`] depends
/// only on the program and database — never on the thread count or on
/// whether the index cache is enabled (the differential tests in
/// `mjoin-core` enforce this).
pub fn execute_with(program: &Program, db: &Database, cfg: &ExecConfig) -> ExecOutcome {
    try_execute_with(program, db, cfg)
        .expect("execution cancelled — use try_execute_with to observe cancellation")
}

/// [`execute_with`], but surfacing a fired [`ExecConfig::cancel`] token as
/// a [`Cancelled`] value instead of a panic. A run with no token (or one
/// that never fires) always returns `Ok`.
pub fn try_execute_with(
    program: &Program,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<ExecOutcome, Cancelled> {
    if cfg.threads <= 1 {
        execute_seq(program, db, cfg)
    } else {
        execute_level(program, db, cfg)
    }
}

fn execute_seq(
    program: &Program,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<ExecOutcome, Cancelled> {
    check_arity(program, db);
    let mut sp = mjoin_trace::span("exec", "execute");
    if sp.is_active() {
        sp.arg("stmts", program.stmts.len());
        sp.arg("threads", 1usize);
        sp.arg("index_cache", u64::from(cfg.index_cache));
    }
    let mut ledger = CostLedger::new();
    db.charge_inputs(&mut ledger);

    let mut m = Machine::new(program, db);
    let cache = cfg.run_cache();
    let mut head_sizes = Vec::with_capacity(program.stmts.len());
    let mut peak_resident = m.resident();

    for (i, stmt) in program.stmts.iter().enumerate() {
        if cfg.cancelled() {
            return Err(Cancelled { at_stmt: i });
        }
        let idx = if cfg.index_cache {
            IndexMode::Cache(&cache)
        } else {
            IndexMode::Off
        };
        let (head, value) = eval_stmt_traced(
            program,
            &m,
            stmt,
            i,
            1,
            cfg.par_cutoff,
            cfg.spill_partitions(i),
            idx,
        );
        ledger.charge_generated(format!("stmt {i}"), value.len());
        mjoin_trace::add("exec.head_tuples", value.len() as u64);
        head_sizes.push(value.len());
        if let Some(old) = m.write(head, Arc::new(value)) {
            if cfg.index_cache {
                lock_cache(&cache).invalidate(&old);
            }
        }
        peak_resident = peak_resident.max(m.resident());
    }

    let result = m.read(program, program.result);
    Ok(ExecOutcome {
        result,
        ledger,
        head_sizes,
        peak_resident,
    })
}

/// Execute `program` on `db` with statement-level and operator-level
/// parallelism on the shared pool.
///
/// Statements are grouped into the hazard-free levels of
/// [`crate::schedule::schedule`] and each level is evaluated concurrently
/// against the register file as left by the previous level; because
/// same-level statements touch disjoint registers, every statement reads
/// exactly the values it would read under sequential execution, so the
/// computed relations are identical. The ledger, `head_sizes`, and
/// `peak_resident` are then reconstructed in *statement* order (the sizes of
/// all heads are known once execution finishes), which makes the whole
/// [`ExecOutcome`] byte-identical to [`execute`]'s.
pub fn execute_parallel(program: &Program, db: &Database, threads: usize) -> ExecOutcome {
    execute_with(program, db, &ExecConfig::with_threads(threads))
}

/// The index opportunities of one statement: `(relation, key positions)`
/// pairs an index could serve. Joins contribute both sides at the
/// natural-join key; semijoins their filter side. Degenerate statements
/// (projections, Cartesian joins, disjoint semijoins) contribute nothing.
fn stmt_index_candidates(
    program: &Program,
    m: &Machine,
    stmt: &Stmt,
) -> Vec<(Arc<Relation>, Vec<usize>)> {
    match stmt {
        Stmt::Project { .. } => Vec::new(),
        Stmt::Join { left, right, .. } => {
            let l = m.read(program, *left);
            let r = m.read(program, *right);
            let (lpos, rpos) = join_key_positions(l.schema(), r.schema());
            if lpos.is_empty() {
                Vec::new()
            } else {
                vec![(l, lpos), (r, rpos)]
            }
        }
        Stmt::Semijoin { target, filter } => {
            let t = m.read(program, *target);
            let f = m.read(program, *filter);
            let common = t.schema().intersect(f.schema());
            if common.is_empty() {
                return Vec::new();
            }
            let fpos = f
                .schema()
                .positions_of(common.attrs())
                .expect("common attrs in filter");
            vec![(f, fpos)]
        }
    }
}

/// Resolve the indices one parallel level will probe, mutating the cache
/// only here — before the level's statements run concurrently. Cached
/// entries resolve directly; a `(relation, key)` pair wanted by two or more
/// statements in the level is built once, shared across all of them, and
/// cached for later levels. Pairs wanted once stay unresolved (their
/// statements run the plain partitioned operators).
fn prefetch_level_indices(
    program: &Program,
    m: &Machine,
    cache: &SharedIndexCache,
    level: &[usize],
) -> ResolvedIndices {
    let mut resolved = ResolvedIndices::default();
    let mut wanted: Vec<(Arc<Relation>, Vec<usize>)> = Vec::new();
    for &i in level {
        wanted.extend(stmt_index_candidates(program, m, &program.stmts[i]));
    }
    let mut demand: FxHashMap<IndexKey, usize> = FxHashMap::default();
    for (rel, pos) in &wanted {
        *demand.entry(index_key(rel, pos)).or_insert(0) += 1;
    }
    for (rel, pos) in wanted {
        let key = index_key(&rel, &pos);
        if resolved.contains_key(&key) {
            continue;
        }
        // Bind the peek result before branching: an `if let` scrutinee
        // would keep the cache guard alive through the `else` branch
        // (pre-2024-edition temporary lifetime), and the insert below
        // re-locks the same mutex — a self-deadlock.
        let hit = lock_cache(cache).peek(&rel, &pos);
        if let Some(index) = hit {
            resolved.insert(key, index);
        } else if demand[&key] >= 2 {
            // Shared across the level: one build, many probes. Counts as
            // the one miss its build represents; each statement that probes
            // it then counts a hit. Built outside the lock.
            IndexCache::note_miss();
            let index = Arc::new(JoinIndex::build(rel, pos));
            lock_cache(cache).insert(Arc::clone(&index));
            resolved.insert(key, index);
        }
    }
    resolved
}

fn execute_level(
    program: &Program,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<ExecOutcome, Cancelled> {
    check_arity(program, db);
    let threads = cfg.threads.max(1);
    let mut ledger = CostLedger::new();
    db.charge_inputs(&mut ledger);

    let mut m = Machine::new(program, db);
    let cache = cfg.run_cache();
    let n = program.stmts.len();
    let mut sizes = vec![0usize; n];

    let sched = schedule(program);
    // Double-entry race check: in debug builds, never trust a schedule the
    // independent auditor rejects. Compiled out of release builds.
    #[cfg(debug_assertions)]
    if let Err(e) = crate::schedule::audit_schedule(program, &sched) {
        panic!("schedule failed its audit: {e}");
    }
    let mut sp = mjoin_trace::span("exec", "execute_parallel");
    if sp.is_active() {
        sp.arg("stmts", n);
        sp.arg("threads", threads);
        sp.arg("depth", sched.depth());
        sp.arg("width", sched.width());
        sp.arg("index_cache", u64::from(cfg.index_cache));
    }
    for (lv, level) in sched.levels.iter().enumerate() {
        if cfg.cancelled() {
            // Levels run in statement order; the first unexecuted
            // statement is this level's smallest index.
            let at_stmt = level.iter().copied().min().unwrap_or(n);
            return Err(Cancelled { at_stmt });
        }
        let mut level_sp = mjoin_trace::span("exec", "level");
        if level_sp.is_active() {
            level_sp.arg("level", lv + 1);
            level_sp.arg("stmts", level.len());
        }
        let resolved = if cfg.index_cache {
            prefetch_level_indices(program, &m, &cache, level)
        } else {
            ResolvedIndices::default()
        };
        let computed: Vec<(usize, (Reg, Relation))> = if threads == 1 || level.len() == 1 {
            level
                .iter()
                .map(|&i| {
                    let idx = if cfg.index_cache {
                        IndexMode::Resolved(&resolved)
                    } else {
                        IndexMode::Off
                    };
                    (
                        i,
                        eval_stmt_traced(
                            program,
                            &m,
                            &program.stmts[i],
                            i,
                            threads,
                            cfg.par_cutoff,
                            cfg.spill_partitions(i),
                            idx,
                        ),
                    )
                })
                .collect()
        } else {
            mjoin_pool::par_map(level.clone(), |i| {
                let idx = if cfg.index_cache {
                    IndexMode::Resolved(&resolved)
                } else {
                    IndexMode::Off
                };
                (
                    i,
                    eval_stmt_traced(
                        program,
                        &m,
                        &program.stmts[i],
                        i,
                        threads,
                        cfg.par_cutoff,
                        cfg.spill_partitions(i),
                        idx,
                    ),
                )
            })
        };
        for (i, (head, value)) in computed {
            sizes[i] = value.len();
            if let Some(old) = m.write(head, Arc::new(value)) {
                if cfg.index_cache {
                    lock_cache(&cache).invalidate(&old);
                }
            }
        }
    }
    drop(sp);

    let mut head_sizes = Vec::with_capacity(n);
    for (i, &size) in sizes.iter().enumerate() {
        ledger.charge_generated(format!("stmt {i}"), size);
        mjoin_trace::add("exec.head_tuples", size as u64);
        head_sizes.push(size);
    }

    let result = m.read(program, program.result);
    Ok(ExecOutcome {
        result,
        ledger,
        head_sizes,
        peak_resident: simulate_peak_resident(program, db, &sizes),
    })
}

/// Replay register sizes in statement order to recover the sequential
/// executor's `peak_resident`. Head sizes determine the whole trajectory:
/// each statement replaces its head register's size with `sizes[i]`, and
/// the footprint is sampled at every statement boundary.
fn simulate_peak_resident(program: &Program, db: &Database, sizes: &[usize]) -> u64 {
    let mut base_sizes: Vec<u64> = db.relations().iter().map(|r| r.len() as u64).collect();
    let mut temp_sizes: Vec<u64> = vec![0; program.temp_names.len()];
    let mut resident: u64 = base_sizes.iter().sum();
    let mut peak = resident;
    for (stmt, &size) in program.stmts.iter().zip(sizes) {
        let slot = match stmt.head() {
            Reg::Base(i) => &mut base_sizes[i],
            Reg::Temp(t) => &mut temp_sizes[t],
        };
        resident = resident - *slot + size as u64;
        *slot = size as u64;
        peak = peak.max(resident);
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::{relation_of_ints, Catalog};

    fn chain_db() -> (Catalog, DbScheme, Database) {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[9, 8]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 3], &[7, 7]]).unwrap();
        let t = relation_of_ints(&mut c, "CD", &[&[3, 4]]).unwrap();
        let scheme = DbScheme::parse(&mut c, &["AB", "BC", "CD"]);
        (c, scheme, Database::from_relations(vec![r, s, t]))
    }

    #[test]
    fn join_program_computes_full_join() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        assert_eq!(*out.result, db.join_all());
        // cost: inputs 2+2+1 = 5, AB⋈BC = 1, ⋈CD = 1 → 7.
        assert_eq!(out.cost(), 7);
        assert_eq!(out.head_sizes, vec![1, 1]);
    }

    #[test]
    fn semijoin_reduction_lowers_cost() {
        let (_c, scheme, db) = chain_db();
        // Reduce AB by BC before joining: dangling (9,8) disappears early.
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.semijoin(v, Reg::Base(1)); // V := AB ⋉ BC → {(1,2)}
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        assert_eq!(*out.result, db.join_all());
        assert_eq!(out.head_sizes, vec![1, 1, 1]);
        assert_eq!(out.cost(), 5 + 3);
    }

    #[test]
    fn alias_reads_through_without_cost() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        let p = b.finish(v);
        let out = execute(&p, &db);
        // No statements: result is just R(AB); cost is the inputs only.
        assert_eq!(*out.result, *db.relation(0));
        assert_eq!(out.cost(), db.total_tuples());
        assert!(out.head_sizes.is_empty());
        assert_eq!(out.peak_resident, db.total_tuples());
    }

    #[test]
    fn peak_resident_tracks_live_registers() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let out = execute(&p, &db);
        // Inputs (5 tuples) stay resident; V adds at most 1 tuple.
        assert_eq!(out.peak_resident, 6);
        assert!(out.peak_resident <= out.cost());
    }

    #[test]
    fn projection_statement() {
        let (c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let f = b.new_temp("F");
        let b_attr = mjoin_relation::AttrSet::singleton(c.lookup("B").unwrap());
        b.project(f, Reg::Base(0), b_attr);
        let p = b.finish(f);
        let out = execute(&p, &db);
        assert_eq!(out.result.len(), 2); // π_B(AB) = {2, 8}
        assert_eq!(out.result.schema().arity(), 1);
    }

    #[test]
    fn base_register_can_be_reduced_in_place() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(Reg::Base(0));
        let out = execute(&p, &db);
        assert_eq!(out.result.len(), 1);
        // Original database untouched.
        assert_eq!(db.relation(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "disagree on the number of relations")]
    fn wrong_database_size_panics() {
        let (_c, scheme, db) = chain_db();
        let b = ProgramBuilder::new(&scheme);
        let p = b.finish(Reg::Base(0));
        let small = db.restrict(&[0, 1]);
        execute(&p, &small);
    }

    #[test]
    fn reading_a_register_shares_rather_than_copies() {
        let (_c, scheme, db) = chain_db();
        let b = ProgramBuilder::new(&scheme);
        let p = b.finish(Reg::Base(0));
        let m = Machine::new(&p, &db);
        let first = m.read(&p, Reg::Base(0));
        let second = m.read(&p, Reg::Base(0));
        assert!(
            Arc::ptr_eq(&first, &second),
            "read must return the same shared allocation"
        );
    }

    #[test]
    fn parallel_outcome_matches_sequential_exactly() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        // Mix of parallelizable reductions and a serial join chain.
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(2), Reg::Base(1));
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let seq = execute(&p, &db);
        for threads in [1, 2, 4] {
            let par = execute_parallel(&p, &db, threads);
            assert_eq!(*par.result, *seq.result, "threads = {threads}");
            assert_eq!(par.head_sizes, seq.head_sizes, "threads = {threads}");
            assert_eq!(par.peak_resident, seq.peak_resident, "threads = {threads}");
            assert_eq!(par.ledger, seq.ledger, "threads = {threads}");
        }
    }

    #[test]
    fn index_cache_fingerprint_hits_on_tsv_reload() {
        use mjoin_relation::tsv::{relation_from_tsv, relation_to_tsv};
        let mut c = Catalog::new();
        let ab = relation_of_ints(&mut c, "AB", &[&[1, 2], &[5, 6]]).unwrap();
        let bc = relation_of_ints(&mut c, "BC", &[&[2, 3], &[6, 7]]).unwrap();
        let db_rel = relation_of_ints(&mut c, "DB", &[&[4, 2], &[9, 6]]).unwrap();
        // Round-trip BC through TSV: same tuples, a fresh allocation.
        let text = relation_to_tsv(&c, &bc);
        let bc_reload = relation_from_tsv(&mut c, &text).unwrap();
        assert_eq!(bc, bc_reload);
        assert_eq!(bc.fingerprint(), bc_reload.fingerprint());
        let scheme = DbScheme::parse(&mut c, &["AB", "BC", "DB", "BC"]);
        let database = Database::from_relations(vec![ab, bc, db_rel, bc_reload]);

        let mut b = ProgramBuilder::new(&scheme);
        b.semijoin(Reg::Base(0), Reg::Base(1)); // builds + caches the BC index
        b.semijoin(Reg::Base(2), Reg::Base(3)); // reloaded BC: fresh Arc, same tuples
        let p = b.finish(Reg::Base(0));

        mjoin_trace::set_enabled(true);
        mjoin_trace::clear();
        let out = execute(&p, &database);
        let t = mjoin_trace::take();
        mjoin_trace::set_enabled(false);
        assert!(
            t.counter("index_cache.fingerprint_hit").unwrap_or(0) >= 1,
            "the reloaded relation must reuse the cached index via its fingerprint"
        );
        assert!(t.counter("index_cache.hit").unwrap_or(0) >= 1);
        assert_eq!(out.head_sizes, vec![2, 2]); // every B value appears in BC
    }

    /// Churn inserts/evictions through a tiny-budget cache using relations
    /// that *share* dictionary allocations (so the live
    /// `JoinIndex::resident_bytes` of an entry can differ from what a
    /// naive re-measure would say), then clear: the frozen-figure
    /// accounting must land back on exactly zero, never drift or
    /// underflow.
    #[test]
    fn cache_accounting_survives_churn_with_shared_dicts() {
        use mjoin_relation::Value;
        let mut c = Catalog::new();
        let a = c.intern("A");
        let b = c.intern("B");
        // One batch of string relations built over a common value pool so
        // columnar dictionaries share allocations across relations.
        let make = |salt: usize| {
            let rows: Vec<mjoin_relation::Row> = (0..64)
                .map(|i| {
                    vec![
                        Value::str(format!("k{}", (i + salt) % 16)),
                        Value::str(format!("v{i}")),
                    ]
                    .into()
                })
                .collect();
            Arc::new(Relation::from_rows(Schema::new(vec![a, b]), rows).unwrap())
        };
        let rels: Vec<Arc<Relation>> = (0..12).map(make).collect();

        // Budgets small enough that inserting all 12 indices forces many
        // evictions (each index pins 64 tuples).
        let mut cache = IndexCache::with_budgets(200, u64::MAX);
        for round in 0..4 {
            for rel in &rels {
                let idx = Arc::new(JoinIndex::build(Arc::clone(rel), vec![0]));
                cache.insert(idx);
                assert!(
                    cache.resident_tuples() <= 200 + 64,
                    "round {round}: eviction failed to bound residency"
                );
            }
            // Re-inserting an already-cached key replaces in place.
            let idx = Arc::new(JoinIndex::build(Arc::clone(&rels[0]), vec![0]));
            cache.insert(idx);
            // Invalidate a few by pointer.
            cache.invalidate(&rels[1]);
            cache.invalidate(&rels[2]);
        }
        assert!(cache.entries() > 0);
        cache.clear();
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.resident_tuples(), 0, "tuple accounting drifted");
        assert_eq!(cache.resident_bytes(), 0, "byte accounting drifted");
    }

    /// Regression: a `by_fingerprint` alias must never serve another
    /// relation's index. Removal paths drop the alias with the entry, and
    /// even an alias that survives into the pointer-reuse window (grafted
    /// by hand here: same schema, same row count, different content — the
    /// shape the old schema+len validation could not tell apart) must fail
    /// the content check and miss instead of returning the wrong index.
    #[test]
    fn stale_fingerprint_alias_never_serves_another_relations_index() {
        let mut c = Catalog::new();
        let r1 = Arc::new(relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap());
        let r2 = Arc::new(relation_of_ints(&mut c, "AB", &[&[5, 6], &[7, 8]]).unwrap());
        let mut cache = IndexCache::with_budgets(u64::MAX, u64::MAX);

        cache.insert(Arc::new(JoinIndex::build(Arc::clone(&r1), vec![0])));
        cache.invalidate(&r1);
        assert!(
            cache.by_fingerprint.is_empty(),
            "the alias must die with its primary entry"
        );

        cache.insert(Arc::new(JoinIndex::build(Arc::clone(&r2), vec![0])));
        cache.by_fingerprint.insert(
            fingerprint_key_of(&r1, KIND_HASH, &[0]),
            index_key(&r2, &[0]),
        );
        // A fresh allocation with r1's content takes the fallback path.
        let r1_again = Arc::new(relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap());
        assert!(
            cache.peek(&r1_again, &[0]).is_none(),
            "stale alias served a different relation's index"
        );
        // The poisoned alias is dropped; r2's own entry is untouched.
        assert!(!cache
            .by_fingerprint
            .contains_key(&fingerprint_key_of(&r1, KIND_HASH, &[0])));
        assert!(cache.peek(&r2, &[0]).is_some());
    }

    /// Trie views live in the same cache as hash indices: kind-tagged keys
    /// keep them apart for the same `(relation, positions)` pair, both
    /// count against one budget, and the trie counters are distinct.
    #[test]
    fn trie_and_hash_entries_coexist_under_one_budget() {
        use mjoin_relation::ops::TrieIndex;
        mjoin_trace::set_enabled(true);
        let _ = mjoin_trace::take();
        let mut c = Catalog::new();
        let r = Arc::new(relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap());
        let mut cache = IndexCache::with_budgets(u64::MAX, u64::MAX);

        assert!(cache.peek_trie(&r, &[0, 1]).is_none(), "cold cache");
        cache.insert(Arc::new(JoinIndex::build(Arc::clone(&r), vec![0, 1])));
        assert!(
            cache.peek_trie(&r, &[0, 1]).is_none(),
            "a hash entry must not satisfy a trie lookup"
        );
        cache.insert_trie(Arc::new(TrieIndex::build(Arc::clone(&r), vec![0, 1])));
        assert_eq!(cache.entries(), 2, "same (rel, positions), two kinds");
        assert!(cache.peek(&r, &[0, 1]).is_some());
        assert!(cache.peek_trie(&r, &[0, 1]).is_some());
        assert_eq!(cache.resident_tuples(), 4, "both entries pin their tuples");

        // Fingerprint fallback works for tries too: same content, new Arc.
        let r_again = Arc::new(relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap());
        assert!(cache.peek_trie(&r_again, &[0, 1]).is_some());

        cache.clear();
        let t = mjoin_trace::take();
        mjoin_trace::set_enabled(false);
        assert_eq!(t.counter("index_cache.trie_insert"), Some(1));
        assert_eq!(t.counter("index_cache.trie_miss"), Some(2));
        assert_eq!(t.counter("index_cache.trie_hit"), Some(2));
    }

    /// Regression: `TrieIndex::heap_bytes` must include the sort
    /// permutation vector, so a cached trie's frozen byte accounting in
    /// the [`IndexCache`] covers everything the entry actually pins. The
    /// old figure under-counted every trie entry by `4 × tuples` bytes
    /// against the cache's byte budget.
    #[test]
    fn trie_cache_accounting_includes_permutation_bytes() {
        use mjoin_relation::ops::TrieIndex;
        let mut c = Catalog::new();
        let r = Arc::new(relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap());
        let t = Arc::new(TrieIndex::build(Arc::clone(&r), vec![0, 1]));
        let perm_bytes = t.tuples() * std::mem::size_of::<u32>();
        let level_bytes = t.depth() * t.tuples() * 8; // two permuted i64 levels
        assert_eq!(t.heap_bytes(), level_bytes + perm_bytes);

        let mut cache = IndexCache::with_budgets(u64::MAX, u64::MAX);
        let resident = t.resident_bytes() as u64;
        cache.insert_trie(t);
        assert_eq!(cache.resident_bytes(), resident);
        assert!(
            cache.resident_bytes() >= (level_bytes + perm_bytes) as u64,
            "cache accounting must cover the permutation vector"
        );
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
    }

    /// A [`SpillPlan`] routes exactly the scheduled statements through the
    /// Grace-hash path; the result is identical to the in-memory run and
    /// the `mem.*` counters record the partition work.
    #[test]
    fn spill_plan_routes_statements_through_grace_hash() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let unbudgeted = execute(&p, &db);

        for threads in [1usize, 4] {
            let cfg = ExecConfig {
                mem_budget: Some(1),
                spill: Some(Arc::new(SpillPlan::new(vec![Some(2), None]))),
                ..ExecConfig::with_threads(threads)
            };
            mjoin_trace::set_enabled(true);
            mjoin_trace::clear();
            let out = execute_with(&p, &db, &cfg);
            let t = mjoin_trace::take();
            mjoin_trace::set_enabled(false);
            assert_eq!(*out.result, *unbudgeted.result, "threads = {threads}");
            assert_eq!(out.head_sizes, unbudgeted.head_sizes);
            assert_eq!(
                t.counter("mem.passes"),
                Some(1),
                "exactly the one planned statement spills (threads = {threads})"
            );
            assert_eq!(t.counter("mem.partitions"), Some(2));
            assert!(t.counter("mem.spilled_bytes").unwrap_or(0) > 0);
        }

        // No plan → no spill, no counters.
        mjoin_trace::set_enabled(true);
        mjoin_trace::clear();
        let out = execute(&p, &db);
        let t = mjoin_trace::take();
        mjoin_trace::set_enabled(false);
        assert_eq!(*out.result, *unbudgeted.result);
        assert_eq!(t.counter("mem.passes"), None);
    }

    /// A shared cache passed through `ExecConfig.cache` carries warm
    /// indices from one run into the next — the resident-server path.
    #[test]
    fn shared_cache_is_warm_across_runs() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        let p = b.finish(Reg::Base(0));

        let shared = IndexCache::shared(4 << 20, 256 << 20);
        let cfg = ExecConfig {
            cache: Some(Arc::clone(&shared)),
            ..ExecConfig::default()
        };

        mjoin_trace::set_enabled(true);
        mjoin_trace::clear();
        let first = execute_with(&p, &db, &cfg);
        let cold = mjoin_trace::take();
        let second = execute_with(&p, &db, &cfg);
        let warm = mjoin_trace::take();
        mjoin_trace::set_enabled(false);

        assert_eq!(*first.result, *second.result);
        assert_eq!(cold.counter("index_cache.hit").unwrap_or(0), 0);
        assert!(
            warm.counter("index_cache.hit").unwrap_or(0) >= 1,
            "second run must hit the index the first run left in the shared cache"
        );
        assert!(lock_cache(&shared).entries() >= 1);
    }

    /// A pre-fired token stops execution before the first statement; a
    /// token that never fires changes nothing.
    #[test]
    fn cancellation_stops_at_statement_boundaries() {
        let (_c, scheme, db) = chain_db();
        let mut b = ProgramBuilder::new(&scheme);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);

        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let cfg = ExecConfig {
                cancel: Some(token.clone()),
                ..ExecConfig::with_threads(threads)
            };
            let err = try_execute_with(&p, &db, &cfg).unwrap_err();
            assert_eq!(err.at_stmt, 0, "threads = {threads}");
        }

        let live = ExecConfig {
            cancel: Some(CancelToken::new()),
            ..ExecConfig::default()
        };
        let out = try_execute_with(&p, &db, &live).unwrap();
        assert_eq!(*out.result, db.join_all());

        // An already-expired deadline cancels exactly like an explicit
        // cancel.
        let expired = ExecConfig {
            cancel: Some(CancelToken::with_deadline(std::time::Instant::now())),
            ..ExecConfig::default()
        };
        assert!(try_execute_with(&p, &db, &expired).is_err());
    }

    #[test]
    fn parallel_empty_program() {
        let (_c, scheme, db) = chain_db();
        let b = ProgramBuilder::new(&scheme);
        let p = b.finish(Reg::Base(2));
        let seq = execute(&p, &db);
        let par = execute_parallel(&p, &db, 4);
        assert_eq!(*par.result, *seq.result);
        assert_eq!(par.peak_resident, seq.peak_resident);
    }
}
