//! Registers and statements of the paper's programs (§2.2).
//!
//! A program is a finite sequence of project, join, and semijoin statements.
//! The head of a project or join statement must be a relation scheme
//! *variable*; a semijoin statement's head is also its left operand (it
//! reduces a relation in place and never widens its scheme). Base relation
//! schemes may appear as semijoin heads — that is how programs reduce input
//! relations.

use mjoin_relation::AttrSet;

/// A register: either an input relation occurrence (`R(Rᵢ)` for a scheme of
/// the database scheme) or a relation scheme variable created by the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// Input relation occurrence `idx` of the database scheme.
    Base(usize),
    /// Program-created relation scheme variable `idx`.
    Temp(usize),
}

impl Reg {
    /// Whether this is a variable (legal head for project/join statements).
    pub fn is_temp(self) -> bool {
        matches!(self, Reg::Temp(_))
    }
}

/// One statement. Execution assigns the body's result to the head,
/// destructively (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `R(dst) := π_attrs R(src)` — requires `attrs ⊆ scheme(src)` and a
    /// variable head; afterwards `scheme(dst) = attrs`.
    Project {
        /// Head (must be [`Reg::Temp`]).
        dst: Reg,
        /// Body relation.
        src: Reg,
        /// The projection attribute set `U`.
        attrs: AttrSet,
    },
    /// `R(dst) := R(left) ⋈ R(right)` — variable head; afterwards
    /// `scheme(dst) = scheme(left) ∪ scheme(right)`.
    Join {
        /// Head (must be [`Reg::Temp`]).
        dst: Reg,
        /// Left body relation.
        left: Reg,
        /// Right body relation.
        right: Reg,
    },
    /// `R(target) := R(target) ⋉ R(filter)` — the head is the left operand;
    /// the head's scheme is unchanged.
    Semijoin {
        /// Head and left operand.
        target: Reg,
        /// The reducing relation.
        filter: Reg,
    },
}

impl Stmt {
    /// The head register written by this statement.
    pub fn head(&self) -> Reg {
        match *self {
            Stmt::Project { dst, .. } => dst,
            Stmt::Join { dst, .. } => dst,
            Stmt::Semijoin { target, .. } => target,
        }
    }

    /// The registers read by this statement (the body).
    pub fn reads(&self) -> Vec<Reg> {
        match *self {
            Stmt::Project { src, .. } => vec![src],
            Stmt::Join { left, right, .. } => vec![left, right],
            Stmt::Semijoin { target, filter } => vec![target, filter],
        }
    }

    /// Whether this is a semijoin (used by the semijoin-stripping ablation).
    pub fn is_semijoin(&self) -> bool {
        matches!(self, Stmt::Semijoin { .. })
    }

    /// Whether this is a projection.
    pub fn is_project(&self) -> bool {
        matches!(self, Stmt::Project { .. })
    }

    /// Whether this is a join.
    pub fn is_join(&self) -> bool {
        matches!(self, Stmt::Join { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::AttrId;

    #[test]
    fn head_and_reads() {
        let p = Stmt::Project {
            dst: Reg::Temp(0),
            src: Reg::Base(1),
            attrs: AttrSet::singleton(AttrId(0)),
        };
        assert_eq!(p.head(), Reg::Temp(0));
        assert_eq!(p.reads(), vec![Reg::Base(1)]);
        assert!(p.is_project() && !p.is_join() && !p.is_semijoin());

        let j = Stmt::Join {
            dst: Reg::Temp(1),
            left: Reg::Temp(0),
            right: Reg::Base(2),
        };
        assert_eq!(j.head(), Reg::Temp(1));
        assert_eq!(j.reads(), vec![Reg::Temp(0), Reg::Base(2)]);
        assert!(j.is_join());

        let s = Stmt::Semijoin {
            target: Reg::Base(0),
            filter: Reg::Temp(1),
        };
        assert_eq!(s.head(), Reg::Base(0));
        assert_eq!(s.reads(), vec![Reg::Base(0), Reg::Temp(1)]);
        assert!(s.is_semijoin());
    }

    #[test]
    fn reg_is_temp() {
        assert!(Reg::Temp(0).is_temp());
        assert!(!Reg::Base(0).is_temp());
    }
}
