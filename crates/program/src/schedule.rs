//! Static dependence analysis and level scheduling for programs.
//!
//! A program is a straight-line sequence of statements, but most programs —
//! the full reducers of Algorithm 2 in particular — have far less true
//! ordering than their textual order suggests: the semijoin reductions of
//! unrelated subtrees commute. This module recovers that freedom statically.
//!
//! Two statements must stay ordered iff they exhibit a classic hazard on
//! some register: read-after-write (true dependence), write-after-read
//! (anti-dependence), or write-after-write (output dependence). Everything
//! else may run concurrently. Statements are assigned to *levels* — stmt `i`
//! gets `1 + max(level(j))` over its dependences `j` — so every statement in
//! a level is pairwise independent of the others, and executing levels in
//! order with an intra-level barrier computes exactly the sequential
//! machine states (see [`crate::interp::execute_parallel`]).
//!
//! Read sets are conservative: a register's read set includes its whole
//! alias chain (`temp_init`), because the interpreter reads *through* the
//! chain while a variable is unwritten. Over-approximating reads can only
//! add edges, never unsound parallelism.

use crate::dataflow::reg_index;
use crate::program::Program;
use crate::stmt::Reg;
use std::fmt;

/// The level assignment of a program's statements.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// `levels[k]` holds the statement indices of level `k`, ascending.
    /// Statements within a level are pairwise hazard-free.
    pub levels: Vec<Vec<usize>>,
    /// `level_of[i]` is the 1-based level of statement `i`.
    pub level_of: Vec<usize>,
}

impl Schedule {
    /// Number of levels — the critical-path length of the dependence DAG.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The largest level — an upper bound on exploitable statement-level
    /// parallelism.
    pub fn width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The conservative static read set of register `reg`: the register itself
/// plus its full `temp_init` alias chain (the interpreter reads through the
/// chain while a variable is unwritten, so any writer along it is a
/// potential dependence source). Alias cycles — rejected by
/// [`crate::validate::validate`] — are tolerated here by terminating on the
/// first repeated register.
pub fn read_closure(program: &Program, reg: Reg, out: &mut Vec<Reg>) {
    let mut cur = reg;
    loop {
        if out.contains(&cur) {
            return;
        }
        out.push(cur);
        match cur {
            Reg::Base(_) => return,
            Reg::Temp(t) => match program.temp_init[t] {
                Some(next) => cur = next,
                None => return,
            },
        }
    }
}

/// Compute the level schedule of `program` (see the module docs).
///
/// Runs in near-linear time: instead of testing every statement pair for a
/// hazard (quadratic, and programs from large cyclic schemes have thousands
/// of statements), each register tracks its *last writer* and the *readers
/// since that write*. For statement `i` those carry every binding hazard:
///
/// * RAW — only the last writer of a read register matters; any earlier
///   writer `j1` is dominated because the last writer `j2` already has
///   `level(j2) ≥ level(j1) + 1` through their WAW hazard.
/// * WAW — same argument on the written register.
/// * WAR — only readers since the last write matter; a reader `j` before
///   an intervening writer `k` is dominated through WAR(`k`, `j`) plus
///   WAW(`i`, `k`).
///
/// So the maximum over these dominating hazards equals the maximum over all
/// pairwise hazards, and the levels are byte-identical to the quadratic
/// definition (checked against a reference implementation in the tests).
pub fn schedule(program: &Program) -> Schedule {
    let mut sp = mjoin_trace::span("plan", "schedule");
    let n = program.stmts.len();
    let num_regs = program.num_bases + program.temp_init.len();
    let mut last_writer: Vec<Option<usize>> = vec![None; num_regs];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); num_regs];

    let mut level_of = vec![0usize; n];
    let mut read_set = Vec::new();
    for (i, stmt) in program.stmts.iter().enumerate() {
        read_set.clear();
        for r in stmt.reads() {
            read_closure(program, r, &mut read_set);
        }
        let head = reg_index(program, stmt.head());

        let mut lv = 1;
        for &r in &read_set {
            if let Some(j) = last_writer[reg_index(program, r)] {
                lv = lv.max(level_of[j] + 1); // RAW
            }
        }
        if let Some(j) = last_writer[head] {
            lv = lv.max(level_of[j] + 1); // WAW
        }
        for &j in &readers[head] {
            lv = lv.max(level_of[j] + 1); // WAR
        }
        level_of[i] = lv;

        for &r in &read_set {
            readers[reg_index(program, r)].push(i);
        }
        // This write supersedes the register's history: later statements
        // hazard against `i`, which already dominates everything cleared.
        readers[head].clear();
        last_writer[head] = Some(i);
    }

    let depth = level_of.iter().copied().max().unwrap_or(0);
    let mut levels = vec![Vec::new(); depth];
    for (i, &lv) in level_of.iter().enumerate() {
        levels[lv - 1].push(i);
    }
    if sp.is_active() {
        sp.arg("stmts", n);
        sp.arg("depth", depth);
        sp.arg("width", levels.iter().map(Vec::len).max().unwrap_or(0));
    }
    Schedule { levels, level_of }
}

/// A defect found by [`audit_schedule`]: the schedule, run with intra-level
/// concurrency, would not reproduce sequential execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleAuditError {
    /// `level_of` does not have one entry per statement.
    WrongStatementCount {
        /// Statements in the program.
        expected: usize,
        /// Entries in `level_of`.
        got: usize,
    },
    /// A statement appears in no level, twice, or in a level disagreeing
    /// with `level_of` (the two views are double-entry bookkeeping).
    InconsistentLevels {
        /// The offending statement index.
        stmt: usize,
    },
    /// Two statements of one level write the same register (write/write
    /// race: the level's outcome would depend on completion order).
    WriteWriteConflict {
        /// The shared (1-based) level.
        level: usize,
        /// The earlier statement.
        a: usize,
        /// The later statement.
        b: usize,
    },
    /// One statement of a level writes a register another statement of the
    /// same level reads (read/write race: the reader might observe the
    /// pre- or post-write value).
    ReadWriteConflict {
        /// The shared (1-based) level.
        level: usize,
        /// The writing statement.
        writer: usize,
        /// The reading statement.
        reader: usize,
    },
    /// A hazard-ordered statement pair was placed in non-increasing levels
    /// (e.g. a statement "moved up" past a writer it depends on).
    OrderViolation {
        /// The textually earlier statement of the hazard pair.
        earlier: usize,
        /// The textually later statement, found at a level ≤ `earlier`'s.
        later: usize,
    },
}

impl fmt::Display for ScheduleAuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleAuditError::WrongStatementCount { expected, got } => {
                write!(f, "schedule covers {got} statements, program has {expected}")
            }
            ScheduleAuditError::InconsistentLevels { stmt } => {
                write!(f, "statement {stmt}: levels and level_of disagree")
            }
            ScheduleAuditError::WriteWriteConflict { level, a, b } => {
                write!(
                    f,
                    "level {level}: statements {a} and {b} write the same register"
                )
            }
            ScheduleAuditError::ReadWriteConflict {
                level,
                writer,
                reader,
            } => write!(
                f,
                "level {level}: statement {writer} writes a register statement {reader} reads"
            ),
            ScheduleAuditError::OrderViolation { earlier, later } => write!(
                f,
                "statement {later} depends on statement {earlier} but is not scheduled strictly after it"
            ),
        }
    }
}

impl std::error::Error for ScheduleAuditError {}

/// Independently audit that `sched` is a race-free level assignment of
/// `program`'s statements.
///
/// This is deliberately *not* the [`schedule`] algorithm run again: it
/// recomputes every pairwise hazard from scratch (the quadratic definition
/// the near-linear scheduler is proven against) and checks the schedule
/// from the other side of the ledger — every statement placed exactly once,
/// `levels` and `level_of` consistent, no write/write or read/write
/// register conflict inside a level, and every hazard pair on strictly
/// increasing levels. [`crate::interp::execute_parallel`] runs this audit
/// under `debug_assertions` before trusting a schedule; `mjoin-analyze`'s
/// `schedule-audit` pass surfaces it as a diagnostic.
pub fn audit_schedule(program: &Program, sched: &Schedule) -> Result<(), ScheduleAuditError> {
    let n = program.stmts.len();
    if sched.level_of.len() != n {
        return Err(ScheduleAuditError::WrongStatementCount {
            expected: n,
            got: sched.level_of.len(),
        });
    }
    // Double-entry: every statement in exactly one level, agreeing with
    // level_of (which must be 1-based and within the level list).
    let mut seen = vec![false; n];
    for (k, level) in sched.levels.iter().enumerate() {
        for &i in level {
            if i >= n || seen[i] || sched.level_of[i] != k + 1 {
                return Err(ScheduleAuditError::InconsistentLevels { stmt: i.min(n) });
            }
            seen[i] = true;
        }
    }
    if let Some(stmt) = seen.iter().position(|&s| !s) {
        return Err(ScheduleAuditError::InconsistentLevels { stmt });
    }

    // Conservative read/write sets, closures included — the same register
    // model the interpreter's reads actually follow.
    let reads: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let mut set = Vec::new();
            for r in program.stmts[i].reads() {
                read_closure(program, r, &mut set);
            }
            set.into_iter().map(|r| reg_index(program, r)).collect()
        })
        .collect();
    let writes: Vec<usize> = program
        .stmts
        .iter()
        .map(|s| reg_index(program, s.head()))
        .collect();

    for i in 0..n {
        for j in (i + 1)..n {
            let waw = writes[i] == writes[j];
            let raw = reads[j].contains(&writes[i]);
            let war = reads[i].contains(&writes[j]);
            if !(waw || raw || war) {
                continue;
            }
            let (li, lj) = (sched.level_of[i], sched.level_of[j]);
            if li == lj {
                return Err(if waw {
                    ScheduleAuditError::WriteWriteConflict {
                        level: li,
                        a: i,
                        b: j,
                    }
                } else if raw {
                    ScheduleAuditError::ReadWriteConflict {
                        level: li,
                        writer: i,
                        reader: j,
                    }
                } else {
                    ScheduleAuditError::ReadWriteConflict {
                        level: li,
                        writer: j,
                        reader: i,
                    }
                });
            }
            if lj < li {
                return Err(ScheduleAuditError::OrderViolation {
                    earlier: i,
                    later: j,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::Catalog;

    fn scheme(schemes: &[&str]) -> DbScheme {
        let mut c = Catalog::new();
        DbScheme::parse(&mut c, schemes)
    }

    #[test]
    fn independent_semijoins_share_a_level() {
        // Reduce R0 by R1 and R2 by R3: no shared registers → one level.
        let s = scheme(&["AB", "BC", "DE", "EF"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(2), Reg::Base(3));
        let p = b.finish(Reg::Base(0));
        let sched = schedule(&p);
        assert_eq!(sched.depth(), 1);
        assert_eq!(sched.levels[0], vec![0, 1]);
    }

    #[test]
    fn chain_of_joins_is_fully_serial() {
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let sched = schedule(&p);
        assert_eq!(sched.depth(), 2);
        assert_eq!(sched.width(), 1);
        assert_eq!(sched.level_of, vec![1, 2]);
    }

    #[test]
    fn war_hazard_orders_a_later_writer_after_a_reader() {
        // stmt0 reads Base(1); stmt1 writes Base(1): WAR forces level 2.
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(1), Reg::Base(2));
        let p = b.finish(Reg::Base(0));
        let sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 2]);
    }

    #[test]
    fn waw_hazard_orders_writers_of_one_register() {
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(0), Reg::Base(2));
        let p = b.finish(Reg::Base(0));
        let sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 2]);
    }

    #[test]
    fn alias_chain_counts_as_a_read() {
        // V aliases Base(0); stmt0 joins V (reading through to Base(0)),
        // stmt1 reduces Base(0) in place: the alias read must order them.
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.semijoin(Reg::Base(0), Reg::Base(2));
        let p = b.finish(v);
        let sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 2]);
    }

    #[test]
    fn two_reducer_arms_then_final_join() {
        // Arms over disjoint registers parallelize; the combining joins
        // serialize after them.
        let s = scheme(&["AB", "BC", "DE", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1)); // level 1
        b.semijoin(Reg::Base(2), Reg::Base(3)); // level 1
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1)); // level 2 (reads Base(0) via alias)
        b.join(v, v, Reg::Base(3)); // level 3 (reads V)
        let p = b.finish(v);
        let sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 1, 2, 3]);
        assert_eq!(sched.width(), 2);
    }

    #[test]
    fn empty_program_schedules_trivially() {
        let s = scheme(&["AB"]);
        let b = ProgramBuilder::new(&s);
        let p = b.finish(Reg::Base(0));
        let sched = schedule(&p);
        assert_eq!(sched.depth(), 0);
        assert_eq!(sched.width(), 0);
    }

    /// The original all-pairs hazard scan, kept as a test oracle for the
    /// near-linear implementation.
    fn quadratic_reference(program: &Program) -> Vec<usize> {
        let n = program.stmts.len();
        let reads: Vec<Vec<Reg>> = program
            .stmts
            .iter()
            .map(|stmt| {
                let mut set = Vec::new();
                for r in stmt.reads() {
                    read_closure(program, r, &mut set);
                }
                set
            })
            .collect();
        let writes: Vec<Reg> = program.stmts.iter().map(crate::stmt::Stmt::head).collect();
        let mut level_of = vec![0usize; n];
        for i in 0..n {
            let mut lv = 1;
            for j in 0..i {
                let raw = reads[i].contains(&writes[j]);
                let war = reads[j].contains(&writes[i]);
                let waw = writes[i] == writes[j];
                if raw || war || waw {
                    lv = lv.max(level_of[j] + 1);
                }
            }
            level_of[i] = lv;
        }
        level_of
    }

    #[test]
    fn matches_quadratic_reference_on_random_programs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = scheme(&["AB", "BC", "CD", "DE", "EF", "FA"]);
            let mut b = ProgramBuilder::new(&s);
            let mut regs: Vec<Reg> = (0..6).map(Reg::Base).collect();
            for t in 0..3 {
                let src = regs[rng.gen_range(0..regs.len())];
                regs.push(b.new_temp_alias(format!("V{t}"), src));
            }
            let temps: Vec<Reg> = regs.iter().copied().filter(|r| r.is_temp()).collect();
            for _ in 0..rng.gen_range(5..40usize) {
                let a = regs[rng.gen_range(0..regs.len())];
                let c = regs[rng.gen_range(0..regs.len())];
                if rng.gen_bool(0.5) {
                    b.semijoin(a, c);
                } else {
                    b.join(temps[rng.gen_range(0..temps.len())], a, c);
                }
            }
            let p = b.finish(regs[0]);
            assert_eq!(
                schedule(&p).level_of,
                quadratic_reference(&p),
                "seed {seed}"
            );
        }
    }

    /// A serial chain with one independent statement, handy for corrupting:
    /// stmt0 and stmt2 both write V (WAW + RAW), stmt1 touches other regs.
    fn auditable_program() -> Program {
        let s = scheme(&["AB", "BC", "CD", "DE", "EF"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1)); // level 1
        b.semijoin(Reg::Base(3), Reg::Base(4)); // level 1, independent
        b.join(v, v, Reg::Base(2)); // level 2
        b.finish(v)
    }

    #[test]
    fn audit_accepts_generated_schedules() {
        let p = auditable_program();
        audit_schedule(&p, &schedule(&p)).unwrap();
        // And across the random corpus the scheduler is audited against the
        // same conservative hazard model.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = scheme(&["AB", "BC", "CD", "DE"]);
            let mut b = ProgramBuilder::new(&s);
            let v = b.new_temp_alias("V", Reg::Base(0));
            for _ in 0..rng.gen_range(3..20usize) {
                let a = Reg::Base(rng.gen_range(0..4));
                if rng.gen_bool(0.5) {
                    b.semijoin(a, Reg::Base(rng.gen_range(0..4)));
                } else {
                    b.join(v, v, a);
                }
            }
            let p = b.finish(v);
            audit_schedule(&p, &schedule(&p)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn audit_catches_statement_moved_up_a_level() {
        let p = auditable_program();
        let mut sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 1, 2]);
        // Hoist the dependent join into level 1 alongside its producer.
        sched.levels[1].retain(|&i| i != 2);
        sched.levels[0].push(2);
        sched.levels.pop();
        sched.level_of[2] = 1;
        let err = audit_schedule(&p, &sched).unwrap_err();
        assert!(
            matches!(
                err,
                ScheduleAuditError::WriteWriteConflict { a: 0, b: 2, .. }
                    | ScheduleAuditError::ReadWriteConflict { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn audit_catches_two_writers_in_one_level() {
        // Two semijoins reducing the same base, forced into one level.
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(0), Reg::Base(2));
        let p = b.finish(Reg::Base(0));
        let sched = Schedule {
            levels: vec![vec![0, 1]],
            level_of: vec![1, 1],
        };
        assert_eq!(
            audit_schedule(&p, &sched).unwrap_err(),
            ScheduleAuditError::WriteWriteConflict {
                level: 1,
                a: 0,
                b: 1
            }
        );
    }

    #[test]
    fn audit_catches_intra_level_read_write_conflict() {
        // stmt0 reads Base(1); stmt1 writes Base(1). Same level → RW race.
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(1), Reg::Base(2));
        let p = b.finish(Reg::Base(0));
        let sched = Schedule {
            levels: vec![vec![0, 1]],
            level_of: vec![1, 1],
        };
        assert_eq!(
            audit_schedule(&p, &sched).unwrap_err(),
            ScheduleAuditError::ReadWriteConflict {
                level: 1,
                writer: 1,
                reader: 0
            }
        );
    }

    #[test]
    fn audit_catches_inverted_order_and_bad_bookkeeping() {
        let p = auditable_program();
        let good = schedule(&p);

        // Dependent pair on strictly decreasing levels.
        let inverted = Schedule {
            levels: vec![vec![1, 2], vec![0]],
            level_of: vec![2, 1, 1],
        };
        assert_eq!(
            audit_schedule(&p, &inverted).unwrap_err(),
            ScheduleAuditError::OrderViolation {
                earlier: 0,
                later: 2
            }
        );

        // level_of too short.
        let truncated = Schedule {
            levels: good.levels.clone(),
            level_of: good.level_of[..2].to_vec(),
        };
        assert_eq!(
            audit_schedule(&p, &truncated).unwrap_err(),
            ScheduleAuditError::WrongStatementCount {
                expected: 3,
                got: 2
            }
        );

        // A statement listed twice across levels.
        let duplicated = Schedule {
            levels: vec![vec![0, 1], vec![0, 2]],
            level_of: vec![1, 1, 2],
        };
        assert!(matches!(
            audit_schedule(&p, &duplicated).unwrap_err(),
            ScheduleAuditError::InconsistentLevels { .. }
        ));

        // A statement missing from every level.
        let missing = Schedule {
            levels: vec![vec![0, 1]],
            level_of: vec![1, 1, 2],
        };
        assert!(matches!(
            audit_schedule(&p, &missing).unwrap_err(),
            ScheduleAuditError::InconsistentLevels { stmt: 2 }
        ));
    }
}
