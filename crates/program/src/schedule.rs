//! Static dependence analysis and level scheduling for programs.
//!
//! A program is a straight-line sequence of statements, but most programs —
//! the full reducers of Algorithm 2 in particular — have far less true
//! ordering than their textual order suggests: the semijoin reductions of
//! unrelated subtrees commute. This module recovers that freedom statically.
//!
//! Two statements must stay ordered iff they exhibit a classic hazard on
//! some register: read-after-write (true dependence), write-after-read
//! (anti-dependence), or write-after-write (output dependence). Everything
//! else may run concurrently. Statements are assigned to *levels* — stmt `i`
//! gets `1 + max(level(j))` over its dependences `j` — so every statement in
//! a level is pairwise independent of the others, and executing levels in
//! order with an intra-level barrier computes exactly the sequential
//! machine states (see [`crate::interp::execute_parallel`]).
//!
//! Read sets are conservative: a register's read set includes its whole
//! alias chain (`temp_init`), because the interpreter reads *through* the
//! chain while a variable is unwritten. Over-approximating reads can only
//! add edges, never unsound parallelism.

use crate::program::Program;
use crate::stmt::Reg;

/// The level assignment of a program's statements.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// `levels[k]` holds the statement indices of level `k`, ascending.
    /// Statements within a level are pairwise hazard-free.
    pub levels: Vec<Vec<usize>>,
    /// `level_of[i]` is the 1-based level of statement `i`.
    pub level_of: Vec<usize>,
}

impl Schedule {
    /// Number of levels — the critical-path length of the dependence DAG.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The largest level — an upper bound on exploitable statement-level
    /// parallelism.
    pub fn width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The conservative static read set of register `reg`: the register itself
/// plus its full `temp_init` alias chain (the interpreter reads through the
/// chain while a variable is unwritten, so any writer along it is a
/// potential dependence source). Alias cycles — rejected by
/// [`crate::validate::validate`] — are tolerated here by terminating on the
/// first repeated register.
pub fn read_closure(program: &Program, reg: Reg, out: &mut Vec<Reg>) {
    let mut cur = reg;
    loop {
        if out.contains(&cur) {
            return;
        }
        out.push(cur);
        match cur {
            Reg::Base(_) => return,
            Reg::Temp(t) => match program.temp_init[t] {
                Some(next) => cur = next,
                None => return,
            },
        }
    }
}

/// Dense index of a register: bases first, then temps.
fn reg_index(program: &Program, r: Reg) -> usize {
    match r {
        Reg::Base(i) => i,
        Reg::Temp(t) => program.num_bases + t,
    }
}

/// Compute the level schedule of `program` (see the module docs).
///
/// Runs in near-linear time: instead of testing every statement pair for a
/// hazard (quadratic, and programs from large cyclic schemes have thousands
/// of statements), each register tracks its *last writer* and the *readers
/// since that write*. For statement `i` those carry every binding hazard:
///
/// * RAW — only the last writer of a read register matters; any earlier
///   writer `j1` is dominated because the last writer `j2` already has
///   `level(j2) ≥ level(j1) + 1` through their WAW hazard.
/// * WAW — same argument on the written register.
/// * WAR — only readers since the last write matter; a reader `j` before
///   an intervening writer `k` is dominated through WAR(`k`, `j`) plus
///   WAW(`i`, `k`).
///
/// So the maximum over these dominating hazards equals the maximum over all
/// pairwise hazards, and the levels are byte-identical to the quadratic
/// definition (checked against a reference implementation in the tests).
pub fn schedule(program: &Program) -> Schedule {
    let mut sp = mjoin_trace::span("plan", "schedule");
    let n = program.stmts.len();
    let num_regs = program.num_bases + program.temp_init.len();
    let mut last_writer: Vec<Option<usize>> = vec![None; num_regs];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); num_regs];

    let mut level_of = vec![0usize; n];
    let mut read_set = Vec::new();
    for (i, stmt) in program.stmts.iter().enumerate() {
        read_set.clear();
        for r in stmt.reads() {
            read_closure(program, r, &mut read_set);
        }
        let head = reg_index(program, stmt.head());

        let mut lv = 1;
        for &r in &read_set {
            if let Some(j) = last_writer[reg_index(program, r)] {
                lv = lv.max(level_of[j] + 1); // RAW
            }
        }
        if let Some(j) = last_writer[head] {
            lv = lv.max(level_of[j] + 1); // WAW
        }
        for &j in &readers[head] {
            lv = lv.max(level_of[j] + 1); // WAR
        }
        level_of[i] = lv;

        for &r in &read_set {
            readers[reg_index(program, r)].push(i);
        }
        // This write supersedes the register's history: later statements
        // hazard against `i`, which already dominates everything cleared.
        readers[head].clear();
        last_writer[head] = Some(i);
    }

    let depth = level_of.iter().copied().max().unwrap_or(0);
    let mut levels = vec![Vec::new(); depth];
    for (i, &lv) in level_of.iter().enumerate() {
        levels[lv - 1].push(i);
    }
    if sp.is_active() {
        sp.arg("stmts", n);
        sp.arg("depth", depth);
        sp.arg("width", levels.iter().map(Vec::len).max().unwrap_or(0));
    }
    Schedule { levels, level_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use mjoin_hypergraph::DbScheme;
    use mjoin_relation::Catalog;

    fn scheme(schemes: &[&str]) -> DbScheme {
        let mut c = Catalog::new();
        DbScheme::parse(&mut c, schemes)
    }

    #[test]
    fn independent_semijoins_share_a_level() {
        // Reduce R0 by R1 and R2 by R3: no shared registers → one level.
        let s = scheme(&["AB", "BC", "DE", "EF"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(2), Reg::Base(3));
        let p = b.finish(Reg::Base(0));
        let sched = schedule(&p);
        assert_eq!(sched.depth(), 1);
        assert_eq!(sched.levels[0], vec![0, 1]);
    }

    #[test]
    fn chain_of_joins_is_fully_serial() {
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.join(v, v, Reg::Base(2));
        let p = b.finish(v);
        let sched = schedule(&p);
        assert_eq!(sched.depth(), 2);
        assert_eq!(sched.width(), 1);
        assert_eq!(sched.level_of, vec![1, 2]);
    }

    #[test]
    fn war_hazard_orders_a_later_writer_after_a_reader() {
        // stmt0 reads Base(1); stmt1 writes Base(1): WAR forces level 2.
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(1), Reg::Base(2));
        let p = b.finish(Reg::Base(0));
        let sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 2]);
    }

    #[test]
    fn waw_hazard_orders_writers_of_one_register() {
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1));
        b.semijoin(Reg::Base(0), Reg::Base(2));
        let p = b.finish(Reg::Base(0));
        let sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 2]);
    }

    #[test]
    fn alias_chain_counts_as_a_read() {
        // V aliases Base(0); stmt0 joins V (reading through to Base(0)),
        // stmt1 reduces Base(0) in place: the alias read must order them.
        let s = scheme(&["AB", "BC", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1));
        b.semijoin(Reg::Base(0), Reg::Base(2));
        let p = b.finish(v);
        let sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 2]);
    }

    #[test]
    fn two_reducer_arms_then_final_join() {
        // Arms over disjoint registers parallelize; the combining joins
        // serialize after them.
        let s = scheme(&["AB", "BC", "DE", "CD"]);
        let mut b = ProgramBuilder::new(&s);
        b.semijoin(Reg::Base(0), Reg::Base(1)); // level 1
        b.semijoin(Reg::Base(2), Reg::Base(3)); // level 1
        let v = b.new_temp_alias("V", Reg::Base(0));
        b.join(v, v, Reg::Base(1)); // level 2 (reads Base(0) via alias)
        b.join(v, v, Reg::Base(3)); // level 3 (reads V)
        let p = b.finish(v);
        let sched = schedule(&p);
        assert_eq!(sched.level_of, vec![1, 1, 2, 3]);
        assert_eq!(sched.width(), 2);
    }

    #[test]
    fn empty_program_schedules_trivially() {
        let s = scheme(&["AB"]);
        let b = ProgramBuilder::new(&s);
        let p = b.finish(Reg::Base(0));
        let sched = schedule(&p);
        assert_eq!(sched.depth(), 0);
        assert_eq!(sched.width(), 0);
    }

    /// The original all-pairs hazard scan, kept as a test oracle for the
    /// near-linear implementation.
    fn quadratic_reference(program: &Program) -> Vec<usize> {
        let n = program.stmts.len();
        let reads: Vec<Vec<Reg>> = program
            .stmts
            .iter()
            .map(|stmt| {
                let mut set = Vec::new();
                for r in stmt.reads() {
                    read_closure(program, r, &mut set);
                }
                set
            })
            .collect();
        let writes: Vec<Reg> = program.stmts.iter().map(|s| s.head()).collect();
        let mut level_of = vec![0usize; n];
        for i in 0..n {
            let mut lv = 1;
            for j in 0..i {
                let raw = reads[i].contains(&writes[j]);
                let war = reads[j].contains(&writes[i]);
                let waw = writes[i] == writes[j];
                if raw || war || waw {
                    lv = lv.max(level_of[j] + 1);
                }
            }
            level_of[i] = lv;
        }
        level_of
    }

    #[test]
    fn matches_quadratic_reference_on_random_programs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = scheme(&["AB", "BC", "CD", "DE", "EF", "FA"]);
            let mut b = ProgramBuilder::new(&s);
            let mut regs: Vec<Reg> = (0..6).map(Reg::Base).collect();
            for t in 0..3 {
                let src = regs[rng.gen_range(0..regs.len())];
                regs.push(b.new_temp_alias(format!("V{t}"), src));
            }
            let temps: Vec<Reg> = regs.iter().copied().filter(|r| r.is_temp()).collect();
            for _ in 0..rng.gen_range(5..40usize) {
                let a = regs[rng.gen_range(0..regs.len())];
                let c = regs[rng.gen_range(0..regs.len())];
                if rng.gen_bool(0.5) {
                    b.semijoin(a, c);
                } else {
                    b.join(temps[rng.gen_range(0..temps.len())], a, c);
                }
            }
            let p = b.finish(regs[0]);
            assert_eq!(
                schedule(&p).level_of,
                quadratic_reference(&p),
                "seed {seed}"
            );
        }
    }
}
