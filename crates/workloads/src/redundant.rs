//! Planted-redundancy conjunctive queries — workloads with a *known core*.
//!
//! The generator starts from a chain query that is provably its own core
//! (each edge relation appears exactly once, so no atom can fold) and plants
//! `k` foldable copies of chain atoms, each with a fresh non-head variable:
//!
//! ```text
//! Q(x0, x3) :- r0(x0, x1), r1(x1, x2), r2(x2, x3),   // the core (n = 3)
//!              r0(x0, d0), r1(x1, d1)                  // planted (k = 2)
//! ```
//!
//! `r0(x0, d0)` folds onto `r0(x0, x1)` via `d0 ↦ x1`, so the core has
//! exactly `chain_len` atoms — the ground truth the minimization corpus
//! tests against. The data is a uniform successor graph (each node `v` has
//! edges to `v+1 … v+f mod m`), which gives **closed-form** sizes:
//!
//! * every relation holds `m·f` tuples;
//! * the head projection has `m · min(m, n(f−1)+1)` tuples (endpoints of
//!   `n`-step walks: consecutive step-sum residues);
//! * the *full join* the engine materializes before projecting has
//!   `m·fⁿ` rows minimized and `m·fⁿ⁺ᵏ` unminimized — every planted atom
//!   multiplies the intermediate by `f`, which is exactly the wall-clock
//!   gap the `exp_minimize` bench measures.

use mjoin_cq::{Atom, Term};
use mjoin_cq::{ConjunctiveQuery, NamedDatabase};

/// A chain query with planted foldable atoms over successor-graph data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedRedundancy {
    /// Core chain length `n ≥ 1` (atoms `r0 … r{n-1}`, all distinct
    /// predicates — which is what makes the chain its own core).
    pub chain_len: usize,
    /// Number of planted foldable atoms (`planted[t]` copies chain atom
    /// `t mod n` with a fresh second variable).
    pub planted: usize,
    /// Domain size `m` (nodes `0..m`).
    pub domain: u64,
    /// Out-degree `f < m`: node `v` has successors `v+1 … v+f (mod m)`.
    pub fanout: u64,
}

impl PlantedRedundancy {
    /// A planted-redundancy workload. Panics unless `chain_len ≥ 1`,
    /// `fanout ≥ 1`, and `fanout < domain` (the closed forms need
    /// collision-free successor sets).
    pub fn new(chain_len: usize, planted: usize, domain: u64, fanout: u64) -> Self {
        assert!(chain_len >= 1, "the chain needs at least one atom");
        assert!(fanout >= 1, "nodes need at least one successor");
        assert!(
            fanout < domain,
            "fanout must stay below the domain for distinct successors"
        );
        PlantedRedundancy {
            chain_len,
            planted,
            domain,
            fanout,
        }
    }

    /// Size of the known core (= `chain_len`).
    pub fn core_size(&self) -> usize {
        self.chain_len
    }

    /// Total body atoms (`chain_len + planted`).
    pub fn total_atoms(&self) -> usize {
        self.chain_len + self.planted
    }

    /// The query: core chain plus planted foldable copies.
    pub fn query(&self) -> ConjunctiveQuery {
        let var = |i: usize| Term::Var(format!("x{i}"));
        let mut body: Vec<Atom> = (0..self.chain_len)
            .map(|i| Atom {
                predicate: format!("r{i}"),
                terms: vec![var(i), var(i + 1)],
            })
            .collect();
        for t in 0..self.planted {
            let anchor = t % self.chain_len;
            body.push(Atom {
                predicate: format!("r{anchor}"),
                terms: vec![var(anchor), Term::Var(format!("d{t}"))],
            });
        }
        ConjunctiveQuery {
            head_name: "Q".into(),
            head_vars: vec!["x0".into(), format!("x{}", self.chain_len)],
            body,
        }
    }

    /// The query in parseable text form (for CLI / server round trips).
    pub fn query_text(&self) -> String {
        self.query().to_string()
    }

    /// The database: every `r{i}` holds the same successor graph, `m·f`
    /// tuples each, columns `src`/`dst`.
    pub fn named_database(&self) -> NamedDatabase {
        let m = self.domain;
        let mut tuples: Vec<Vec<i64>> = Vec::with_capacity((m * self.fanout) as usize);
        for v in 0..m {
            for j in 1..=self.fanout {
                #[allow(clippy::cast_possible_wrap)]
                tuples.push(vec![v as i64, ((v + j) % m) as i64]);
            }
        }
        let slices: Vec<&[i64]> = tuples.iter().map(Vec::as_slice).collect();
        let mut db = NamedDatabase::new();
        for i in 0..self.chain_len {
            db.add_relation(&format!("r{i}"), &["src", "dst"], &slices)
                .expect("fresh relation name");
        }
        db
    }

    /// Tuples per relation: `m·f`.
    pub fn relation_size(&self) -> u64 {
        self.domain * self.fanout
    }

    /// Closed-form head-projection size: `m · min(m, n(f−1)+1)`.
    ///
    /// An `n`-step walk from `v` ends at `v + s mod m` with the step sum
    /// `s` ranging over the consecutive integers `n ..= n·f`; that is
    /// `n(f−1)+1` distinct residues (capped at `m`), for each of `m`
    /// start nodes. Planted atoms never change this — they are logically
    /// redundant — which is exactly what the differential tests assert.
    pub fn expected_output_size(&self) -> u64 {
        let n = self.chain_len as u64;
        let reachable = n * (self.fanout - 1) + 1;
        self.domain * reachable.min(self.domain)
    }

    /// Closed-form size of the full join over all atoms before the head
    /// projection: `m·fⁿ` for the core, times `f` per planted atom kept.
    pub fn expected_full_join_rows(&self, minimized: bool) -> u64 {
        let steps = if minimized {
            self.chain_len as u32
        } else {
            self.total_atoms() as u32
        };
        self.domain * self.fanout.pow(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cq::{execute_query, minimize, PlanStrategy};

    #[test]
    fn query_shape_and_text() {
        let w = PlantedRedundancy::new(3, 2, 10, 2);
        assert_eq!(w.total_atoms(), 5);
        assert_eq!(w.core_size(), 3);
        assert_eq!(
            w.query_text(),
            "Q(x0, x3) :- r0(x0, x1), r1(x1, x2), r2(x2, x3), r0(x0, d0), r1(x1, d1)."
        );
    }

    #[test]
    fn planted_atoms_fold_to_the_known_core() {
        for (n, k) in [(1, 1), (2, 1), (2, 3), (3, 2), (4, 4)] {
            let w = PlantedRedundancy::new(n, k, 11, 2);
            let m = minimize(&w.query());
            assert!(m.proof.verified);
            assert_eq!(m.core.body.len(), w.core_size(), "n={n} k={k}");
            assert_eq!(m.proof.dropped.len(), k);
        }
    }

    #[test]
    fn closed_form_output_size_matches_execution() {
        for (n, k, m, f) in [(2, 1, 9, 2), (3, 2, 8, 2), (2, 2, 7, 3), (1, 2, 6, 2)] {
            let w = PlantedRedundancy::new(n, k, m, f);
            let db = w.named_database();
            let res = execute_query(&db, &w.query(), PlanStrategy::Greedy).unwrap();
            assert_eq!(
                res.len() as u64,
                w.expected_output_size(),
                "n={n} k={k} m={m} f={f}"
            );
        }
    }

    #[test]
    fn closed_form_survives_the_wraparound_cap() {
        // n(f−1)+1 ≥ m: every endpoint pair is reachable.
        let w = PlantedRedundancy::new(4, 0, 5, 3);
        assert_eq!(w.expected_output_size(), 25);
        let db = w.named_database();
        let res = execute_query(&db, &w.query(), PlanStrategy::Greedy).unwrap();
        assert_eq!(res.len(), 25);
    }

    #[test]
    fn relation_sizes_are_m_times_f() {
        let w = PlantedRedundancy::new(2, 1, 12, 3);
        let db = w.named_database();
        for i in 0..2 {
            assert_eq!(
                db.get(&format!("r{i}")).unwrap().relation.len() as u64,
                w.relation_size()
            );
        }
    }

    #[test]
    fn full_join_blowup_is_f_per_planted_atom() {
        let w = PlantedRedundancy::new(2, 3, 10, 2);
        assert_eq!(w.expected_full_join_rows(true), 10 * 4);
        assert_eq!(w.expected_full_join_rows(false), 10 * 32);
    }
}
