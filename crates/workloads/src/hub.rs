//! Hub-patterned cyclic graph workloads — the worst-case-optimal join's
//! home turf.
//!
//! Every relation is binary, over a pair of corner attributes, and holds a
//! *hub* pattern at per-edge scale `mᵢ`: the `mᵢ + 1` tuples `(0, v)` for
//! `v ∈ 0..=mᵢ` plus the `mᵢ` tuples `(u, 0)` for `u ∈ 1..=mᵢ` — a star
//! centred on `0` in both directions, `2mᵢ + 1` tuples per relation.
//!
//! The join of hub relations admits exactly the tuples whose non-zero
//! coordinates form an **independent set** of the query graph (two
//! adjacent non-zero coordinates would need a tuple with both components
//! non-zero, which no hub relation has). That makes the full join size a
//! pure graph property:
//!
//! * triangles and cliques (independence number 1): `Θ(m)` output, while
//!   every pairwise join is `Θ(m²)` — any §2.2 program materializes some
//!   `Θ(m²)` intermediate, generic join pays `O(m)` per attribute. This
//!   is the quadratic separation the AGM bound certifies: the triangle's
//!   Theorem-2 certificate is `N²` against an AGM bound of `N^{3/2}`.
//! * `n ≥ 4` cycles (independence number ≥ 2): the output itself is
//!   `Θ(m²)` — matching the 4-cycle's AGM bound `N²`, so there the
//!   certificate ties the AGM bound and the program path is the right
//!   choice. The 5-cycle's AGM bound `N^{5/2}` ties the certificate of
//!   *bushy* programs but undercuts every **linear** program (whose
//!   4-edge-path intermediate is certified at `N³`) — executor selection
//!   is a property of the derived program, not the scheme alone.
//!
//! [`HubGraph::cycle`], [`HubGraph::clique`], and
//! [`HubGraph::clique_skew`] cover the shapes the `exp_wcoj` bench
//! exercises: `triangle_dense` (`cycle(3)`), `cycle_gap_4`/`cycle_gap_5`
//! (binary 4-/5-cycles — unlike [`crate::CycleGap`], which pads each edge
//! with a private attribute and thereby forces the all-ones edge cover),
//! `clique_4`, and `clique_4_skew` (a light perfect matching under heavy
//! cross edges, so every Cartesian-free program's first join is certified
//! above the AGM bound).

use mjoin_hypergraph::DbScheme;
use mjoin_relation::{Catalog, Database, Relation, Row, Schema, Value};

/// A graph query (every hyperedge binary) over hub-patterned data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubGraph {
    /// Number of corner attributes `x0..x{vertices-1}`.
    pub vertices: usize,
    /// Edges as ordered corner pairs; relation `i` spans
    /// `(x_{edges[i].0}, x_{edges[i].1})`.
    pub edges: Vec<(usize, usize)>,
    /// Per-edge scale: relation `i` holds `2·scales[i] + 1` tuples.
    pub scales: Vec<u64>,
}

impl HubGraph {
    /// The binary `n`-cycle `x0–x1–…–x_{n-1}–x0`, uniform scale `m`.
    pub fn cycle(n: usize, m: u64) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 edges");
        assert!(m >= 1);
        HubGraph {
            vertices: n,
            edges: (0..n).map(|i| (i, (i + 1) % n)).collect(),
            scales: vec![m; n],
        }
    }

    /// The complete graph on `k` vertices (`k·(k−1)/2` relations),
    /// uniform scale `m`.
    pub fn clique(k: usize, m: u64) -> Self {
        Self::clique_with(k, |_| m)
    }

    /// `K4` with a light perfect matching: edges `x0x1` and `x2x3` at
    /// scale `m`, the four cross edges at `heavy·m`. The AGM bound is the
    /// matching product `N_s²`, but every attribute-sharing pair of edges
    /// is certified at `N_s·N_h` or larger — so any Cartesian-free
    /// program's certificate strictly exceeds the AGM bound and `auto`
    /// routes to the worst-case-optimal executor, for *every* such tree.
    pub fn clique_skew(m: u64, heavy: u64) -> Self {
        assert!(heavy >= 2, "the cross edges must outweigh the matching");
        Self::clique_with(4, |(a, b)| {
            if (a, b) == (0, 1) || (a, b) == (2, 3) {
                m
            } else {
                heavy * m
            }
        })
    }

    fn clique_with(k: usize, scale: impl Fn((usize, usize)) -> u64) -> Self {
        assert!(k >= 3, "a clique needs at least 3 vertices");
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j));
            }
        }
        let scales = edges.iter().map(|&e| scale(e)).collect::<Vec<_>>();
        assert!(scales.iter().all(|&m| m >= 1));
        HubGraph {
            vertices: k,
            edges,
            scales,
        }
    }

    /// `|Rᵢ| = 2·scales[i] + 1`.
    pub fn relation_size(&self, i: usize) -> u64 {
        2 * self.scales[i] + 1
    }

    /// Closed-form full-join size: one tuple per independent set `S` of
    /// the query graph with each member's coordinate ranging over
    /// `1..=min` of its incident scales (exponential in `vertices`; keep
    /// graphs small).
    pub fn join_size(&self) -> u64 {
        let mut total = 0u64;
        for mask in 0u32..(1 << self.vertices) {
            let independent = self
                .edges
                .iter()
                .all(|&(a, b)| mask & (1 << a) == 0 || mask & (1 << b) == 0);
            if !independent {
                continue;
            }
            let mut ways = 1u64;
            for v in 0..self.vertices {
                if mask & (1 << v) != 0 {
                    ways *= self.max_coordinate(v);
                }
            }
            total += ways;
        }
        total
    }

    /// The largest non-zero value vertex `v` can take in a join tuple:
    /// the minimum scale over its incident edges.
    fn max_coordinate(&self, v: usize) -> u64 {
        self.edges
            .iter()
            .zip(&self.scales)
            .filter(|&(&(a, b), _)| a == v || b == v)
            .map(|(_, &m)| m)
            .min()
            .expect("every vertex has an incident edge")
    }

    /// The scheme: one binary hyperedge per graph edge.
    pub fn scheme(&self, catalog: &mut Catalog) -> DbScheme {
        let corners: Vec<_> = (0..self.vertices)
            .map(|i| catalog.intern(&format!("x{i}")))
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|&(a, b)| [corners[a], corners[b]].into_iter().collect())
            .collect();
        DbScheme::new(edges)
    }

    /// Materialize the database: the hub pattern in every relation.
    pub fn database(&self, catalog: &mut Catalog) -> Database {
        let corners: Vec<_> = (0..self.vertices)
            .map(|i| catalog.intern(&format!("x{i}")))
            .collect();
        let rels = self
            .edges
            .iter()
            .zip(&self.scales)
            .map(|(&(a, b), &m)| {
                let schema = Schema::new(vec![corners[a], corners[b]]);
                let (pa, pb) = (
                    schema.position(corners[a]).unwrap(),
                    schema.position(corners[b]).unwrap(),
                );
                let mut rows: Vec<Row> = Vec::with_capacity(2 * m as usize + 1);
                let mut push = |u: i64, v: i64| {
                    let mut row = vec![Value::Int(0); 2];
                    row[pa] = Value::Int(u);
                    row[pb] = Value::Int(v);
                    rows.push(row.into());
                };
                for v in 0..=m as i64 {
                    push(0, v);
                }
                for u in 1..=m as i64 {
                    push(u, 0);
                }
                Relation::from_rows(schema, rows).expect("hub rows are distinct")
            })
            .collect();
        Database::from_relations(rels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_hypergraph::is_acyclic;

    #[test]
    fn triangle_shape_and_sizes() {
        let g = HubGraph::cycle(3, 10);
        let mut c = Catalog::new();
        let scheme = g.scheme(&mut c);
        let db = g.database(&mut c);
        assert_eq!(scheme.num_relations(), 3);
        assert!(scheme.fully_connected());
        assert!(!is_acyclic(&scheme));
        for (i, rel) in db.relations().iter().enumerate() {
            assert_eq!(rel.len() as u64, g.relation_size(i));
        }
        // Independence number 1: the triangle collapses to 3m + 1 tuples.
        assert_eq!(g.join_size(), 31);
        assert_eq!(db.join_all().len() as u64, g.join_size());
    }

    #[test]
    fn pairwise_joins_are_quadratic() {
        let g = HubGraph::cycle(5, 12);
        let mut c = Catalog::new();
        let db = g.database(&mut c);
        // Adjacent pair R0 ⋈ R1: shared corner x1 = 0 frees both ends.
        let pair = mjoin_relation::ops::join(db.relation(0), db.relation(1));
        let m = 12;
        assert_eq!(pair.len() as u64, (m + 1) * (m + 1) + m);
    }

    #[test]
    fn cycle_joins_count_independent_sets() {
        // C4: ∅, 4 singletons, the 2 diagonal pairs → 1 + 4m + 2m².
        let g4 = HubGraph::cycle(4, 7);
        assert_eq!(g4.join_size(), 1 + 4 * 7 + 2 * 49);
        // C5: ∅, 5 singletons, 5 non-adjacent pairs → 1 + 5m + 5m².
        let g5 = HubGraph::cycle(5, 12);
        assert_eq!(g5.join_size(), 1 + 5 * 12 + 5 * 144);
        for g in [g4, g5] {
            let mut c = Catalog::new();
            let db = g.database(&mut c);
            assert_eq!(db.join_all().len() as u64, g.join_size());
        }
    }

    #[test]
    fn clique_join_matches_closed_form() {
        let g = HubGraph::clique(4, 6);
        let mut c = Catalog::new();
        let scheme = g.scheme(&mut c);
        let db = g.database(&mut c);
        assert_eq!(scheme.num_relations(), 6);
        assert!(scheme.fully_connected());
        assert_eq!(g.join_size(), 4 * 6 + 1);
        assert_eq!(db.join_all().len() as u64, g.join_size());
    }

    #[test]
    fn skewed_clique_output_is_bounded_by_the_matching() {
        let g = HubGraph::clique_skew(5, 4);
        let mut c = Catalog::new();
        let db = g.database(&mut c);
        // Every vertex touches a matching edge, so each coordinate is
        // capped at the light scale m even under heavy cross edges.
        assert_eq!(g.join_size(), 4 * 5 + 1);
        assert_eq!(db.join_all().len() as u64, g.join_size());
        let light = db.relation(0).len();
        let heavy = db.relation(1).len();
        assert!(heavy > 2 * light);
    }
}
