//! Random database generation with a planted witness tuple.
//!
//! Theorem 2 assumes `⋈D ≠ ∅`; random data over a cyclic scheme is very
//! likely to have an empty join, so the generator plants one global witness
//! assignment (attribute → value) and inserts its restriction into every
//! relation, guaranteeing `⋈D` contains at least the witness tuple.

use mjoin_hypergraph::DbScheme;
use mjoin_relation::{Database, Relation, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_database`].
#[derive(Debug, Clone)]
pub struct DataGenConfig {
    /// Tuples per relation (before deduplication; the planted witness is
    /// added on top).
    pub tuples_per_relation: usize,
    /// Attribute values are drawn uniformly from `0..domain`.
    pub domain: i64,
    /// RNG seed.
    pub seed: u64,
    /// Whether to plant the all-witness tuple (value `domain` in every
    /// attribute, outside the random range so it joins only with itself).
    pub plant_witness: bool,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig {
            tuples_per_relation: 50,
            domain: 8,
            seed: 0,
            plant_witness: true,
        }
    }
}

/// Generate a random database over `scheme`.
pub fn random_database(scheme: &DbScheme, config: &DataGenConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rels = Vec::with_capacity(scheme.num_relations());
    for i in 0..scheme.num_relations() {
        let schema = Schema::from_set(scheme.attrs_of(i));
        let mut rows: Vec<Row> = Vec::with_capacity(config.tuples_per_relation + 1);
        if config.plant_witness {
            rows.push(vec![Value::Int(config.domain); schema.arity()].into());
        }
        for _ in 0..config.tuples_per_relation {
            let row: Row = (0..schema.arity())
                .map(|_| Value::Int(rng.gen_range(0..config.domain)))
                .collect();
            rows.push(row);
        }
        rels.push(Relation::from_rows(schema, rows).expect("arity correct"));
    }
    Database::from_relations(rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{chain, cycle};
    use mjoin_relation::Catalog;

    #[test]
    fn witness_guarantees_nonempty_join() {
        let mut c = Catalog::new();
        let s = cycle(&mut c, 4);
        for seed in 0..10 {
            let db = random_database(
                &s,
                &DataGenConfig {
                    seed,
                    tuples_per_relation: 30,
                    domain: 5,
                    plant_witness: true,
                },
            );
            assert!(!db.join_all().is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn without_witness_cycle_join_often_empty() {
        let mut c = Catalog::new();
        let s = cycle(&mut c, 5);
        let empties = (0..10)
            .filter(|&seed| {
                let db = random_database(
                    &s,
                    &DataGenConfig {
                        seed,
                        tuples_per_relation: 5,
                        domain: 50,
                        plant_witness: false,
                    },
                );
                db.join_all().is_empty()
            })
            .count();
        assert!(empties >= 7, "sparse random cycles should mostly be empty");
    }

    #[test]
    fn sizes_respected_up_to_dedup() {
        let mut c = Catalog::new();
        let s = chain(&mut c, 3);
        let db = random_database(
            &s,
            &DataGenConfig {
                tuples_per_relation: 40,
                domain: 100,
                seed: 1,
                plant_witness: true,
            },
        );
        for rel in db.relations() {
            assert!(rel.len() <= 41);
            assert!(rel.len() >= 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut c = Catalog::new();
        let s = chain(&mut c, 3);
        let cfg = DataGenConfig {
            seed: 9,
            ..Default::default()
        };
        let a = random_database(&s, &cfg);
        let b = random_database(&s, &cfg);
        assert_eq!(a, b);
    }
}
