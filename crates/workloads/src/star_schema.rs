//! A warehouse-style star-schema workload: one fact relation joined to many
//! dimension relations, with optional key skew.
//!
//! Star schemes are acyclic (the fact scheme is a universal witness for GYO),
//! so they are the classical method's home turf — a useful realistic
//! counterpoint to Example 3's adversarial cycle. Skewed foreign keys make
//! the workload interesting for the estimators (E8) and for join ordering
//! (dimension selectivity varies).

use mjoin_hypergraph::DbScheme;
use mjoin_relation::{Catalog, Database, Relation, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`star_schema`].
#[derive(Debug, Clone)]
pub struct StarSchemaConfig {
    /// Number of dimension relations.
    pub dimensions: usize,
    /// Rows in the fact relation.
    pub fact_rows: usize,
    /// Rows in each dimension relation (also the key domain size).
    pub dim_rows: usize,
    /// Fraction of dimension keys the fact actually references (selectivity
    /// of the dimension joins): 1.0 = every key, 0.1 = a hot 10%.
    pub key_coverage: f64,
    /// Power-law skew exponent for fact foreign keys: 0.0 = uniform; larger
    /// values concentrate references on low keys.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarSchemaConfig {
    fn default() -> Self {
        StarSchemaConfig {
            dimensions: 3,
            fact_rows: 500,
            dim_rows: 50,
            key_coverage: 1.0,
            skew: 0.0,
            seed: 0,
        }
    }
}

/// Generate the scheme and database. Relation 0 is the fact
/// `F(k₀, …, k_{d−1}, m)` (with a unique measure column `m`); relation
/// `1 + i` is dimension `Dᵢ(kᵢ, aᵢ)`.
pub fn star_schema(catalog: &mut Catalog, config: &StarSchemaConfig) -> (DbScheme, Database) {
    assert!(config.dimensions >= 1);
    assert!(config.dim_rows >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let keys: Vec<_> = (0..config.dimensions)
        .map(|i| catalog.intern(&format!("k{i}")))
        .collect();
    let measure = catalog.intern("m");

    // Fact relation.
    let usable =
        ((config.dim_rows as f64 * config.key_coverage).ceil() as usize).clamp(1, config.dim_rows);
    let draw_key = |rng: &mut StdRng| -> i64 {
        let u: f64 = rng.gen();
        // Power-law toward 0 for skew > 0.
        let x = u.powf(1.0 + config.skew);
        ((x * usable as f64) as usize).min(usable - 1) as i64
    };
    let fact_schema = Schema::new(keys.iter().copied().chain([measure]).collect());
    let mpos = fact_schema.position(measure).expect("measure in schema");
    let fact_rows: Vec<Row> = (0..config.fact_rows)
        .map(|i| {
            let mut row = vec![Value::Int(0); fact_schema.arity()];
            for &k in &keys {
                let pos = fact_schema.position(k).expect("key in schema");
                row[pos] = Value::Int(draw_key(&mut rng));
            }
            row[mpos] = Value::Int(i as i64); // unique measure: no dedup
            row.into()
        })
        .collect();
    let fact = Relation::from_rows(fact_schema, fact_rows).expect("arity ok");

    // Dimensions: key + one attribute column.
    let mut relations = vec![fact];
    for (i, &k) in keys.iter().enumerate() {
        let attr = catalog.intern(&format!("d{i}"));
        let schema = Schema::new(vec![k, attr]);
        let kpos = schema.position(k).unwrap();
        let apos = schema.position(attr).unwrap();
        let rows: Vec<Row> = (0..config.dim_rows)
            .map(|key| {
                let mut row = vec![Value::Int(0); 2];
                row[kpos] = Value::Int(key as i64);
                row[apos] = Value::Int(rng.gen_range(0..1000));
                row.into()
            })
            .collect();
        relations.push(Relation::from_rows(schema, rows).expect("arity ok"));
    }

    let db = Database::from_relations(relations);
    let scheme = DbScheme::from_schemas(&db.schemas());
    (scheme, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_hypergraph::is_acyclic;

    #[test]
    fn shape_and_sizes() {
        let mut c = Catalog::new();
        let cfg = StarSchemaConfig {
            dimensions: 4,
            fact_rows: 200,
            dim_rows: 30,
            ..Default::default()
        };
        let (scheme, db) = star_schema(&mut c, &cfg);
        assert_eq!(scheme.num_relations(), 5);
        assert_eq!(db.relation(0).len(), 200); // unique measures: no dedup
        for i in 1..=4 {
            assert_eq!(db.relation(i).len(), 30);
        }
        assert!(scheme.fully_connected());
        assert!(is_acyclic(&scheme));
    }

    #[test]
    fn every_fact_row_survives_full_coverage_join() {
        let mut c = Catalog::new();
        let cfg = StarSchemaConfig {
            key_coverage: 1.0,
            ..Default::default()
        };
        let (_s, db) = star_schema(&mut c, &cfg);
        let j = db.join_all();
        // Every fact key exists in its dimension, so the join has exactly
        // one row per fact row.
        assert_eq!(j.len(), db.relation(0).len());
    }

    #[test]
    fn skew_concentrates_keys() {
        let mut c = Catalog::new();
        let cfg = StarSchemaConfig {
            skew: 3.0,
            fact_rows: 1000,
            dim_rows: 100,
            ..Default::default()
        };
        let (_s, db) = star_schema(&mut c, &cfg);
        let fact = db.relation(0);
        let k0 = c.lookup("k0").unwrap();
        let pos = fact.schema().position(k0).unwrap();
        let low = fact
            .rows()
            .iter()
            .filter(|r| r[pos].as_int().unwrap() < 10)
            .count();
        assert!(
            low > fact.len() / 2,
            "with skew 3.0, most keys should be in the lowest decile (got {low}/{})",
            fact.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut c1 = Catalog::new();
        let mut c2 = Catalog::new();
        let cfg = StarSchemaConfig {
            seed: 42,
            ..Default::default()
        };
        let (_s1, d1) = star_schema(&mut c1, &cfg);
        let (_s2, d2) = star_schema(&mut c2, &cfg);
        assert_eq!(d1, d2);
    }
}
