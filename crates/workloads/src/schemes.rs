//! Database-scheme generators: the standard query-shape families plus random
//! connected schemes.

use mjoin_hypergraph::DbScheme;
use mjoin_relation::{AttrSet, Catalog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn attr(catalog: &mut Catalog, name: String) -> mjoin_relation::AttrId {
    catalog.intern(&name)
}

/// Chain `R₁(x₀x₁), R₂(x₁x₂), …` — acyclic, the easiest shape.
pub fn chain(catalog: &mut Catalog, n: usize) -> DbScheme {
    assert!(n >= 1);
    let xs: Vec<_> = (0..=n).map(|i| attr(catalog, format!("x{i}"))).collect();
    DbScheme::new(
        (0..n)
            .map(|i| AttrSet::from_iter_ids([xs[i], xs[i + 1]]))
            .collect(),
    )
}

/// Cycle `R₁(x₀x₁), …, Rₙ(xₙ₋₁x₀)` — the minimal cyclic shape; `n = 4` with
/// widened edges is the paper's running example.
pub fn cycle(catalog: &mut Catalog, n: usize) -> DbScheme {
    assert!(n >= 3, "a cycle needs at least 3 edges");
    let xs: Vec<_> = (0..n).map(|i| attr(catalog, format!("x{i}"))).collect();
    DbScheme::new(
        (0..n)
            .map(|i| AttrSet::from_iter_ids([xs[i], xs[(i + 1) % n]]))
            .collect(),
    )
}

/// Star: a fact scheme `(k₁ … kₙ)` plus one dimension scheme `(kᵢ dᵢ)` per
/// key — acyclic, the warehouse shape.
pub fn star(catalog: &mut Catalog, n: usize) -> DbScheme {
    assert!(n >= 1);
    let keys: Vec<_> = (0..n).map(|i| attr(catalog, format!("k{i}"))).collect();
    let mut edges = vec![AttrSet::from_iter_ids(keys.iter().copied())];
    for (i, &k) in keys.iter().enumerate() {
        let d = attr(catalog, format!("d{i}"));
        edges.push(AttrSet::from_iter_ids([k, d]));
    }
    DbScheme::new(edges)
}

/// Clique: one scheme `(xᵢ xⱼ)` per unordered pair — maximally cyclic.
pub fn clique(catalog: &mut Catalog, n: usize) -> DbScheme {
    assert!(n >= 2);
    let xs: Vec<_> = (0..n).map(|i| attr(catalog, format!("x{i}"))).collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push(AttrSet::from_iter_ids([xs[i], xs[j]]));
        }
    }
    DbScheme::new(edges)
}

/// Grid: one scheme per grid edge of a `w × h` node lattice — cyclic for
/// `w, h ≥ 2`, with treewidth `min(w, h)`.
pub fn grid(catalog: &mut Catalog, w: usize, h: usize) -> DbScheme {
    assert!(w >= 1 && h >= 1 && w * h >= 2);
    let node = |catalog: &mut Catalog, x: usize, y: usize| attr(catalog, format!("g{x}_{y}"));
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let a = node(catalog, x, y);
            if x + 1 < w {
                let b = node(catalog, x + 1, y);
                edges.push(AttrSet::from_iter_ids([a, b]));
            }
            if y + 1 < h {
                let b = node(catalog, x, y + 1);
                edges.push(AttrSet::from_iter_ids([a, b]));
            }
        }
    }
    DbScheme::new(edges)
}

/// A random connected scheme: `n` relation schemes of `2..=max_arity`
/// attributes drawn from a pool of `num_attrs`, rejection-sampled (with a
/// spanning-chain fallback) to be connected.
pub fn random_connected(
    catalog: &mut Catalog,
    n: usize,
    num_attrs: usize,
    max_arity: usize,
    seed: u64,
) -> DbScheme {
    assert!(n >= 1 && num_attrs >= 2 && max_arity >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<_> = (0..num_attrs)
        .map(|i| attr(catalog, format!("a{i}")))
        .collect();
    for _ in 0..200 {
        let edges: Vec<AttrSet> = (0..n)
            .map(|_| {
                let arity = rng.gen_range(2..=max_arity.min(num_attrs));
                let mut set = AttrSet::new();
                while set.len() < arity {
                    set.insert(pool[rng.gen_range(0..pool.len())]);
                }
                set
            })
            .collect();
        let scheme = DbScheme::new(edges);
        if scheme.fully_connected() {
            return scheme;
        }
    }
    // Fallback: stitch a connected scheme deterministically by overlapping
    // consecutive attribute pairs.
    let edges: Vec<AttrSet> = (0..n)
        .map(|i| AttrSet::from_iter_ids([pool[i % pool.len()], pool[(i + 1) % pool.len()]]))
        .collect();
    DbScheme::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_hypergraph::is_acyclic;

    #[test]
    fn chain_shape() {
        let mut c = Catalog::new();
        let s = chain(&mut c, 5);
        assert_eq!(s.num_relations(), 5);
        assert_eq!(s.num_attrs(), 6);
        assert!(s.fully_connected());
        assert!(is_acyclic(&s));
    }

    #[test]
    fn cycle_shape() {
        let mut c = Catalog::new();
        let s = cycle(&mut c, 4);
        assert_eq!(s.num_relations(), 4);
        assert_eq!(s.num_attrs(), 4);
        assert!(s.fully_connected());
        assert!(!is_acyclic(&s));
    }

    #[test]
    fn star_shape() {
        let mut c = Catalog::new();
        let s = star(&mut c, 3);
        assert_eq!(s.num_relations(), 4);
        assert_eq!(s.num_attrs(), 6);
        assert!(s.fully_connected());
        assert!(is_acyclic(&s));
    }

    #[test]
    fn clique_shape() {
        let mut c = Catalog::new();
        let s = clique(&mut c, 4);
        assert_eq!(s.num_relations(), 6);
        assert_eq!(s.num_attrs(), 4);
        assert!(s.fully_connected());
        assert!(!is_acyclic(&s));
    }

    #[test]
    fn grid_shape() {
        let mut c = Catalog::new();
        let s = grid(&mut c, 3, 2);
        // Edges: horizontal 2·2=4? For w=3,h=2: horizontal (w−1)·h = 4,
        // vertical w·(h−1) = 3 → 7.
        assert_eq!(s.num_relations(), 7);
        assert_eq!(s.num_attrs(), 6);
        assert!(s.fully_connected());
        assert!(!is_acyclic(&s));
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..10 {
            let mut c = Catalog::new();
            let s = random_connected(&mut c, 5, 8, 3, seed);
            assert_eq!(s.num_relations(), 5);
            assert!(s.fully_connected(), "seed {seed}");
        }
    }

    #[test]
    fn random_connected_deterministic_per_seed() {
        let mut c1 = Catalog::new();
        let s1 = random_connected(&mut c1, 5, 8, 3, 7);
        let mut c2 = Catalog::new();
        let s2 = random_connected(&mut c2, 5, 8, 3, 7);
        assert_eq!(s1, s2);
    }
}
