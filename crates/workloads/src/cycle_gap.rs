//! The Example 3 construction applied to cycles of arbitrary length — and
//! the finding that **the 4-cycle is special**.
//!
//! The same ingredients as [`crate::example3`] — corner attributes carrying
//! a spine value plus two parity-coded mass values, one flipped edge, and a
//! heavy relation — are generated here for any cycle length `n ≥ 3`. On
//! `n = 4` they reproduce the paper's unbounded CPF/optimal separation. On
//! `n ≥ 5` they *cannot*: removing any single relation from an `n`-cycle
//! leaves a connected path, so **every** join tree (CPF or not) contains a
//! connected `(n−1)`-subset whose mass join is the dominant term, and the
//! best CPF tree matches the optimum up to lower-order terms. The paper's
//! choice of the 4-cycle — where the root can split into two *disconnected*
//! pairs — is structurally load-bearing, not cosmetic. The tests pin both
//! sides of this dichotomy; this is an extension study beyond the paper
//! (in the spirit of its §4 open questions).

use mjoin_expr::JoinTree;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::{Catalog, Database, Relation, Row, Schema, Value};

/// Generator for parity-broken cycle databases of length `n` at scale `m`.
///
/// Relation `i` (for `i < n`) spans corners `xᵢ, x_{i+1 mod n}` plus a
/// private attribute `pᵢ`. Relation 0 is heavy (`q₀ = m³`); relations at odd
/// positions get `q = m²`, the rest `q = m` — mirroring Example 3's
/// `(m³, m², m, m²)` profile at `n = 4` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleGap {
    /// Cycle length (number of relations), ≥ 3.
    pub n: usize,
    /// Scale parameter (the paper's `10^k` at `n = 4`).
    pub m: u64,
}

impl CycleGap {
    /// The family member with `n` relations at scale `m`.
    pub fn new(n: usize, m: u64) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 relations");
        assert!(m >= 1);
        CycleGap { n, m }
    }

    /// Mass multiplicity of relation `i`.
    pub fn q(&self, i: usize) -> u64 {
        if i == 0 {
            self.m * self.m * self.m
        } else if i % 2 == 1 {
            self.m * self.m
        } else {
            self.m
        }
    }

    /// `|Rᵢ| = 2qᵢ + 1`.
    pub fn relation_size(&self, i: usize) -> u64 {
        2 * self.q(i) + 1
    }

    /// The scheme: hyperedges `{xᵢ, pᵢ, x_{i+1 mod n}}`.
    pub fn scheme(&self, catalog: &mut Catalog) -> DbScheme {
        let corners: Vec<_> = (0..self.n)
            .map(|i| catalog.intern(&format!("x{i}")))
            .collect();
        let edges = (0..self.n)
            .map(|i| {
                let p = catalog.intern(&format!("p{i}"));
                [corners[i], p, corners[(i + 1) % self.n]]
                    .into_iter()
                    .collect()
            })
            .collect();
        DbScheme::new(edges)
    }

    /// Materialize the database (memory `Θ(m³)` tuples).
    pub fn database(&self, catalog: &mut Catalog) -> Database {
        let flip = |v: i64| match v {
            1 => 2,
            2 => 1,
            other => other,
        };
        let mut rels = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let a_in = catalog.intern(&format!("x{i}"));
            let p = catalog.intern(&format!("p{i}"));
            let a_out = catalog.intern(&format!("x{}", (i + 1) % self.n));
            let schema = Schema::new(vec![a_in, p, a_out]);
            let (pi, pp, po) = (
                schema.position(a_in).unwrap(),
                schema.position(p).unwrap(),
                schema.position(a_out).unwrap(),
            );
            let q = self.q(i);
            let mut rows: Vec<Row> = Vec::with_capacity(2 * q as usize + 1);
            let push = |cin: i64, pad: i64, cout: i64, rows: &mut Vec<Row>| {
                let mut row = vec![Value::Int(0); 3];
                row[pi] = Value::Int(cin);
                row[pp] = Value::Int(pad);
                row[po] = Value::Int(cout);
                rows.push(row.into());
            };
            push(0, 0, 0, &mut rows); // spine
            for alpha in 1..=2i64 {
                for j in 1..=q as i64 {
                    // The last edge flips parity, breaking the mass cycle.
                    let out = if i == self.n - 1 { flip(alpha) } else { alpha };
                    push(alpha, j, out, &mut rows);
                }
            }
            rels.push(Relation::from_rows(schema, rows).expect("distinct"));
        }
        Database::from_relations(rels)
    }

    /// Closed-form `|⋈ D[set]|`: per connected component, `2·Π qᵢ + 1` for a
    /// proper subset and 1 for the full cycle; components multiply.
    pub fn subjoin_size(&self, scheme: &DbScheme, set: RelSet) -> u128 {
        if set.is_empty() {
            return 1;
        }
        let mut total: u128 = 1;
        for comp in scheme.components(set) {
            let f: u128 = if comp == scheme.all() {
                1
            } else {
                2 * comp.iter().map(|i| self.q(i) as u128).product::<u128>() + 1
            };
            total = total.saturating_mul(f);
        }
        total
    }

    /// Closed-form §2.3 cost of a tree.
    pub fn tree_cost(&self, scheme: &DbScheme, tree: &JoinTree) -> u128 {
        tree.node_sets()
            .iter()
            .map(|&s| self.subjoin_size(scheme, s))
            .sum()
    }

    /// Minimum cost over all / CPF trees (exhaustive; keep `n ≤ 8`).
    pub fn min_costs(&self, scheme: &DbScheme) -> (u128, u128) {
        let all = mjoin_expr::all_trees(scheme.all())
            .iter()
            .map(|t| self.tree_cost(scheme, t))
            .min()
            .expect("trees exist");
        let cpf = mjoin_expr::cpf_trees(scheme, scheme.all())
            .iter()
            .map(|t| self.tree_cost(scheme, t))
            .min()
            .expect("CPF trees exist on a connected cycle");
        (all, cpf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n4_matches_example3_profile() {
        let g = CycleGap::new(4, 5);
        assert_eq!(g.q(0), 125);
        assert_eq!(g.q(1), 25);
        assert_eq!(g.q(2), 5);
        assert_eq!(g.q(3), 25);
    }

    #[test]
    fn closed_form_matches_execution_n5() {
        let g = CycleGap::new(5, 3);
        let mut c = Catalog::new();
        let scheme = g.scheme(&mut c);
        let db = g.database(&mut c);
        assert!(scheme.fully_connected());
        for bits in 1u64..(1 << 5) {
            let set = RelSet(bits);
            assert_eq!(
                g.subjoin_size(&scheme, set),
                db.join_of(&set.to_vec()).len() as u128,
                "subset {set}"
            );
        }
        assert_eq!(db.join_all().len(), 1);
    }

    #[test]
    fn gap_grows_only_on_the_4_cycle() {
        // n = 4: the paper's separation, growing with m.
        let mut c = Catalog::new();
        let small = CycleGap::new(4, 6);
        let scheme4 = small.scheme(&mut c);
        let (opt_s, cpf_s) = small.min_costs(&scheme4);
        let big = CycleGap::new(4, 24);
        let (opt_b, cpf_b) = big.min_costs(&scheme4);
        let r_small = cpf_s as f64 / opt_s as f64;
        let r_big = cpf_b as f64 / opt_b as f64;
        assert!(r_small > 1.05);
        assert!(
            r_big > 1.5 * r_small,
            "n = 4 gap grows: {r_small} → {r_big}"
        );

        // n = 5, 6: every (n−1)-subset is connected, so the dominant cost is
        // unavoidable and the CPF penalty stays within lower-order terms —
        // and *shrinks* as m grows.
        for n in [5usize, 6] {
            let mut c = Catalog::new();
            let small = CycleGap::new(n, 6);
            let scheme = small.scheme(&mut c);
            let (opt_s, cpf_s) = small.min_costs(&scheme);
            let big = CycleGap::new(n, 24);
            let (opt_b, cpf_b) = big.min_costs(&scheme);
            let r_small = cpf_s as f64 / opt_s as f64;
            let r_big = cpf_b as f64 / opt_b as f64;
            assert!(r_small < 1.05, "n = {n}: penalty already tiny at m = 6");
            assert!(r_big <= r_small, "n = {n}: penalty must not grow");
        }
    }

    #[test]
    fn pairwise_consistent_at_any_length() {
        let g = CycleGap::new(6, 3);
        let mut c = Catalog::new();
        let db = g.database(&mut c);
        for i in 0..db.len() {
            for j in 0..db.len() {
                if i == j {
                    continue;
                }
                let red = mjoin_relation::ops::semijoin(db.relation(i), db.relation(j));
                assert_eq!(red.len(), db.relation(i).len(), "R{i} ⋉ R{j}");
            }
        }
    }

    #[test]
    fn derived_program_on_a_5_cycle() {
        use mjoin_core::{run_pipeline, FirstChoice};
        use mjoin_optimizer::{optimize, SearchSpace};

        let g = CycleGap::new(5, 6);
        let mut c = Catalog::new();
        let scheme = g.scheme(&mut c);
        let db = g.database(&mut c);

        // Optimal tree from the closed-form oracle (via exhaustive search).
        let best_tree = mjoin_expr::all_trees(scheme.all())
            .into_iter()
            .min_by_key(|t| g.tree_cost(&scheme, t))
            .unwrap();
        let (_, cpf_cost) = g.min_costs(&scheme);

        let run = run_pipeline(&scheme, &best_tree, &db, &mut FirstChoice).unwrap();
        assert_eq!(run.exec.result.len(), 1);
        assert!(run.bound_holds());
        // On n ≥ 5 the program cannot beat the (already near-optimal) CPF
        // expression by much — but it must stay within the same order, and
        // for the paper's n = 4 the separation test lives in example3.rs.
        assert!(
            (run.program_cost() as u128) < 3 * cpf_cost,
            "program {} vs best CPF {}",
            run.program_cost(),
            cpf_cost
        );
        // Cross-check that the DP agrees with the exhaustive CPF cost.
        let mut oracle = mjoin_optimizer::ExactOracle::new(&db);
        let dp_cpf = optimize(&scheme, &mut oracle, SearchSpace::Cpf).unwrap();
        assert_eq!(dp_cpf.cost as u128, cpf_cost);
    }
}
