//! The paper's **Example 3** database family, reconstructed.
//!
//! Over the 4-cycle scheme `{ABC, CDE, EFG, GHA}` the paper exhibits, for
//! every `k ≥ 1`, a database that is *pairwise consistent* (semijoins remove
//! nothing) yet whose full join has exactly **one** tuple, such that:
//!
//! * the optimal join expression is the non-CPF, nonlinear "bowtie"
//!   `(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)`, with cost `< 10^(4k+1)`;
//! * every CPF join expression costs `> 2·10^(5k)`;
//! * every linear join expression costs `> 2·10^(5k)`;
//! * the program Algorithm 2 derives (Example 6) costs `< 2·10^(4k)`-ish —
//!   orders of magnitude below every CPF/linear expression.
//!
//! Our reconstruction (the paper's concrete table is not reproduced in the
//! text) uses a scale parameter `m` (the paper's `10^k`):
//!
//! * corner attributes `A, C, E, G` carry a *spine* value `0` and two *mass*
//!   values `{1, 2}`; private attributes `B, D, F, H` carry multiplicity;
//! * `ABC` holds the spine `(0,0,0)` plus `(α, j, α)` for `α ∈ {1,2}`,
//!   `j ∈ 1..=m³` — so `|ABC| = 2m³ + 1`; similarly `CDE` with `m²`, `EFG`
//!   with `m`, `GHA` with `m²`;
//! * `GHA`'s mass is `(γ, j, flip(γ))` with `flip(1)=2, flip(2)=1`: the
//!   parity break that stops the mass from closing the cycle, so
//!   `⋈D = {(0,…,0)}`.
//!
//! Every *connected proper* subset of the cycle joins its mass fully
//! (size `2·Π qᵢ + 1`); disconnected subsets multiply per component; the full
//! cycle collapses to 1. Hence adjacent pairs/triples containing `ABC` cost
//! `~2m⁵`, while the bowtie's two Cartesian products cost `~4m⁴` each —
//! reproducing the paper's separation exactly (`m = 10^k`: CPF `> 2·10^5k`,
//! optimal `< 10^(4k+1)`).

use mjoin_expr::JoinTree;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::{Catalog, Database, Relation, Schema, Value};

/// Generator for the Example 3 family at scale `m` (the paper's `10^k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Example3 {
    /// Scale parameter; the paper's construction is `m = 10^k`. Must be ≥ 5
    /// for the bowtie to be the strict optimum (below that the crossover
    /// constants interfere).
    pub m: u64,
}

impl Example3 {
    /// The family member at scale `m`.
    pub fn new(m: u64) -> Self {
        assert!(m >= 1, "scale must be positive");
        Example3 { m }
    }

    /// The paper's member for a given `k`: `m = 10^k`.
    pub fn for_k(k: u32) -> Self {
        Example3::new(10u64.pow(k))
    }

    /// The database scheme `{ABC, CDE, EFG, GHA}` (Example 1).
    pub fn scheme(catalog: &mut Catalog) -> DbScheme {
        DbScheme::parse(catalog, &["ABC", "CDE", "EFG", "GHA"])
    }

    /// Mass multiplicity `qᵢ` of relation `i`: `(m³, m², m, m²)`.
    pub fn q(&self, i: usize) -> u64 {
        match i {
            0 => self.m * self.m * self.m,
            1 => self.m * self.m,
            2 => self.m,
            3 => self.m * self.m,
            _ => panic!("Example 3 has 4 relations"),
        }
    }

    /// `|Rᵢ| = 2qᵢ + 1`.
    pub fn relation_size(&self, i: usize) -> u64 {
        2 * self.q(i) + 1
    }

    /// Materialize the database. Memory is `Θ(m³)` tuples — `m = 10` (k=1)
    /// is a few thousand, `m = 100` (k=2) is about two million.
    pub fn database(&self, catalog: &mut Catalog) -> Database {
        let flip = |g: i64| -> i64 {
            match g {
                1 => 2,
                2 => 1,
                other => other,
            }
        };
        let mut rels = Vec::with_capacity(4);
        for (i, scheme_str) in ["ABC", "CDE", "EFG", "GHA"].iter().enumerate() {
            let written_ids = catalog.intern_chars(scheme_str);
            let schema = Schema::new(written_ids.clone());
            let dest: Vec<usize> = written_ids
                .iter()
                .map(|&id| schema.position(id).expect("interned"))
                .collect();
            let q = self.q(i);
            let mut rows = Vec::with_capacity(2 * q as usize + 1);
            let push = |vals: [i64; 3], rows: &mut Vec<mjoin_relation::Row>| {
                let mut row = vec![Value::Int(0); 3];
                for (w, &v) in vals.iter().enumerate() {
                    row[dest[w]] = Value::Int(v);
                }
                rows.push(row.into());
            };
            // Spine tuple: all corners 0.
            push([0, 0, 0], &mut rows);
            // Mass tuples.
            for alpha in 1..=2i64 {
                for j in 1..=q as i64 {
                    let vals = if i == 3 {
                        // GHA written (G, H, A): A = flip(G).
                        [alpha, j, flip(alpha)]
                    } else {
                        // (corner, private, corner).
                        [alpha, j, alpha]
                    };
                    push(vals, &mut rows);
                }
            }
            rels.push(Relation::from_rows(schema, rows).expect("distinct by construction"));
        }
        Database::from_relations(rels)
    }

    /// Closed-form `|⋈ D[set]|`, validated against execution in the tests.
    ///
    /// Per connected component `C` of `set`: `2·Π_{i∈C} qᵢ + 1` if `C` is a
    /// proper subset of the cycle, `1` for the full cycle (the parity break);
    /// components multiply.
    pub fn subjoin_size(&self, scheme: &DbScheme, set: RelSet) -> u128 {
        if set.is_empty() {
            return 1;
        }
        let mut total: u128 = 1;
        for comp in scheme.components(set) {
            let f: u128 = if comp == scheme.all() {
                1
            } else {
                2 * comp.iter().map(|i| self.q(i) as u128).product::<u128>() + 1
            };
            total = total.saturating_mul(f);
        }
        total
    }

    /// Closed-form §2.3 cost of a tree (leaves + internal nodes).
    pub fn tree_cost(&self, scheme: &DbScheme, tree: &JoinTree) -> u128 {
        tree.node_sets()
            .iter()
            .map(|&s| self.subjoin_size(scheme, s))
            .sum()
    }

    /// The paper's optimal expression: `(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)`.
    pub fn optimal_tree() -> JoinTree {
        JoinTree::join(
            JoinTree::join(JoinTree::leaf(0), JoinTree::leaf(2)),
            JoinTree::join(JoinTree::leaf(1), JoinTree::leaf(3)),
        )
    }

    /// Closed-form cost of the optimal (bowtie) expression.
    pub fn optimal_cost(&self, scheme: &DbScheme) -> u128 {
        self.tree_cost(scheme, &Self::optimal_tree())
    }

    /// The paper's upper bound on the optimal cost, `10^(4k+1) = 10·m⁴`
    /// (stated for `m = 10^k`; for other `m` we use the same `10·m⁴` form).
    pub fn paper_optimal_bound(&self) -> u128 {
        10 * (self.m as u128).pow(4)
    }

    /// The paper's lower bound on every CPF/linear expression, `2·10^(5k) =
    /// 2·m⁵`.
    pub fn paper_cpf_lower_bound(&self) -> u128 {
        2 * (self.m as u128).pow(5)
    }

    /// Minimum cost over **all** CPF trees (closed-form enumeration of the
    /// 15-tree space, filtered to CPF).
    pub fn min_cpf_cost(&self, scheme: &DbScheme) -> u128 {
        mjoin_expr::cpf_trees(scheme, scheme.all())
            .iter()
            .map(|t| self.tree_cost(scheme, t))
            .min()
            .expect("the 4-cycle has CPF trees")
    }

    /// Minimum cost over all linear trees.
    pub fn min_linear_cost(&self, scheme: &DbScheme) -> u128 {
        mjoin_expr::linear_trees(scheme.all())
            .iter()
            .map(|t| self.tree_cost(scheme, t))
            .min()
            .expect("linear trees exist")
    }

    /// Minimum cost over all trees (the true optimum).
    pub fn min_overall_cost(&self, scheme: &DbScheme) -> u128 {
        mjoin_expr::all_trees(scheme.all())
            .iter()
            .map(|t| self.tree_cost(scheme, t))
            .min()
            .expect("trees exist")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_expr::cost_of;

    #[test]
    fn sizes_match_formula() {
        let ex = Example3::new(5);
        let mut c = Catalog::new();
        let db = ex.database(&mut c);
        for i in 0..4 {
            assert_eq!(db.relation(i).len() as u64, ex.relation_size(i), "R{i}");
        }
        assert_eq!(ex.relation_size(0), 2 * 125 + 1);
        assert_eq!(ex.relation_size(2), 11);
    }

    #[test]
    fn join_is_single_tuple() {
        let ex = Example3::new(5);
        let mut c = Catalog::new();
        let db = ex.database(&mut c);
        let j = db.join_all();
        assert_eq!(j.len(), 1);
        assert!(j.contains_row(&vec![Value::Int(0); 8]));
    }

    #[test]
    fn pairwise_consistent_but_not_global() {
        // The paper: "D is locally (pairwise) consistent … but not globally
        // consistent; actually ⋈D has only one tuple."
        let ex = Example3::new(5);
        let mut c = Catalog::new();
        let db = ex.database(&mut c);
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let reduced = mjoin_relation::ops::semijoin(db.relation(i), db.relation(j));
                assert_eq!(
                    reduced.len(),
                    db.relation(i).len(),
                    "semijoin R{i} ⋉ R{j} must be a no-op"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_execution() {
        let ex = Example3::new(5);
        let mut c = Catalog::new();
        let scheme = Example3::scheme(&mut c);
        let db = ex.database(&mut c);
        // Every subset of the 4 relations.
        for bits in 1u64..16 {
            let set = RelSet(bits);
            let actual = db.join_of(&set.to_vec()).len() as u128;
            assert_eq!(
                ex.subjoin_size(&scheme, set),
                actual,
                "subset {set} closed form vs execution"
            );
        }
    }

    #[test]
    fn tree_cost_closed_form_matches_evaluation() {
        let ex = Example3::new(5);
        let mut c = Catalog::new();
        let scheme = Example3::scheme(&mut c);
        let db = ex.database(&mut c);
        for tree in [
            Example3::optimal_tree(),
            JoinTree::left_deep(&[0, 1, 2, 3]),
            JoinTree::left_deep(&[2, 1, 3, 0]),
        ] {
            assert_eq!(
                ex.tree_cost(&scheme, &tree),
                cost_of(&tree, &db) as u128,
                "tree {tree:?}"
            );
        }
    }

    #[test]
    fn bowtie_is_the_overall_optimum() {
        let ex = Example3::new(6);
        let mut c = Catalog::new();
        let scheme = Example3::scheme(&mut c);
        let opt = ex.min_overall_cost(&scheme);
        assert_eq!(opt, ex.optimal_cost(&scheme));
        // And it is strictly better than every CPF and linear tree.
        assert!(opt < ex.min_cpf_cost(&scheme));
        assert!(opt < ex.min_linear_cost(&scheme));
    }

    #[test]
    fn paper_bounds_hold_at_paper_scale() {
        // k = 1 → m = 10: optimal < 10^(4k+1), CPF and linear > 2·10^(5k).
        let ex = Example3::for_k(1);
        let mut c = Catalog::new();
        let scheme = Example3::scheme(&mut c);
        assert!(ex.optimal_cost(&scheme) < ex.paper_optimal_bound());
        assert!(ex.min_cpf_cost(&scheme) > ex.paper_cpf_lower_bound());
        assert!(ex.min_linear_cost(&scheme) > ex.paper_cpf_lower_bound());
    }

    #[test]
    fn separation_grows_linearly_in_m() {
        let mut c = Catalog::new();
        let scheme = Example3::scheme(&mut c);
        let r10 = {
            let ex = Example3::new(10);
            ex.min_cpf_cost(&scheme) as f64 / ex.optimal_cost(&scheme) as f64
        };
        let r40 = {
            let ex = Example3::new(40);
            ex.min_cpf_cost(&scheme) as f64 / ex.optimal_cost(&scheme) as f64
        };
        assert!(
            r40 > 3.0 * r10,
            "CPF/optimal gap must grow ~m: {r10} → {r40}"
        );
    }

    #[test]
    fn optimal_tree_is_non_cpf_nonlinear() {
        let mut c = Catalog::new();
        let scheme = Example3::scheme(&mut c);
        let t = Example3::optimal_tree();
        assert!(!t.is_cpf(&scheme));
        assert!(!t.is_linear());
        assert!(t.is_exactly_over(&scheme));
    }
}
