//! `mjoin-workloads` — synthetic schemes and databases for tests, examples,
//! and the experiment harness.
//!
//! * [`Example3`]: the paper's Example 3 family — pairwise consistent,
//!   single-tuple join, every CPF/linear expression `~m` times worse than
//!   the non-CPF optimum — with closed-form sub-join sizes for scales where
//!   materialization is infeasible;
//! * [`schemes`]: chain / cycle / star / clique / grid / random connected
//!   scheme generators;
//! * [`datagen`]: random databases with a planted witness (`⋈D ≠ ∅`, as
//!   Theorem 2 requires);
//! * [`HubGraph`]: binary cyclic queries (triangles, cycles, cliques)
//!   over hub-patterned data where every pairwise join is `Θ(m²)` but the
//!   full join is `Θ(m)` — the separation the worst-case-optimal executor
//!   exploits;
//! * [`PlantedRedundancy`]: chain queries with planted foldable atoms
//!   (known core size, closed-form output and full-join sizes) — the
//!   corpus and bench workload for query-core minimization.

#![warn(missing_docs)]

pub mod cycle_gap;
pub mod datagen;
pub mod example3;
pub mod hub;
pub mod redundant;
pub mod schemes;
pub mod star_schema;

pub use cycle_gap::CycleGap;
pub use datagen::{random_database, DataGenConfig};
pub use example3::Example3;
pub use hub::HubGraph;
pub use redundant::PlantedRedundancy;
pub use star_schema::{star_schema, StarSchemaConfig};
