//! Differential test: the resident server returns byte-identical results
//! to the one-shot pipeline, at 1/2/4/8 concurrent sessions, and the
//! process-wide index cache warms monotonically across waves.

use mjoin_core::derive;
use mjoin_hypergraph::DbScheme;
use mjoin_optimizer::{greedy, EstimateOracle};
use mjoin_program::execute;
use mjoin_relation::{tsv, Catalog, Database, Relation};
use mjoin_serve::{Client, ServeConfig, Server, Value};

/// A chain AB–BC–CD with enough skew that join order matters and the
/// result is non-trivial.
fn fixture_tsvs() -> Vec<String> {
    let mut ab = String::from("A\tB\n");
    let mut bc = String::from("B\tC\n");
    let mut cd = String::from("C\tD\n");
    for i in 0..60u32 {
        ab.push_str(&format!("a{}\tb{}\n", i % 7, i % 20));
        bc.push_str(&format!("b{}\tc{}\n", i % 20, i % 11));
        cd.push_str(&format!("c{}\td{}\n", i % 11, i % 5));
    }
    vec![ab, bc, cd]
}

/// The one-shot pipeline the server's `query` command mirrors: load in
/// order, estimate-based greedy tree, derive, execute, render TSV.
fn one_shot(tsvs: &[String]) -> String {
    let mut catalog = Catalog::new();
    let rels: Vec<Relation> = tsvs
        .iter()
        .map(|t| tsv::relation_from_tsv_reader(&mut catalog, t.as_bytes()).unwrap())
        .collect();
    let db = Database::from_relations(rels);
    let scheme = DbScheme::from_schemas(&db.schemas());
    let mut oracle = EstimateOracle::new(&scheme, &db);
    let (tree, _) = greedy(&scheme, &mut oracle, true);
    let d = derive(&scheme, &tree).unwrap();
    let out = execute(&d.program, &db);
    let mut buf = Vec::new();
    tsv::relation_to_tsv_writer(&catalog, &out.result, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// One session: load the fixture into a fresh catalog, run `query`, return
/// the result TSV and the cumulative cache-hit counter.
fn session(addr: std::net::SocketAddr, catalog: &str, tsvs: &[String]) -> (String, u64) {
    let mut c = Client::connect(addr).unwrap();
    for (i, t) in tsvs.iter().enumerate() {
        let resp = c
            .cmd(
                "load",
                &[
                    ("catalog", Value::str(catalog)),
                    ("name", Value::str(format!("r{i}"))),
                    ("tsv", Value::str(t.as_str())),
                ],
            )
            .unwrap();
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "load failed: {}",
            resp.render()
        );
    }
    let resp = c.cmd("query", &[("catalog", Value::str(catalog))]).unwrap();
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "query failed: {}",
        resp.render()
    );
    let tsv = resp.get("tsv").and_then(Value::as_str).unwrap().to_string();
    let hits = resp
        .get("cache")
        .and_then(|c| c.get("hit"))
        .and_then(Value::as_u64)
        .unwrap();
    (tsv, hits)
}

#[test]
fn concurrent_sessions_match_one_shot_and_warm_the_cache() {
    let tsvs = fixture_tsvs();
    let baseline = one_shot(&tsvs);
    assert!(baseline.lines().count() > 1, "fixture joins to something");

    let server = Server::bind(ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // Waves of 1, 2, 4, 8 concurrent sessions. Every session must be
    // byte-identical to the one-shot result; the cumulative hit counter
    // must be strictly increasing from the second session on (warm
    // sessions hit the fingerprint fallback — each run re-wraps relations
    // in fresh `Arc`s, so pointer identity never matches across sessions).
    let mut wave_hits = Vec::new();
    for (wave, &n) in [1usize, 2, 4, 8].iter().enumerate() {
        let results: Vec<(String, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let name = format!("w{wave}s{i}");
                    let tsvs = &tsvs;
                    s.spawn(move || session(addr, &name, tsvs))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (tsv, _) in &results {
            assert_eq!(
                tsv, &baseline,
                "wave of {n}: server result differs from one-shot"
            );
        }
        wave_hits.push(results.iter().map(|(_, h)| *h).max().unwrap());
    }
    assert!(
        wave_hits.windows(2).all(|w| w[1] > w[0]),
        "cache hits must strictly increase across waves: {wave_hits:?}"
    );

    let mut c = Client::connect(addr).unwrap();
    let bye = c.cmd("shutdown", &[]).unwrap();
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap().unwrap();
}
