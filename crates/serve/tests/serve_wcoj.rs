//! The server's `query` command with an `executor` field: `program`,
//! `wcoj`, and `auto` return the same answer set on a cyclic scheme, the
//! response reports both sides of the AGM-vs-certificate decision, and a
//! bad executor name is a protocol error.

use mjoin_serve::{Client, ServeConfig, Server, Value};

/// Triangle AB–BC–CA: cyclic, so every binary join program pays more than
/// the AGM bound and `auto` must route to the worst-case-optimal backend.
fn triangle_tsvs() -> Vec<String> {
    let e1 = "A\tB\n1\t2\n1\t3\n4\t5\n".to_string();
    let e2 = "B\tC\n2\t7\n3\t7\n3\t8\n5\t6\n".to_string();
    let e3 = "C\tA\n7\t1\n8\t1\n6\t4\n".to_string();
    vec![e1, e2, e3]
}

fn load_fixture(c: &mut Client, catalog: &str) {
    for (i, t) in triangle_tsvs().iter().enumerate() {
        let resp = c
            .cmd(
                "load",
                &[
                    ("catalog", Value::str(catalog)),
                    ("name", Value::str(format!("e{i}"))),
                    ("tsv", Value::str(t.as_str())),
                ],
            )
            .unwrap();
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "load failed: {}",
            resp.render()
        );
    }
}

/// Run `query` with the given executor and return the response.
fn query(c: &mut Client, catalog: &str, executor: &str) -> Value {
    c.cmd(
        "query",
        &[
            ("catalog", Value::str(catalog)),
            ("executor", Value::str(executor)),
        ],
    )
    .unwrap()
}

fn sorted_lines(tsv: &str) -> Vec<&str> {
    let mut lines: Vec<&str> = tsv.lines().collect();
    lines.sort_unstable();
    lines
}

#[test]
fn executors_agree_and_auto_reports_its_decision() {
    let server = Server::bind(ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let mut c = Client::connect(addr).unwrap();
    load_fixture(&mut c, "tri");

    let mut answers = Vec::new();
    for executor in ["program", "wcoj", "auto"] {
        let resp = query(&mut c, "tri", executor);
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "query --executor {executor} failed: {}",
            resp.render()
        );
        let agm = resp.get("agm_bound").and_then(Value::as_u64).unwrap();
        let cert = resp.get("cert_bound").and_then(Value::as_u64).unwrap();
        let chosen = resp.get("executor").and_then(Value::as_str).unwrap();
        match executor {
            "program" => assert_eq!(chosen, "program"),
            "wcoj" => assert_eq!(chosen, "wcoj"),
            // Cyclic triangle: AGM (N^1.5) undercuts every binary
            // program's certificate, so `auto` must route to wcoj.
            _ => {
                assert!(agm < cert, "triangle: AGM {agm} must undercut cert {cert}");
                assert_eq!(chosen, "wcoj");
            }
        }
        let tsv = resp.get("tsv").and_then(Value::as_str).unwrap().to_string();
        answers.push(tsv);
    }
    assert_eq!(
        sorted_lines(&answers[0]),
        sorted_lines(&answers[1]),
        "program and wcoj answers differ"
    );
    assert_eq!(
        sorted_lines(&answers[1]),
        sorted_lines(&answers[2]),
        "wcoj and auto answers differ"
    );
    assert_eq!(sorted_lines(&answers[0]).len(), 5, "header + 4 triangles");

    // An unknown executor is a protocol error, mirroring the CLI parser.
    let bad = query(&mut c, "tri", "bogus");
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
    let kind = bad
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str);
    assert_eq!(kind, Some("protocol"));

    let bye = c.cmd("shutdown", &[]).unwrap();
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap().unwrap();
}
