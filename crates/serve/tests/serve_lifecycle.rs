//! Request deadlines, the bounded admission queue, and graceful shutdown.

use mjoin_serve::{Client, ServeConfig, Server, Value};

fn chain_tsv(a: &str, b: &str, rows: u32) -> String {
    let mut t = format!("{a}\t{b}\n");
    for i in 0..rows {
        t.push_str(&format!("{i}\t{}\n", i + 1));
    }
    t
}

fn load_pair(c: &mut Client, catalog: &str) {
    for (name, tsv) in [
        ("ab", chain_tsv("A", "B", 10)),
        ("bc", chain_tsv("B", "C", 10)),
    ] {
        let resp = c
            .cmd(
                "load",
                &[
                    ("catalog", Value::str(catalog)),
                    ("name", Value::str(name)),
                    ("tsv", Value::str(tsv)),
                ],
            )
            .unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    }
}

fn spawn(
    cfg: ServeConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

#[test]
fn expired_deadline_cancels_at_a_statement_boundary() {
    let (addr, server_thread) = spawn(ServeConfig::default());
    let mut c = Client::connect(addr).unwrap();
    load_pair(&mut c, "c");
    // A zero deadline is already expired when execution starts: the
    // cooperative check fires before statement 0 — a structured error, not
    // a hung request.
    let resp = c
        .cmd(
            "query",
            &[("catalog", Value::str("c")), ("deadline_ms", Value::u64(0))],
        )
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    let e = resp.get("error").expect("error payload");
    assert_eq!(e.get("kind").and_then(Value::as_str), Some("deadline"));
    assert_eq!(e.get("at_stmt").and_then(Value::as_u64), Some(0));

    // Without a deadline the same query succeeds.
    let resp = c.cmd("query", &[("catalog", Value::str("c"))]).unwrap();
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "{}",
        resp.render()
    );

    let bye = c.cmd("shutdown", &[]).unwrap();
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap().unwrap();
}

#[test]
fn zero_depth_queue_reports_queue_full() {
    // A zero-depth queue admits nothing once the gate is active: the
    // degenerate configuration makes the overload path deterministic.
    let (addr, server_thread) = spawn(ServeConfig {
        max_cost: Some(1_000_000),
        queue_depth: 0,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr).unwrap();
    load_pair(&mut c, "c");
    let resp = c.cmd("query", &[("catalog", Value::str("c"))]).unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    let e = resp.get("error").expect("error payload");
    assert_eq!(e.get("kind").and_then(Value::as_str), Some("queue_full"));
    assert_eq!(e.get("queue_depth").and_then(Value::as_u64), Some(0));

    let bye = c.cmd("shutdown", &[]).unwrap();
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_and_stops_the_listener() {
    let (addr, server_thread) = spawn(ServeConfig::default());
    let mut a = Client::connect(addr).unwrap();
    load_pair(&mut a, "c");
    let resp = a.cmd("query", &[("catalog", Value::str("c"))]).unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));

    let mut b = Client::connect(addr).unwrap();
    let bye = b.cmd("shutdown", &[]).unwrap();
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap().unwrap();

    // The listener is gone: a fresh connection either fails outright or
    // dies on first use.
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.cmd("ping", &[]).is_err(),
    };
    assert!(refused, "server must stop accepting after shutdown");
}
