//! Admission control end to end: a certified-blowup program is rejected
//! *before* execution — the error names the offending statement and its
//! bound, and the process counters show zero operator activity — while a
//! CPF program under the same budget is admitted and runs.
//!
//! Kept as a single test so the process-global trace sink (which the
//! zero-operator-activity assertion reads through `stats`) is not muddied
//! by a sibling test's server.

use mjoin_serve::{Client, ServeConfig, Server, Value};

/// `rows` tuples over two single-char attributes, chained so every tuple
/// of one relation matches the next: (i, i+1).
fn chain_tsv(a: &str, b: &str, rows: u32) -> String {
    let mut t = format!("{a}\t{b}\n");
    for i in 0..rows {
        t.push_str(&format!("{i}\t{}\n", i + 1));
    }
    t
}

fn load(c: &mut Client, name: &str, tsv: String) {
    let resp = c
        .cmd(
            "load",
            &[
                ("catalog", Value::str("c")),
                ("name", Value::str(name)),
                ("tsv", Value::str(tsv)),
            ],
        )
        .unwrap();
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "load failed: {}",
        resp.render()
    );
}

#[test]
fn certified_blowup_is_rejected_before_any_operator_runs() {
    let server = Server::bind(ServeConfig {
        max_cost: Some(50),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let mut c = Client::connect(addr).unwrap();
    load(&mut c, "ab", chain_tsv("A", "B", 7));
    load(&mut c, "bc", chain_tsv("B", "C", 7));
    load(&mut c, "cd", chain_tsv("C", "D", 20));

    // AB ⋈ CD shares no attributes — a Cartesian product with certified
    // bound 7·20 = 140, over the budget of 50.
    let resp = c
        .cmd(
            "run",
            &[
                ("catalog", Value::str("c")),
                ("program", Value::str("R(V) := R(AB) ⋈ R(CD)")),
                ("scheme", Value::str("AB,CD")),
            ],
        )
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    let e = resp.get("error").expect("error payload");
    assert_eq!(e.get("kind").and_then(Value::as_str), Some("admission"));
    assert_eq!(e.get("stmt").and_then(Value::as_u64), Some(0));
    assert_eq!(e.get("bound").and_then(Value::as_u64), Some(140));
    assert_eq!(e.get("budget").and_then(Value::as_u64), Some(50));
    let symbolic = e.get("symbolic").and_then(Value::as_str).unwrap();
    assert!(
        symbolic.contains("AB") && symbolic.contains("CD"),
        "symbolic bound names the Cartesian pair: {symbolic}"
    );
    assert!(e.get("excerpt").and_then(Value::as_str).is_some());

    // Zero operator activity: the rejection happened before execution, so
    // no statement head was ever produced and no run was admitted.
    let stats = c.cmd("stats", &[]).unwrap();
    let counters = stats.get("counters").expect("counters");
    assert_eq!(
        counters
            .get("serve.admission_reject")
            .and_then(Value::as_u64),
        Some(1)
    );
    assert!(
        counters.get("serve.run").is_none(),
        "no run was admitted: {}",
        counters.render()
    );
    assert!(
        counters.get("exec.head_tuples").is_none(),
        "no operator produced tuples: {}",
        counters.render()
    );

    // A CPF program over the connected pair is admitted under the same
    // budget and runs: peak bound 7·7 = 49 ≤ 50.
    let cpf = "R(V) := R(AB) ⋉ R(BC)\nR(V) := R(V) ⋈ R(BC)";
    let resp = c
        .cmd(
            "run",
            &[
                ("catalog", Value::str("c")),
                ("program", Value::str(cpf)),
                ("scheme", Value::str("AB,BC")),
            ],
        )
        .unwrap();
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "CPF program admitted: {}",
        resp.render()
    );
    assert_eq!(resp.get("certified_peak").and_then(Value::as_u64), Some(49));
    assert_eq!(resp.get("rows").and_then(Value::as_u64), Some(6));

    let bye = c.cmd("shutdown", &[]).unwrap();
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap().unwrap();
}
